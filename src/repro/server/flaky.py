"""Failure injection: a transiently failing web source.

Real web sources time out, rate-limit, and return 5xx pages; a crawler
that cannot absorb transient failures never finishes a million-round
crawl.  :class:`FlakyServer` wraps a
:class:`~repro.server.webdb.SimulatedWebDatabase` and makes each page
request fail with a configurable probability — and, faithfully to the
paper's cost model, *a failed request still costs a communication
round* (the bytes crossed the wire).  The prober's retry loop lives in
:func:`submit_with_retries`, which both the flaky tests and a
production adaptation would use.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.errors import ReproError
from repro.core.query import AnyQuery
from repro.server.pagination import ResultPage
from repro.server.webdb import SimulatedWebDatabase


class TransientServerError(ReproError):
    """A retryable failure (timeout, 5xx, connection reset)."""


class PermanentServerFailure(ReproError):
    """Retries exhausted — the request could not be completed."""


class FlakyServer:
    """A source whose page requests fail transiently.

    Parameters
    ----------
    server:
        The underlying (reliable) simulated source.
    failure_rate:
        Probability that any single page request fails.
    seed:
        Seeds the failure stream, so runs are reproducible.
    charge_failed_rounds:
        Whether failed requests consume communication rounds (default
        True — a timeout is not free).
    """

    def __init__(
        self,
        server: SimulatedWebDatabase,
        failure_rate: float = 0.1,
        seed: int = 0,
        charge_failed_rounds: bool = True,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self._server = server
        self.failure_rate = failure_rate
        self.charge_failed_rounds = charge_failed_rounds
        self._rng = random.Random(seed)
        self.failures_injected = 0

    # The crawler-facing surface mirrors SimulatedWebDatabase.
    @property
    def table(self):
        return self._server.table

    @property
    def interface(self):
        return self._server.interface

    @property
    def page_size(self) -> int:
        return self._server.page_size

    @property
    def log(self):
        return self._server.log

    @property
    def rounds(self) -> int:
        return self._server.rounds

    def truth_size(self) -> int:
        return self._server.truth_size()

    def truth_count(self, query: AnyQuery) -> int:
        return self._server.truth_count(query)

    def truth_coverage(self, record_ids) -> float:
        return self._server.truth_coverage(record_ids)

    def submit(self, query: AnyQuery, page_number: int = 1) -> ResultPage:
        """One page request that may fail transiently.

        The interface check happens first (a rejected form submission is
        not a network failure); then the failure coin is tossed.
        """
        self.interface.validate(query)
        if self._rng.random() < self.failure_rate:
            self.failures_injected += 1
            if self.charge_failed_rounds:
                self.log.record(query, page_number, 0)
            raise TransientServerError(
                f"request {query} page {page_number} timed out"
            )
        return self._server.submit(query, page_number)

    def submit_xml(self, query: AnyQuery, page_number: int = 1) -> str:
        from repro.server.service import render_page

        return render_page(self.submit(query, page_number))


def submit_with_retries(
    server,
    query: AnyQuery,
    page_number: int = 1,
    max_retries: int = 5,
    rng: Optional[random.Random] = None,
) -> ResultPage:
    """Submit one page request, absorbing transient failures.

    Retries up to ``max_retries`` times; each attempt (failed or not)
    costs whatever the server charges.  Raises
    :class:`PermanentServerFailure` when the budget is exhausted.
    ``rng`` is accepted for future jittered-backoff strategies; the
    simulated clock is request-counted, so no sleeping happens here.
    """
    attempts = max_retries + 1
    last_error: Optional[TransientServerError] = None
    for _attempt in range(attempts):
        try:
            return server.submit(query, page_number)
        except TransientServerError as error:
            last_error = error
    raise PermanentServerFailure(
        f"{attempts} attempts failed for {query} page {page_number}"
    ) from last_error
