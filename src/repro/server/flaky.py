"""Failure injection: a transiently failing web source.

Real web sources time out, rate-limit, and return 5xx pages; a crawler
that cannot absorb transient failures never finishes a million-round
crawl.  :class:`FlakyServer` wraps a
:class:`~repro.server.webdb.SimulatedWebDatabase` and makes each page
request fail with a configurable probability — and, faithfully to the
paper's cost model, *a failed request still costs a communication
round* (the bytes crossed the wire).  The prober's retry loop lives in
:func:`submit_with_retries`, which both the flaky tests and a
production adaptation would use.

Retries optionally back off exponentially with jitter
(:class:`ExponentialBackoff`).  There is no wall clock in the
simulation, so a backoff delay is *simulated*: the jittered delay is
computed from the caller's RNG (making the stream checkpointable) and
charged to the communication log through a configurable
``backoff_cost`` hook — under the paper's cost model, waiting out a
rate limiter costs rounds you could have spent fetching pages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import ReproError
from repro.core.query import AnyQuery
from repro.server.pagination import ResultPage
from repro.server.webdb import SimulatedWebDatabase


class TransientServerError(ReproError):
    """A retryable failure (timeout, 5xx, connection reset)."""


class PermanentServerFailure(ReproError):
    """Retries exhausted — the request could not be completed."""


@dataclass(frozen=True)
class ExponentialBackoff:
    """Exponential backoff with uniform jitter, in simulated seconds.

    The delay before retry ``n`` (1-based) is

        min(base_delay · multiplier^(n-1), max_delay) · U

    with ``U`` uniform in ``[1 - jitter, 1 + jitter]`` drawn from the
    caller's RNG (no jitter when no RNG is supplied).

    ``backoff_cost`` maps a delay in seconds to communication rounds to
    charge while waiting (``None`` — the default — charges nothing and
    keeps the delay purely observational).  A typical choice is
    ``lambda delay: math.ceil(delay / seconds_per_round)``;
    :meth:`charging` builds one.
    """

    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    backoff_cost: Optional[Callable[[float], int]] = None

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be > 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def charging(cls, seconds_per_round: float = 1.0, **kwargs) -> "ExponentialBackoff":
        """A backoff whose waits are paid in rounds (ceil of the delay)."""
        return cls(
            backoff_cost=lambda delay: math.ceil(delay / seconds_per_round),
            **kwargs,
        )

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Jittered delay before the ``attempt``-th retry (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def cost(self, delay: float) -> int:
        """Rounds to charge for waiting out ``delay`` (0 when not charging)."""
        if self.backoff_cost is None:
            return 0
        return max(int(self.backoff_cost(delay)), 0)


class FlakyServer:
    """A source whose page requests fail transiently.

    Parameters
    ----------
    server:
        The underlying (reliable) simulated source.
    failure_rate:
        Probability that any single page request fails.
    seed:
        Seeds the failure stream, so runs are reproducible.
    charge_failed_rounds:
        Whether failed requests consume communication rounds (default
        True — a timeout is not free).
    """

    def __init__(
        self,
        server: SimulatedWebDatabase,
        failure_rate: float = 0.1,
        seed: int = 0,
        charge_failed_rounds: bool = True,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self._server = server
        self.failure_rate = failure_rate
        self.charge_failed_rounds = charge_failed_rounds
        self._rng = random.Random(seed)
        self.failures_injected = 0

    # The crawler-facing surface mirrors SimulatedWebDatabase.
    @property
    def table(self):
        return self._server.table

    @property
    def interface(self):
        return self._server.interface

    @property
    def page_size(self) -> int:
        return self._server.page_size

    @property
    def log(self):
        return self._server.log

    @property
    def rounds(self) -> int:
        return self._server.rounds

    def truth_size(self) -> int:
        return self._server.truth_size()

    def truth_count(self, query: AnyQuery) -> int:
        return self._server.truth_count(query)

    def truth_coverage(self, record_ids) -> float:
        return self._server.truth_coverage(record_ids)

    def submit(self, query: AnyQuery, page_number: int = 1) -> ResultPage:
        """One page request that may fail transiently.

        The interface check happens first (a rejected form submission is
        not a network failure); then the failure coin is tossed.
        """
        self.interface.validate(query)
        if self._rng.random() < self.failure_rate:
            self.failures_injected += 1
            if self.charge_failed_rounds:
                self.log.record(query, page_number, 0)
            raise TransientServerError(
                f"request {query} page {page_number} timed out"
            )
        return self._server.submit(query, page_number)

    def submit_xml(self, query: AnyQuery, page_number: int = 1) -> str:
        from repro.server.service import render_page

        return render_page(self.submit(query, page_number))

    # ------------------------------------------------------------------
    # Durable-runtime state (see repro.runtime)
    # ------------------------------------------------------------------
    def runtime_state(self) -> dict:
        """Round counter plus the failure stream's RNG position."""
        from repro.runtime.serialize import encode_rng

        state = self._server.runtime_state()
        state["rng"] = encode_rng(self._rng)
        state["failures_injected"] = self.failures_injected
        return state

    def load_runtime_state(self, state: dict) -> None:
        from repro.runtime.serialize import restore_rng

        self._server.load_runtime_state(state)
        restore_rng(self._rng, state["rng"])
        self.failures_injected = state["failures_injected"]


def submit_with_retries(
    server,
    query: AnyQuery,
    page_number: int = 1,
    max_retries: int = 5,
    rng: Optional[random.Random] = None,
    backoff: Optional[ExponentialBackoff] = None,
    emit: Optional[Callable] = None,
) -> ResultPage:
    """Submit one page request, absorbing transient failures.

    Retries up to ``max_retries`` times; each attempt (failed or not)
    costs whatever the server charges.  Between attempts a
    :class:`ExponentialBackoff` (when supplied) computes a jittered
    simulated delay from ``rng``, charges its round cost to the server's
    communication log, and each retry is announced through ``emit`` (a
    callable taking a :class:`~repro.runtime.events.RetryAttempted`
    event).  Raises :class:`PermanentServerFailure` when the budget is
    exhausted.
    """
    attempts = max_retries + 1
    last_error: Optional[TransientServerError] = None
    for attempt in range(1, attempts + 1):
        try:
            return server.submit(query, page_number)
        except TransientServerError as error:
            last_error = error
            if attempt == attempts:
                break
            delay = 0.0
            delay_rounds = 0
            if backoff is not None:
                delay = backoff.delay(attempt, rng)
                delay_rounds = backoff.cost(delay)
                if delay_rounds:
                    server.log.charge(delay_rounds)
            if emit is not None:
                from repro.runtime.events import RetryAttempted

                emit(
                    RetryAttempted(
                        query=query,
                        page_number=page_number,
                        attempt=attempt,
                        backoff_delay=delay,
                        backoff_rounds=delay_rounds,
                    )
                )
    raise PermanentServerFailure(
        f"{attempts} attempts failed for {query} page {page_number}"
    ) from last_error
