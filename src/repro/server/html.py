"""HTML result pages and wrapper-style extraction.

The paper's Amazon experiment used XML web services precisely to dodge
"the possible accuracy problems of extracting structured records from
Web pages" — but most deep-web sources answer in HTML, and the paper
leans on wrapper induction (Arasu & Garcia-Molina [5]; Lerman et al.
[19]) as the solved substrate.  This module supplies that substrate for
the simulation:

- :func:`render_html_page` renders a
  :class:`~repro.server.pagination.ResultPage` as a template-generated
  result page, in two realism levels:

  * ``annotated=True`` — fields carry machine-readable ``data-attr``
    markers (a cooperative, microdata-style site);
  * ``annotated=False`` — a plain ``<table>`` whose only schema hints
    are its human-readable header labels ("Release Location"), the way
    an ordinary store renders listings.

- :class:`HtmlResultParser` is the wrapper: an
  :class:`html.parser.HTMLParser` that handles both levels — reading
  ``data-attr`` markers when present, otherwise *inducing* the
  column-to-attribute mapping from the header row by reversing the
  label prettification.  Record identity comes from each row's detail
  link (``/item/<id>``), exactly what a real crawler dedupes on.

Round-trip guarantee: ``parse_html_page(render_html_page(p)) == p`` for
both realism levels.
"""

from __future__ import annotations

import html as html_lib
import re
from html.parser import HTMLParser
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.server.pagination import ResultPage

#: Joins multiple values of one attribute inside a plain table cell.
_VALUE_SEPARATOR = " | "

_ITEM_HREF = re.compile(r"/item/(\d+)$")


class HtmlExtractionError(ReproError):
    """The document does not look like one of our result templates."""


def attribute_label(attribute: str) -> str:
    """Prettify an attribute name into a column header ("release_location"
    → "Release Location")."""
    return attribute.replace("_", " ").title()


def label_attribute(label: str) -> str:
    """Reverse :func:`attribute_label` (the induction step)."""
    return label.strip().lower().replace(" ", "_")


def _escape(text: str) -> str:
    return html_lib.escape(text, quote=True)


def _query_description(query: AnyQuery) -> str:
    if isinstance(query, ConjunctiveQuery):
        return " AND ".join(
            f"{predicate.attribute}={predicate.value}"
            for predicate in query.predicates
        )
    if query.is_keyword:
        return query.value
    return f"{query.attribute}={query.value}"


def _summary_attributes(page: ResultPage) -> str:
    parts = [
        f'data-page="{page.page_number}"',
        f'data-pages="{page.num_pages}"',
        f'data-accessible="{page.accessible_matches}"',
    ]
    if page.page_size:
        parts.append(f'data-page-size="{page.page_size}"')
    if page.total_matches is not None:
        parts.append(f'data-total="{page.total_matches}"')
    query = page.query
    if isinstance(query, ConjunctiveQuery):
        predicates = ";".join(
            f"{predicate.attribute}={predicate.value}"
            for predicate in query.predicates
        )
        parts.append(f'data-query-predicates="{_escape(predicates)}"')
    else:
        if query.attribute is not None:
            parts.append(f'data-query-attribute="{_escape(query.attribute)}"')
        parts.append(f'data-query-value="{_escape(query.value)}"')
    return " ".join(parts)


def render_html_page(page: ResultPage, annotated: bool = True) -> str:
    """Serialize a result page as a template-generated HTML document."""
    total_text = (
        f"{page.total_matches} results" if page.total_matches is not None
        else "results"
    )
    head = (
        "<!DOCTYPE html>\n<html><head><title>Search results</title></head><body>\n"
        f'<div id="summary" {_summary_attributes(page)}>'
        f"Page {page.page_number} of {max(page.num_pages, 1)} — {total_text} for "
        f"&quot;{_escape(_query_description(page.query))}&quot;</div>\n"
    )
    if annotated:
        body = _render_annotated(page)
    else:
        body = _render_plain(page)
    return head + body + "</body></html>\n"


def _render_annotated(page: ResultPage) -> str:
    lines = ['<ol class="results">']
    for record in page.records:
        lines.append(
            f'<li class="record"><a class="detail" '
            f'href="/item/{record.record_id}">details</a>'
        )
        for attribute, values in record.fields.items():
            for value in values:
                lines.append(
                    f'<span class="field" data-attr="{_escape(attribute)}">'
                    f"{_escape(value)}</span>"
                )
        lines.append("</li>")
    lines.append("</ol>\n")
    return "\n".join(lines)


def _columns_of(page: ResultPage) -> List[str]:
    columns: Dict[str, None] = {}
    for record in page.records:
        for attribute in record.fields:
            columns.setdefault(attribute, None)
    return list(columns)


def _render_plain(page: ResultPage) -> str:
    columns = _columns_of(page)
    lines = ['<table class="results">', "<tr>"]
    lines.extend(f"<th>{_escape(attribute_label(c))}</th>" for c in columns)
    lines.append("<th>Link</th></tr>")
    for record in page.records:
        lines.append("<tr>")
        for column in columns:
            cell = _VALUE_SEPARATOR.join(record.values_of(column))
            lines.append(f"<td>{_escape(cell)}</td>")
        lines.append(
            f'<td><a class="detail" href="/item/{record.record_id}">view</a></td>'
        )
        lines.append("</tr>")
    lines.append("</table>\n")
    return "\n".join(lines)


class HtmlResultParser(HTMLParser):
    """The wrapper: parses both template levels back into a ResultPage."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.summary: Dict[str, str] = {}
        # Annotated mode state.
        self._records: List[Tuple[int, Dict[str, List[str]]]] = []
        self._current_fields: Optional[Dict[str, List[str]]] = None
        self._current_id: Optional[int] = None
        self._field_attr: Optional[str] = None
        self._text: List[str] = []
        # Plain-table mode state.
        self._columns: Optional[List[str]] = None
        self._row_cells: Optional[List[str]] = None
        self._in_cell = False
        self._in_header = False
        self._header_cells: List[str] = []
        self._mode: Optional[str] = None

    # -- tag handling ---------------------------------------------------
    def handle_starttag(self, tag, attrs):
        attributes = dict(attrs)
        if tag == "div" and attributes.get("id") == "summary":
            self.summary = {k: v for k, v in attributes.items() if v is not None}
        elif tag == "li" and attributes.get("class") == "record":
            self._mode = "annotated"
            self._current_fields = {}
            self._current_id = None
        elif tag == "span" and attributes.get("class") == "field":
            self._field_attr = attributes.get("data-attr")
            self._text = []
        elif tag == "a" and attributes.get("class") == "detail":
            match = _ITEM_HREF.search(attributes.get("href", ""))
            if match:
                record_id = int(match.group(1))
                if self._current_fields is not None:
                    self._current_id = record_id
                elif self._row_cells is not None:
                    self._row_cells.append(f"\0id:{record_id}")
        elif tag == "table" and attributes.get("class") == "results":
            self._mode = "plain"
        elif tag == "tr" and self._mode == "plain":
            if self._columns is None:
                self._in_header = True
                self._header_cells = []
            else:
                self._row_cells = []
        elif tag == "th" and self._in_header:
            self._in_cell = True
            self._text = []
        elif tag == "td" and self._row_cells is not None:
            self._in_cell = True
            self._text = []

    def handle_endtag(self, tag):
        if tag == "span" and self._field_attr is not None:
            value = "".join(self._text)
            if self._current_fields is not None:
                self._current_fields.setdefault(self._field_attr, []).append(value)
            self._field_attr = None
        elif tag == "li" and self._current_fields is not None:
            if self._current_id is None:
                raise HtmlExtractionError("record without a detail link")
            self._records.append((self._current_id, self._current_fields))
            self._current_fields = None
        elif tag == "th" and self._in_header:
            self._header_cells.append("".join(self._text))
            self._in_cell = False
        elif tag == "td" and self._row_cells is not None and self._in_cell:
            self._row_cells.append("".join(self._text))
            self._in_cell = False
        elif tag == "tr" and self._mode == "plain":
            if self._in_header:
                # Induce the schema from the prettified header labels.
                self._columns = [
                    label_attribute(label)
                    for label in self._header_cells
                    if label_attribute(label) != "link"
                ]
                self._in_header = False
            elif self._row_cells is not None:
                self._finish_plain_row()
                self._row_cells = None

    def handle_data(self, data):
        if self._field_attr is not None or self._in_cell:
            self._text.append(data)

    # -- assembly ---------------------------------------------------------
    def _finish_plain_row(self) -> None:
        assert self._columns is not None and self._row_cells is not None
        record_id = None
        cells = []
        for cell in self._row_cells:
            if cell.startswith("\0id:"):
                record_id = int(cell[4:])
            else:
                cells.append(cell)
        if record_id is None:
            raise HtmlExtractionError("row without a detail link")
        fields: Dict[str, List[str]] = {}
        for column, cell in zip(self._columns, cells):
            values = [v for v in cell.split(_VALUE_SEPARATOR) if v]
            if values:
                fields[column] = values
        self._records.append((record_id, fields))

    def page(self) -> ResultPage:
        if not self.summary:
            raise HtmlExtractionError("no result summary found — not our template")
        summary = self.summary
        predicates = summary.get("data-query-predicates")
        query: AnyQuery
        if predicates is not None:
            pairs = [
                AttributeValue(*part.split("=", 1))
                for part in predicates.split(";")
                if part
            ]
            query = ConjunctiveQuery.of(*pairs)
        else:
            query = Query(
                value=summary.get("data-query-value", ""),
                attribute=summary.get("data-query-attribute"),
            )
        total = summary.get("data-total")
        records = tuple(
            Record(record_id, {k: tuple(v) for k, v in fields.items()})
            for record_id, fields in self._records
        )
        return ResultPage(
            query=query,
            page_number=int(summary.get("data-page", "1")),
            records=records,
            total_matches=int(total) if total is not None else None,
            accessible_matches=int(summary.get("data-accessible", "0")),
            num_pages=int(summary.get("data-pages", "0")),
            page_size=int(summary.get("data-page-size", "0")),
        )


def parse_html_page(document: str) -> ResultPage:
    """Extract a :class:`ResultPage` from either HTML template level."""
    parser = HtmlResultParser()
    parser.feed(document)
    parser.close()
    return parser.page()
