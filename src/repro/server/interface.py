"""Query interfaces guarding simulated web databases.

The paper's case study (Table 1) distinguishes sources by whether they
accept keyword queries (K.W.) and whether they are single-attribute
queriable (S.Q.M.).  A :class:`QueryInterface` captures those
capabilities for one source: the set of attributes accepting equality
predicates, and whether a bare keyword may be "thrown into the query
box".  The interface validates every incoming query before the backend
sees it, the way a web form constrains what can be submitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.errors import UnsupportedQueryError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.schema import Schema


@dataclass(frozen=True)
class QueryInterface:
    """Capabilities of one source's query form / web-service endpoint.

    Parameters
    ----------
    queriable_attributes:
        Attributes accepting equality predicates (the interface schema
        ``Aq``).  May be empty for keyword-only sources.
    supports_keyword:
        Whether a bare value (no attribute) is accepted.
    name:
        Label used in survey reports.
    min_predicates:
        Minimum number of equality predicates a structured query must
        carry.  The default of 1 is the paper's simplified query model;
        restrictive forms (the Table 1 Car domain: "only multi-attribute
        queries are accepted") set it higher.  Keyword queries, where
        supported, bypass this gate — the search box takes one value by
        construction.
    max_predicates:
        Maximum number of predicates one form submission may combine
        (``None`` = any subset of ``Aq``).
    """

    queriable_attributes: FrozenSet[str]
    supports_keyword: bool = False
    name: str = "interface"
    min_predicates: int = 1
    max_predicates: Optional[int] = None

    def __post_init__(self) -> None:
        cleaned = frozenset(a.strip().lower() for a in self.queriable_attributes)
        object.__setattr__(self, "queriable_attributes", cleaned)
        if not cleaned and not self.supports_keyword:
            raise UnsupportedQueryError(
                f"interface {self.name!r} accepts no queries at all"
            )
        if self.min_predicates < 1:
            raise UnsupportedQueryError("min_predicates must be >= 1")
        if self.min_predicates > len(cleaned) and not self.supports_keyword:
            raise UnsupportedQueryError(
                f"interface {self.name!r} demands {self.min_predicates} "
                f"predicates but only exposes {len(cleaned)} attributes"
            )
        if (
            self.max_predicates is not None
            and self.max_predicates < self.min_predicates
        ):
            raise UnsupportedQueryError(
                "max_predicates must be >= min_predicates"
            )

    @classmethod
    def from_schema(
        cls, schema: Schema, supports_keyword: bool = False, name: str = "interface"
    ) -> "QueryInterface":
        """Build the interface exposing a schema's queriable attributes."""
        return cls(frozenset(schema.queriable), supports_keyword, name)

    @classmethod
    def keyword_only(cls, name: str = "interface") -> "QueryInterface":
        """A pure search-box interface (the paper's "fading schema" case)."""
        return cls(frozenset(), supports_keyword=True, name=name)

    @property
    def single_attribute_queriable(self) -> bool:
        """The Table 1 "S.Q.M." property: accepts one-predicate queries.

        True when some attribute is individually queriable (no
        multi-predicate gate) or a keyword box exists (a keyword query
        is a single-value query).
        """
        structured = bool(self.queriable_attributes) and self.min_predicates <= 1
        return structured or self.supports_keyword

    def accepts(self, query: AnyQuery) -> bool:
        """Whether the interface would accept ``query`` (no exception)."""
        if isinstance(query, ConjunctiveQuery):
            if not all(a in self.queriable_attributes for a in query.attributes):
                return False
            if query.arity < self.min_predicates:
                return False
            return self.max_predicates is None or query.arity <= self.max_predicates
        if query.is_keyword:
            return self.supports_keyword
        if self.min_predicates > 1:
            return False
        return query.attribute in self.queriable_attributes

    def validate(self, query: AnyQuery) -> None:
        """Raise :class:`UnsupportedQueryError` unless ``query`` is accepted."""
        if self.accepts(query):
            return
        if isinstance(query, ConjunctiveQuery):
            raise UnsupportedQueryError(
                f"interface {self.name!r} rejects conjunction over "
                f"{query.attributes} (queriable: "
                f"{sorted(self.queriable_attributes)}, predicates "
                f"{self.min_predicates}..{self.max_predicates or 'any'})"
            )
        if query.is_keyword:
            raise UnsupportedQueryError(
                f"interface {self.name!r} has no keyword search box"
            )
        if self.min_predicates > 1:
            raise UnsupportedQueryError(
                f"interface {self.name!r} demands at least "
                f"{self.min_predicates} predicates per query"
            )
        raise UnsupportedQueryError(
            f"interface {self.name!r} does not accept queries on "
            f"{query.attribute!r} (queriable: {sorted(self.queriable_attributes)})"
        )

    def coerce(self, query: Query) -> Query:
        """Rewrite a structured query into a keyword one when necessary.

        Models the crawler tactic the case study highlights: when the
        form lacks the attribute but has a search box, "throw" the value
        in and let the site's query processor pick the column.  Raises
        when neither form is possible.
        """
        if self.accepts(query):
            return query
        if not query.is_keyword and self.supports_keyword:
            return Query.keyword(query.value)
        self.validate(query)  # raises with a precise message
        raise AssertionError("unreachable")  # pragma: no cover
