"""Result-size limit and request-rate policies.

Most web databases cap how many results of a query can actually be
retrieved — Amazon's web service stops at 3,200 records; Yahoo! Autos
"may claim 5000 matches" yet serve only the first 20 pages.  The cap
interacts with *which* records are served: a site returns its top-ranked
matches, not a uniform sample.  A :class:`ResultLimitPolicy` bundles the
cap with the ranking used to choose the accessible prefix (Section 5.4).

Real sources also throttle *how fast* clients may ask: the
:class:`RateLimiter` enforces a per-client sliding-window request quota
with optional temporary bans for clients that keep hammering a closed
window.  The network front end (:mod:`repro.net.server`) consults it
per query request and converts denials into HTTP 429 responses whose
``Retry-After`` equals the limiter's actual reset time.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.errors import QueryError
from repro.core.query import AnyQuery, ConjunctiveQuery


def _query_key(query: AnyQuery) -> str:
    """A stable string identifying a query for ranking purposes."""
    if isinstance(query, ConjunctiveQuery):
        return "&".join(f"{p.attribute}={p.value}" for p in query.predicates)
    return f"{query.attribute}:{query.value}"

#: Ordering choices for the accessible prefix of a result list.
ORDERINGS = ("id", "ranked")


@dataclass(frozen=True)
class ResultLimitPolicy:
    """How a source truncates large result sets.

    Parameters
    ----------
    limit:
        Maximum records served per query (``None`` = unlimited).  The
        paper's Amazon experiments use 3200, 50, and 10.
    ordering:
        ``"id"`` serves matches in record-id order (stable, like a
        date-sorted listing); ``"ranked"`` applies a deterministic
        per-query pseudo-random ranking, modelling relevance ranking
        uncorrelated with record ids.
    seed:
        Ranking seed, so experiments are reproducible.
    """

    limit: Optional[int] = None
    ordering: str = "id"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise QueryError(f"result limit must be >= 1, got {self.limit}")
        if self.ordering not in ORDERINGS:
            raise QueryError(
                f"unknown ordering {self.ordering!r}; expected one of {ORDERINGS}"
            )

    def order(self, query: AnyQuery, match_ids: List[int]) -> List[int]:
        """Order a match list according to the policy (without truncating).

        The ranked ordering is a deterministic function of (seed, query,
        record id) so repeated requests for the same query always see
        the same ranking, as a real ranked source would show.
        """
        if self.ordering == "id":
            return sorted(match_ids)
        query_key = _query_key(query)

        def rank(record_id: int) -> str:
            key = f"{self.seed}:{query_key}:{record_id}"
            return hashlib.md5(key.encode("utf-8")).hexdigest()

        return sorted(match_ids, key=rank)

    def accessible(self, n_matches: int) -> int:
        """How many of ``n_matches`` records the source will serve."""
        if self.limit is None:
            return n_matches
        return min(n_matches, self.limit)


@dataclass(frozen=True)
class RateLimitDecision:
    """Outcome of one admission check.

    ``retry_after`` is the number of seconds after which the *same*
    request is guaranteed to be admitted (the limiter's actual reset
    time, not a guess): the moment the oldest in-window request falls
    out of the window, or the moment a ban expires.  0.0 when allowed.
    """

    allowed: bool
    retry_after: float = 0.0
    banned: bool = False


class RateLimiter:
    """Per-client sliding-window request quota with temporary bans.

    A client may make at most ``max_requests`` requests in any
    ``window_seconds``-long interval.  A denied request does not count
    against the window (a polite client retrying after ``retry_after``
    is not penalized for having asked), but each denial counts as a
    *violation*; ``ban_after`` consecutive violations earn the client a
    ``ban_seconds`` ban, during which every request is denied with the
    ban's remaining time as ``retry_after``.  An admitted request
    resets the violation count — only sustained hammering escalates.

    All state is guarded by one lock: the asyncio front end is
    single-threaded but the threaded fallback (and tests) hit the
    limiter from many threads at once.

    ``clock`` is injectable (monotonic seconds) so tests can step time
    exactly; production uses :func:`time.monotonic`.
    """

    def __init__(
        self,
        max_requests: int,
        window_seconds: float,
        ban_after: int = 0,
        ban_seconds: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        if max_requests < 1:
            raise QueryError(f"max_requests must be >= 1, got {max_requests}")
        if window_seconds <= 0:
            raise QueryError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if ban_after > 0 and ban_seconds <= 0:
            raise QueryError("ban_after requires ban_seconds > 0")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self.ban_after = ban_after
        self.ban_seconds = ban_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: Dict[str, Deque[float]] = {}
        self._violations: Dict[str, int] = {}
        self._banned_until: Dict[str, float] = {}
        self.denials = 0
        self.bans_issued = 0

    def check(self, client: str) -> RateLimitDecision:
        """Admit or deny one request from ``client`` right now."""
        with self._lock:
            now = self._clock()
            banned_until = self._banned_until.get(client)
            if banned_until is not None:
                if now < banned_until:
                    self.denials += 1
                    return RateLimitDecision(
                        allowed=False,
                        retry_after=banned_until - now,
                        banned=True,
                    )
                # Ban expired: the client starts from a clean slate.
                del self._banned_until[client]
                self._windows.pop(client, None)
                self._violations.pop(client, None)
            window = self._windows.get(client)
            if window is None:
                window = self._windows[client] = deque()
            horizon = now - self.window_seconds
            while window and window[0] <= horizon:
                window.popleft()
            if len(window) < self.max_requests:
                window.append(now)
                self._violations.pop(client, None)
                return RateLimitDecision(allowed=True)
            self.denials += 1
            retry_after = window[0] + self.window_seconds - now
            if self.ban_after > 0:
                violations = self._violations.get(client, 0) + 1
                self._violations[client] = violations
                if violations >= self.ban_after:
                    self.bans_issued += 1
                    self._banned_until[client] = now + self.ban_seconds
                    self._violations.pop(client, None)
                    return RateLimitDecision(
                        allowed=False,
                        retry_after=self.ban_seconds,
                        banned=True,
                    )
            return RateLimitDecision(allowed=False, retry_after=retry_after)

    def peek(self, client: str) -> RateLimitDecision:
        """Answer "would a request from ``client`` be admitted right now?"

        Unlike :meth:`check`, this is side-effect free: no admission
        timestamp is recorded, no violation counted, no ban escalated,
        and no denial tallied.  Schedulers use it to *select* among
        sources without spending quota on sources they then don't step
        (the fleet scheduler peeks every candidate per decision and
        checks only the winner).
        """
        with self._lock:
            now = self._clock()
            banned_until = self._banned_until.get(client)
            if banned_until is not None and now < banned_until:
                return RateLimitDecision(
                    allowed=False,
                    retry_after=banned_until - now,
                    banned=True,
                )
            window = self._windows.get(client)
            if window is None:
                return RateLimitDecision(allowed=True)
            horizon = now - self.window_seconds
            live = len(window)
            oldest = None
            for stamp in window:
                if stamp <= horizon:
                    live -= 1
                else:
                    oldest = stamp
                    break
            if live < self.max_requests:
                return RateLimitDecision(allowed=True)
            return RateLimitDecision(
                allowed=False,
                retry_after=oldest + self.window_seconds - now,
            )

    def runtime_state(self) -> dict:
        """Checkpointable dynamic state (windows, violations, bans).

        Timestamps are whatever the injected ``clock`` produced, so the
        state only round-trips meaningfully under a deterministic clock
        (the fleet's simulated time); under ``time.monotonic`` it is
        still captured but a restore into a new process is a fresh
        epoch.  Configuration (``max_requests`` etc.) is rebuilt by the
        caller, mirroring the engine/scheduler checkpoint convention.
        """
        with self._lock:
            return {
                "windows": {
                    client: list(window)
                    for client, window in sorted(self._windows.items())
                },
                "violations": dict(sorted(self._violations.items())),
                "banned_until": dict(sorted(self._banned_until.items())),
                "denials": self.denials,
                "bans_issued": self.bans_issued,
            }

    def load_runtime_state(self, state: dict) -> None:
        """Restore a :meth:`runtime_state` snapshot."""
        with self._lock:
            self._windows = {
                client: deque(stamps)
                for client, stamps in state["windows"].items()
            }
            self._violations = dict(state["violations"])
            self._banned_until = dict(state["banned_until"])
            self.denials = state["denials"]
            self.bans_issued = state["bans_issued"]

    def reset(self, client: Optional[str] = None) -> None:
        """Forget one client's state (or everyone's, with no argument)."""
        with self._lock:
            if client is None:
                self._windows.clear()
                self._violations.clear()
                self._banned_until.clear()
            else:
                self._windows.pop(client, None)
                self._violations.pop(client, None)
                self._banned_until.pop(client, None)


@dataclass(frozen=True)
class RateLimiterSpec:
    """Picklable :class:`RateLimiter` configuration.

    A :class:`RateLimiter` carries a ``threading.Lock`` and an injected
    clock, so it cannot cross a process boundary; the cluster ships
    this spec to each worker instead and every worker builds its own
    limiter.  (Each worker then enforces the quota independently —
    connections from one client may land on different workers, so a
    clustered deployment's effective quota is up to ``workers ×``
    the single-process quota.  Documented, deliberate: politeness is a
    per-server-process property in the simulation.)
    """

    max_requests: int
    window_seconds: float
    ban_after: int = 0
    ban_seconds: float = 0.0

    @classmethod
    def from_limiter(cls, limiter: RateLimiter) -> "RateLimiterSpec":
        return cls(
            max_requests=limiter.max_requests,
            window_seconds=limiter.window_seconds,
            ban_after=limiter.ban_after,
            ban_seconds=limiter.ban_seconds,
        )

    def build(self, clock=time.monotonic) -> RateLimiter:
        return RateLimiter(
            max_requests=self.max_requests,
            window_seconds=self.window_seconds,
            ban_after=self.ban_after,
            ban_seconds=self.ban_seconds,
            clock=clock,
        )


def merge_runtime_states(states: List[dict]) -> dict:
    """Fold per-worker :meth:`RateLimiter.runtime_state` snapshots.

    Deterministic given the input order (the cluster control plane
    collects snapshots in fixed worker order): per-client windows are
    concatenated and sorted, violations summed, the latest ban wins,
    and the denial/ban tallies add up.
    """
    windows: Dict[str, List[float]] = {}
    violations: Dict[str, int] = {}
    banned_until: Dict[str, float] = {}
    denials = 0
    bans_issued = 0
    for state in states:
        for client, stamps in state["windows"].items():
            windows.setdefault(client, []).extend(stamps)
        for client, count in state["violations"].items():
            violations[client] = violations.get(client, 0) + count
        for client, until in state["banned_until"].items():
            banned_until[client] = max(
                banned_until.get(client, float("-inf")), until
            )
        denials += state["denials"]
        bans_issued += state["bans_issued"]
    return {
        "windows": {
            client: sorted(stamps)
            for client, stamps in sorted(windows.items())
        },
        "violations": dict(sorted(violations.items())),
        "banned_until": dict(sorted(banned_until.items())),
        "denials": denials,
        "bans_issued": bans_issued,
    }
