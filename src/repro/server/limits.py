"""Result-size limit policies (Section 5.4).

Most web databases cap how many results of a query can actually be
retrieved — Amazon's web service stops at 3,200 records; Yahoo! Autos
"may claim 5000 matches" yet serve only the first 20 pages.  The cap
interacts with *which* records are served: a site returns its top-ranked
matches, not a uniform sample.  A :class:`ResultLimitPolicy` bundles the
cap with the ranking used to choose the accessible prefix.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import QueryError
from repro.core.query import AnyQuery, ConjunctiveQuery


def _query_key(query: AnyQuery) -> str:
    """A stable string identifying a query for ranking purposes."""
    if isinstance(query, ConjunctiveQuery):
        return "&".join(f"{p.attribute}={p.value}" for p in query.predicates)
    return f"{query.attribute}:{query.value}"

#: Ordering choices for the accessible prefix of a result list.
ORDERINGS = ("id", "ranked")


@dataclass(frozen=True)
class ResultLimitPolicy:
    """How a source truncates large result sets.

    Parameters
    ----------
    limit:
        Maximum records served per query (``None`` = unlimited).  The
        paper's Amazon experiments use 3200, 50, and 10.
    ordering:
        ``"id"`` serves matches in record-id order (stable, like a
        date-sorted listing); ``"ranked"`` applies a deterministic
        per-query pseudo-random ranking, modelling relevance ranking
        uncorrelated with record ids.
    seed:
        Ranking seed, so experiments are reproducible.
    """

    limit: Optional[int] = None
    ordering: str = "id"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise QueryError(f"result limit must be >= 1, got {self.limit}")
        if self.ordering not in ORDERINGS:
            raise QueryError(
                f"unknown ordering {self.ordering!r}; expected one of {ORDERINGS}"
            )

    def order(self, query: AnyQuery, match_ids: List[int]) -> List[int]:
        """Order a match list according to the policy (without truncating).

        The ranked ordering is a deterministic function of (seed, query,
        record id) so repeated requests for the same query always see
        the same ranking, as a real ranked source would show.
        """
        if self.ordering == "id":
            return sorted(match_ids)
        query_key = _query_key(query)

        def rank(record_id: int) -> str:
            key = f"{self.seed}:{query_key}:{record_id}"
            return hashlib.md5(key.encode("utf-8")).hexdigest()

        return sorted(match_ids, key=rank)

    def accessible(self, n_matches: int) -> int:
        """How many of ``n_matches`` records the source will serve."""
        if self.limit is None:
            return n_matches
        return min(n_matches, self.limit)
