"""Communication accounting between crawler and simulated source.

The paper's only cost metric is the number of communication rounds
(result-page requests) between crawler and server.  The
:class:`CommunicationLog` counts them, remembers per-query detail, and
supports the snapshotting the figures need (e.g. Figure 5 samples
coverage every 1,000 requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.query import Query


@dataclass
class RequestRecord:
    """One page request as seen on the wire."""

    round_number: int
    query: Query
    page_number: int
    records_returned: int
    new_records: Optional[int] = None  # filled in by the crawler, if known
    #: Wire latency of this request in seconds, when the transport
    #: measured one (the network lane does; the in-process lane has no
    #: wire).  Observational only — never part of canonical state.
    wall_time: Optional[float] = None


@dataclass
class CommunicationLog:
    """Counts rounds and queries; optionally fires per-round callbacks.

    A "round" is one page request, matching Definition 2.3.  ``on_round``
    callbacks let experiment harnesses take snapshots at exact round
    counts without threading state through the crawler.

    ``cache_hits`` / ``cache_misses`` count the server's result-ordering
    LRU cache behaviour (see
    :class:`~repro.server.webdb.SimulatedWebDatabase`): page 2+ of a
    query should be a hit, a re-ordered recomputation after eviction a
    miss — observable here because the cache exists to keep round
    serving cheap.

    With ``record_wall_times`` enabled (off by default; the network
    lane turns it on) each recorded round may carry its wire latency in
    seconds, letting a remote crawl attribute wall time per query.
    Wall times are observational only: they are excluded from runtime
    snapshots, so canonical state — and hence resume byte-identity —
    never depends on them.
    """

    rounds: int = 0
    requests: List[RequestRecord] = field(default_factory=list)
    queries_issued: Dict[Query, int] = field(default_factory=dict)
    keep_requests: bool = True
    cache_hits: int = 0
    cache_misses: int = 0
    record_wall_times: bool = False
    wall_times: List[float] = field(default_factory=list)
    _callbacks: List[Callable[[int], None]] = field(default_factory=list)

    def record(
        self,
        query: Query,
        page_number: int,
        records_returned: int,
        wall_time: Optional[float] = None,
    ) -> RequestRecord:
        """Log one page request and advance the round counter.

        ``wall_time`` is the request's wire latency in seconds; it is
        kept only when ``record_wall_times`` is on.
        """
        self.rounds += 1
        if not self.record_wall_times:
            wall_time = None
        entry = RequestRecord(
            self.rounds, query, page_number, records_returned, wall_time=wall_time
        )
        if wall_time is not None:
            self.wall_times.append(wall_time)
        if self.keep_requests:
            self.requests.append(entry)
        self.queries_issued[query] = self.queries_issued.get(query, 0) + 1
        for callback in self._callbacks:
            callback(self.rounds)
        return entry

    @property
    def total_wall_time(self) -> float:
        """Total recorded wire time in seconds (0.0 when not recording)."""
        return sum(self.wall_times)

    def wall_time_for(self, query: Query) -> float:
        """Wire seconds attributed to ``query`` (needs ``keep_requests``)."""
        return sum(
            entry.wall_time
            for entry in self.requests
            if entry.query == query and entry.wall_time is not None
        )

    def on_round(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with the round number after each round."""
        self._callbacks.append(callback)

    def charge(self, rounds: int) -> None:
        """Charge rounds with no page request behind them.

        Used for simulated waiting — e.g. exponential-backoff delays
        between retries, which under the paper's cost model are paid in
        communication rounds.  Each charged round fires the ``on_round``
        callbacks, so snapshot harnesses see them like any other.
        """
        for _ in range(rounds):
            self.rounds += 1
            for callback in self._callbacks:
                callback(self.rounds)

    @property
    def distinct_queries(self) -> int:
        """Number of distinct queries issued (≠ rounds: multi-page queries)."""
        return len(self.queries_issued)

    def pages_for(self, query: Query) -> int:
        """How many page requests were spent on ``query``."""
        return self.queries_issued.get(query, 0)

    def reset(self) -> None:
        """Zero all counters (callbacks are kept)."""
        self.rounds = 0
        self.requests.clear()
        self.queries_issued.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.wall_times.clear()
