"""Result pagination — the unit of the paper's cost model.

Definition 2.3 charges one communication round per result *page*, each
holding at most ``k`` records, so ``cost(q, DB) = ceil(num(q, DB) / k)``.
This module slices an ordered match list into :class:`ResultPage`
objects, optionally truncated by the source's result-size limit (the
Section 5.4 experiments: Amazon's 3200, or tightened to 50 / 10) and
optionally carrying the total match count, which most sources "report in
the first return page" (Section 3.4) and which enables query abortion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import PaginationError
from repro.core.query import AnyQuery
from repro.core.records import Record


@dataclass(frozen=True)
class ResultPage:
    """One page of query results, as the crawler sees it.

    Attributes
    ----------
    query:
        The query that produced the page.
    page_number:
        1-based index of this page.
    records:
        The page's records, projected onto the result schema.
    total_matches:
        ``num(q, DB)`` as reported by the source, or ``None`` when the
        source withholds it (Section 3.4's second heuristic case).
    accessible_matches:
        ``min(num(q, DB), result_limit)`` — how many records the source
        will actually serve for this query.
    num_pages:
        Total number of pages available for this query.
    page_size:
        ``k`` — the server's records-per-page capacity.  Carried on
        every page (not inferred from ``len(records)``: the last page
        of a result is usually short) so consumers like the abortion
        policy can convert remaining records into remaining rounds;
        ``0`` means the source did not disclose it.
    """

    query: AnyQuery
    page_number: int
    records: tuple[Record, ...]
    total_matches: Optional[int]
    accessible_matches: int
    num_pages: int
    page_size: int = 0

    @property
    def has_next(self) -> bool:
        """Whether another page can be requested after this one."""
        return self.page_number < self.num_pages

    @property
    def is_empty(self) -> bool:
        return not self.records


def page_count(n_matches: int, page_size: int, result_limit: Optional[int] = None) -> int:
    """Pages needed to exhaust a query: ``ceil(min(n, limit) / k)``.

    A zero-match query still costs one round (the empty page must be
    fetched to learn there is nothing), so the minimum return is 1 —
    but only for the *cost of finding out*; this function returns 0 for
    zero matches and callers charge the empty round separately, keeping
    the Definition 2.3 identity exact for non-empty queries.
    """
    accessible = n_matches if result_limit is None else min(n_matches, result_limit)
    return math.ceil(accessible / page_size)


def paginate(
    query: AnyQuery,
    matches: Sequence[Record],
    page_number: int,
    page_size: int,
    result_limit: Optional[int] = None,
    report_total: bool = True,
) -> ResultPage:
    """Serve one page of an ordered match list.

    Raises
    ------
    PaginationError
        If ``page_number`` is less than 1 or beyond the last page
        (except page 1 of an empty result, which is a valid empty page).
    """
    if page_size < 1:
        raise PaginationError(f"page size must be >= 1, got {page_size}")
    if page_number < 1:
        raise PaginationError(f"page numbers are 1-based, got {page_number}")
    total = len(matches)
    accessible = total if result_limit is None else min(total, result_limit)
    num_pages = math.ceil(accessible / page_size)
    if page_number > max(num_pages, 1):
        raise PaginationError(
            f"page {page_number} out of range: query {query} has {num_pages} page(s)"
        )
    start = (page_number - 1) * page_size
    stop = min(start + page_size, accessible)
    return ResultPage(
        query=query,
        page_number=page_number,
        records=tuple(matches[start:stop]),
        total_matches=total if report_total else None,
        accessible_matches=accessible,
        num_pages=num_pages,
        page_size=page_size,
    )
