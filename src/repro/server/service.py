"""XML web-service envelope for result pages.

The paper's live experiment queries the Amazon Web Service, whose
responses "are in the format of XML documents, which eliminates the
possible accuracy problems of extracting structured records from Web
pages".  This module renders a :class:`~repro.server.pagination.ResultPage`
to an Amazon-style XML document and parses it back, giving the crawler's
result extractor a realistic wire format to work against instead of a
Python object handed through a back door.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Optional

from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.server.pagination import ResultPage

#: Attribute names usable directly as XML element tags.  Anything else
#: (embedded whitespace, ``<``/``&``, a leading digit, a colon, ...)
#: would serialize into a document no parser accepts — ElementTree
#: escapes text and attribute *values* but writes tags verbatim — so
#: such names are rendered as ``<Field name="...">`` instead.
_SAFE_TAG = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")

#: Characters XML 1.0 cannot carry at all, even escaped: everything
#: below 0x20 except tab/newline/carriage-return, plus the two
#: permanently-unassigned sentinels.  ElementTree happily *writes*
#: them, producing a document ``fromstring`` then rejects — a crawl
#: over the wire would die on the response.  They are replaced with
#: U+FFFD before serialization (value normalization collapses all
#: legitimate whitespace first, so real dataset values never hit this).
_XML_INVALID = re.compile("[\x00-\x08\x0b\x0c\x0e-\x1f￾￿]")


def _xml_safe(text: str) -> str:
    """Replace characters XML 1.0 cannot represent with U+FFFD."""
    return _XML_INVALID.sub("�", text)


def render_page(page: ResultPage) -> str:
    """Serialize a result page to an XML document string.

    Layout (one element per record, one child per attribute, repeated
    children for multi-valued attributes)::

        <QueryResponse totalResults="95" totalPages="10" page="1">
          <Request attribute="brand" value="toyota"/>
          <Item id="17">
            <brand>toyota</brand>
            <model>corolla</model>
          </Item>
          ...
        </QueryResponse>
    """
    root = ET.Element("QueryResponse")
    if page.total_matches is not None:
        root.set("totalResults", str(page.total_matches))
    root.set("totalPages", str(page.num_pages))
    root.set("page", str(page.page_number))
    root.set("accessibleResults", str(page.accessible_matches))
    if page.page_size:
        root.set("pageSize", str(page.page_size))
    request = ET.SubElement(root, "Request")
    if isinstance(page.query, ConjunctiveQuery):
        for predicate in page.query.predicates:
            ET.SubElement(
                request,
                "Predicate",
                attribute=_xml_safe(predicate.attribute),
                value=_xml_safe(predicate.value),
            )
    else:
        if page.query.attribute is not None:
            request.set("attribute", _xml_safe(page.query.attribute))
        request.set("value", _xml_safe(page.query.value))
    for record in page.records:
        item = ET.SubElement(root, "Item", id=str(record.record_id))
        # Field order is preserved (not sorted): the extractor's
        # decomposition order — and hence BFS/DFS behaviour — must be
        # identical whether results arrive as objects or as XML.
        for attribute, values in record.fields.items():
            if _SAFE_TAG.match(attribute):
                for value in values:
                    ET.SubElement(item, attribute).text = _xml_safe(value)
            else:
                # Attribute names that are not valid XML tags travel as
                # <Field name="..."> (names are attribute values there,
                # which ElementTree escapes correctly).  "Field" cannot
                # collide with a real attribute: record attribute names
                # are lowercased at construction.
                for value in values:
                    field = ET.SubElement(
                        item, "Field", name=_xml_safe(attribute)
                    )
                    field.text = _xml_safe(value)
    return ET.tostring(root, encoding="unicode")


def parse_page(document: str) -> ResultPage:
    """Parse an XML document produced by :func:`render_page`.

    Round-trips exactly: ``parse_page(render_page(p)) == p`` for pages
    whose records carry only displayed attributes (which is all pages a
    real server emits).
    """
    root = ET.fromstring(document)
    request = root.find("Request")
    if request is None:
        raise ValueError("malformed response: missing <Request>")
    predicates = request.findall("Predicate")
    query: AnyQuery
    if predicates:
        query = ConjunctiveQuery.of(
            *(
                AttributeValue(p.get("attribute", ""), p.get("value", ""))
                for p in predicates
            )
        )
    else:
        attribute = request.get("attribute")
        value = request.get("value", "")
        query = Query(value=value, attribute=attribute)
    total: Optional[int] = None
    if root.get("totalResults") is not None:
        total = int(root.get("totalResults", "0"))
    records = []
    for item in root.findall("Item"):
        fields: dict[str, list[str]] = {}
        for child in item:
            if child.tag == "Field":
                name = child.get("name", "")
            else:
                name = child.tag
            fields.setdefault(name, []).append(child.text or "")
        records.append(
            Record(int(item.get("id", "0")), {k: tuple(v) for k, v in fields.items()})
        )
    return ResultPage(
        query=query,
        page_number=int(root.get("page", "1")),
        records=tuple(records),
        total_matches=total,
        accessible_matches=int(root.get("accessibleResults", "0")),
        num_pages=int(root.get("totalPages", "0")),
        page_size=int(root.get("pageSize", "0")),
    )
