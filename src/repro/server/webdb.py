"""The simulated structured web source.

:class:`SimulatedWebDatabase` plays the role of the paper's "server
programs that mimic Web server behaviour on top of the database server":
it owns a universal table, guards it with a
:class:`~repro.server.interface.QueryInterface`, serves paginated,
possibly truncated result pages, and charges one communication round per
page request through a :class:`~repro.server.network.CommunicationLog`.

The crawler must not peek past this class — everything it learns about
the database comes from submitted pages.  Ground-truth accessors used by
experiment harnesses for coverage measurement are prefixed ``truth_`` to
keep that boundary visible in calling code.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, List, Optional

from repro.core.errors import PaginationError
from repro.core.query import ConjunctiveQuery, Query
from repro.core.table import RelationalTable
from repro.server.interface import QueryInterface
from repro.server.limits import ResultLimitPolicy
from repro.server.network import CommunicationLog
from repro.server.pagination import ResultPage
from repro.server.service import render_page


class SimulatedWebDatabase:
    """A web database reachable only through its query interface.

    Parameters
    ----------
    table:
        The backend universal table.
    page_size:
        ``k`` — records per result page (the paper defaults to 10).
    limit_policy:
        Result-size cap and ranking (Section 5.4); unlimited by default.
    report_total:
        Whether pages carry ``num(q, DB)``, the total match count most
        real sources display ("95 results found").
    interface:
        Defaults to the schema's queriable attributes without a keyword
        box; pass :meth:`QueryInterface.keyword_only` etc. to vary.
    order_cache_size:
        Entries kept in the per-query result-ordering LRU cache.  A
        long crawl issues each query many times (one round per page),
        so caching the ordered match list is what keeps pagination
        O(page); the bound keeps memory flat over millions of distinct
        queries.  Hits and misses are counted on the communication log
        (``log.cache_hits`` / ``log.cache_misses``).
    """

    #: Default bound on the result-ordering LRU (distinct queries).
    DEFAULT_ORDER_CACHE_SIZE = 4096

    def __init__(
        self,
        table: RelationalTable,
        page_size: int = 10,
        limit_policy: Optional[ResultLimitPolicy] = None,
        report_total: bool = True,
        interface: Optional[QueryInterface] = None,
        keep_request_log: bool = False,
        order_cache_size: int = DEFAULT_ORDER_CACHE_SIZE,
    ) -> None:
        if order_cache_size < 1:
            raise ValueError(
                f"order_cache_size must be >= 1, got {order_cache_size}"
            )
        self.table = table
        self.page_size = page_size
        self.limit_policy = limit_policy or ResultLimitPolicy()
        self.report_total = report_total
        self.interface = interface or QueryInterface.from_schema(
            table.schema, name=table.name
        )
        self.log = CommunicationLog(keep_requests=keep_request_log)
        self.order_cache_size = order_cache_size
        # Keyed by interned id (see _order_key), not by the Query itself,
        # so lookups on the pagination hot path cost an int hash instead
        # of re-hashing the query's strings on every page request.
        self._order_cache: "OrderedDict[Any, List[int]]" = OrderedDict()

    # ------------------------------------------------------------------
    # The crawler-facing API
    # ------------------------------------------------------------------
    def submit(self, query: Query, page_number: int = 1) -> ResultPage:
        """Answer one page request; costs one communication round.

        Raises
        ------
        UnsupportedQueryError
            If the interface rejects the query (no round is charged —
            the form cannot even be submitted).
        PaginationError
            If the page number is out of range (a round *is* charged;
            the crawler had to ask to find out).
        """
        self.interface.validate(query)
        ordered = self._ordered_matches(query)
        total = len(ordered)
        accessible = self.limit_policy.accessible(total)
        num_pages = math.ceil(accessible / self.page_size)
        if page_number < 1 or page_number > max(num_pages, 1):
            self.log.record(query, page_number, 0)
            raise PaginationError(
                f"page {page_number} out of range: query {query} has "
                f"{num_pages} page(s)"
            )
        start = (page_number - 1) * self.page_size
        stop = min(start + self.page_size, accessible)
        records = tuple(self.table.project(ordered[start:stop]))
        page = ResultPage(
            query=query,
            page_number=page_number,
            records=records,
            total_matches=total if self.report_total else None,
            accessible_matches=accessible,
            num_pages=num_pages,
            page_size=self.page_size,
        )
        self.log.record(query, page_number, len(records))
        return page

    def submit_xml(self, query: Query, page_number: int = 1) -> str:
        """Like :meth:`submit` but returns the XML wire format.

        Used by extractor-based crawls that parse responses the way the
        paper's Amazon experiment consumed AWS XML documents.
        """
        return render_page(self.submit(query, page_number))

    def submit_html(
        self, query: Query, page_number: int = 1, annotated: bool = True
    ) -> str:
        """Like :meth:`submit` but returns an HTML result page.

        ``annotated=False`` renders the plain-table template whose only
        schema hints are its header labels — the wrapper-induction case.
        """
        from repro.server.html import render_html_page

        return render_html_page(self.submit(query, page_number), annotated=annotated)

    @property
    def rounds(self) -> int:
        """Communication rounds consumed so far."""
        return self.log.rounds

    # ------------------------------------------------------------------
    # Durable-runtime state (see repro.runtime)
    # ------------------------------------------------------------------
    def runtime_state(self) -> dict:
        """Dynamic server state a resumed crawl must restore.

        The simulated source itself is a pure function of its table and
        policies (both rebuilt from config on resume); only the round
        counter is crawl-dependent.  The per-request detail log is not
        restored — a resumed crawl's ``log.requests`` covers only the
        post-resume portion.
        """
        return {"rounds": self.log.rounds}

    def load_runtime_state(self, state: dict) -> None:
        self.log.rounds = state["rounds"]

    # ------------------------------------------------------------------
    # Ground truth — for experiment harnesses only
    # ------------------------------------------------------------------
    def truth_size(self) -> int:
        """True number of records (unknown to the crawler)."""
        return len(self.table)

    def truth_count(self, query: Query) -> int:
        """True ``num(q, DB)`` (unknown to the crawler before querying)."""
        return self.table.count(query)

    def truth_coverage(self, record_ids) -> float:
        """Fraction of the true database covered by ``record_ids``."""
        size = len(self.table)
        if size == 0:
            return 0.0
        known = sum(1 for record_id in record_ids if record_id in self.table)
        return known / size

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _order_key(self, query) -> Any:
        """The query's cache key — its interned id on this server's table.

        Equality queries key by the value's dense id (a plain int),
        keyword queries by ``("k", token id)``, conjunctions by
        ``("c", id tuple)``; queries over values the table has never
        seen fall back to ``("q", query)``, *not* to a shared sentinel —
        collapsing all unknown-value queries onto one key would alias
        their (empty) cache entries and corrupt the hit/miss telemetry.

        The computed key is memoized on the query object itself (tagged
        with this server, since ids are per-table), so every later page
        request of the same query object skips string hashing entirely.
        Key equivalence classes coincide with query equality, so cache
        hits, misses, and evictions are exactly those of a query-keyed
        cache.
        """
        memo = query.__dict__.get("_webdb_order_key")
        if memo is not None and memo[0] is self:
            return memo[1]
        key: Any
        if isinstance(query, ConjunctiveQuery):
            value_id = self.table.value_id
            vids = []
            for pair in query.predicates:
                vid = value_id(pair)
                if vid is None:
                    vids = None
                    break
                vids.append(vid)
            key = ("c", tuple(vids)) if vids is not None else ("q", query)
        elif query.is_keyword:
            tid = self.table.keyword_id(query.value)
            key = ("k", tid) if tid is not None else ("q", query)
        else:
            vid = self.table.value_id(query.as_attribute_value())
            key = vid if vid is not None else ("q", query)
        # Frozen dataclasses still carry a __dict__; writing there skips
        # the frozen guard without mutating any compared field.  Pickle
        # and deepcopy drop the memo (see Query.__getstate__).
        query.__dict__["_webdb_order_key"] = (self, key)
        return key

    def _ordered_matches(self, query: Query) -> List[int]:
        """The query's full ordered match list, LRU-cached.

        Safe to cache and safe to evict: ``limit_policy.order`` is a
        pure function of (seed, query, match ids), so a recomputed
        entry is identical to the evicted one — the bound changes
        memory use, never results.
        """
        cache = self._order_cache
        key = self._order_key(query)
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            self.log.cache_hits += 1
            return cached
        self.log.cache_misses += 1
        ordered = self.limit_policy.order(query, self.table.match(query))
        cache[key] = ordered
        if len(cache) > self.order_cache_size:
            cache.popitem(last=False)
        return ordered
