"""Structured crawl tracing — causal spans over the event bus.

One crawl step becomes one span tree::

    step                      the query–harvest–decompose iteration
    ├── select                one per selector consultation
    │   └── score             selector-internal scoring (MMMI/DM)
    ├── submit                one per query put on the wire
    │   ├── reject            interface refused the query
    │   ├── fetch             one per result page
    │   │   ├── retry         transient failure absorbed before the page
    │   │   └── abort         the abortion policy stopped paying here
    │   └── fail              retries exhausted mid-query
    ├── extract               page parsing + record decomposition
    └── decompose             frontier update / outcome bookkeeping
        └── frontier-refresh  priority re-scoring (GL)

Span ids derive from the step number and in-step position alone —
never from wall clocks — so a trace is bit-identical across resume and
across the parallel runner at any worker count.  Wall/CPU durations
ride in a separate, optional ``"t"`` field that canonical
(byte-comparable) traces omit.

See :class:`~repro.trace.sink.TraceSink` for the event-bus adapter,
:mod:`repro.trace.export` for Chrome/Perfetto output, and
:mod:`repro.trace.analyze` for summaries, critical paths, and folded
stacks.
"""

from repro.trace.analyze import (
    critical_paths,
    diff_summaries,
    folded_stacks,
    lane_breakdown,
    render_diff,
    render_summary,
    summarize,
)
from repro.trace.export import to_chrome, write_chrome
from repro.trace.sink import TraceSink, write_trace
from repro.trace.spans import (
    TRACE_SCHEMA,
    TraceError,
    load_trace,
    validate_trace_jsonl,
)

__all__ = [
    "TRACE_SCHEMA",
    "TraceError",
    "TraceSink",
    "critical_paths",
    "diff_summaries",
    "folded_stacks",
    "lane_breakdown",
    "load_trace",
    "render_diff",
    "render_summary",
    "summarize",
    "to_chrome",
    "validate_trace_jsonl",
    "write_chrome",
    "write_trace",
]
