"""Trace analysis: phase breakdowns, expensive queries, critical paths.

Everything here consumes a parsed :class:`~repro.trace.spans.Trace`.
Wall/CPU figures only appear when the trace was written with timings;
canonical traces still get the structural analyses (rounds, pages,
harvest rates, critical paths by round cost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.spans import Trace

def build_trees(spans: List[dict]) -> List[Tuple[dict, Dict[str, List[dict]]]]:
    """Group one task's spans into ``(root, children_by_id)`` trees."""
    trees: List[Tuple[dict, Dict[str, List[dict]]]] = []
    children: Dict[str, List[dict]] = {}
    root: Optional[dict] = None
    for span in spans:
        if span["parent"] is None:
            if root is not None:
                trees.append((root, children))
            root = span
            children = {}
        else:
            children.setdefault(span["parent"], []).append(span)
    if root is not None:
        trees.append((root, children))
    return trees


def span_wall(span: dict) -> Optional[float]:
    timings = span.get("t")
    return timings.get("ws") if timings else None


def span_cpu(span: dict) -> Optional[float]:
    timings = span.get("t")
    return timings.get("cs") if timings else None


def span_rounds(span: dict) -> int:
    """Communication rounds this span itself paid (not its children).

    A retry pays for the failed request itself (one round) plus its
    charged backoff delay.
    """
    if span["name"] == "fetch":
        return 1
    if span["name"] == "retry":
        return 1 + int(span["attrs"].get("delay_rounds", 0))
    return 0


def subtree_weight(
    span: dict, children: Dict[str, List[dict]]
) -> Tuple[float, int]:
    """``(wall_seconds, rounds)`` of a span's whole subtree."""
    wall = span_wall(span) or 0.0
    rounds = span_rounds(span)
    child_wall = 0.0
    for child in children.get(span["id"], ()):
        w, r = subtree_weight(child, children)
        child_wall += w
        rounds += r
    # A parent's own measured wall already covers its children; only
    # unmeasured parents inherit the sum.
    if span_wall(span) is None:
        wall = child_wall
    return wall, rounds


# ----------------------------------------------------------------------
# Lane attribution (stitched traces)
# ----------------------------------------------------------------------
def lane_breakdown(trace: Trace) -> Optional[dict]:
    """Wall-time split across the three lanes of a remote crawl.

    Only meaningful for *stitched* traces (client + server halves in
    one file); returns ``None`` when no server ``request`` spans are
    present.  Attribution:

    - ``server_s`` — Σ wall of ``request`` spans (each covers its
      phase children, so children are not double-counted);
    - ``client_s`` — Σ wall of the top-level client compute phases
      (``select``/``extract``/``decompose``; their nested children —
      ``score``, ``frontier-refresh`` — are covered by the parents);
    - ``wire_s`` — the residual ``total − server − client``: transport,
      client-side request bookkeeping, and scheduling gaps.  Clamped
      at zero (timing noise can make tiny subtractions go negative).

    On a canonical (untimed) stitched trace every figure is zero but
    the request/fetch counts still report coverage.
    """
    total = server = client = 0.0
    requests = fetches = 0
    has_request = False
    for task in trace.tasks:
        for span in task.spans:
            name = span["name"]
            if name == "request":
                has_request = True
                requests += 1
                server += span_wall(span) or 0.0
            elif name == "fetch":
                fetches += 1
            elif name == "step":
                total += span_wall(span) or 0.0
            elif name in ("select", "extract", "decompose"):
                client += span_wall(span) or 0.0
    if not has_request:
        return None
    return {
        "total_s": round(total, 6),
        "server_s": round(server, 6),
        "client_s": round(client, 6),
        "wire_s": round(max(total - server - client, 0.0), 6),
        "requests": requests,
        "fetches": fetches,
    }


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def summarize(trace: Trace, top: int = 10) -> dict:
    """Roll a trace up into a JSON-safe summary dict."""
    phases: Dict[str, dict] = {}
    steps = 0
    exhausted = 0
    totals = {"rounds": 0, "pages": 0, "records": 0, "new": 0, "dup": 0}
    policies: Dict[str, int] = {}
    expensive: List[dict] = []
    timed = False
    for task in trace.tasks:
        for span in task.spans:
            name = span["name"]
            entry = phases.setdefault(
                name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            wall = span_wall(span)
            if wall is not None:
                timed = True
                entry["wall_s"] += wall
                entry["cpu_s"] += span_cpu(span) or 0.0
            if name != "step":
                continue
            attrs = span["attrs"]
            policy = attrs.get("policy")
            if policy:
                policies[policy] = policies.get(policy, 0) + 1
            if attrs.get("exhausted"):
                exhausted += 1
                continue
            steps += 1
            for key in totals:
                totals[key] += attrs.get(key, 0)
            expensive.append(
                {
                    "task": task.label,
                    "step": span["step"],
                    "query": attrs.get("query", "?"),
                    "rounds": attrs.get("rounds", 0),
                    "pages": attrs.get("pages", 0),
                    "new": attrs.get("new", 0),
                    "harvest_rate": attrs.get("harvest_rate", 0.0),
                    "wall_s": wall,
                }
            )
    expensive.sort(
        key=lambda q: (-q["rounds"], -q["pages"], q["step"], q["query"])
    )
    for entry in phases.values():
        entry["wall_s"] = round(entry["wall_s"], 6)
        entry["cpu_s"] = round(entry["cpu_s"], 6)
    pages = totals["pages"]
    summary = {
        "schema": trace.header.get("schema"),
        "tasks": len(trace.tasks),
        "steps": steps,
        "exhausted_steps": exhausted,
        "policies": dict(sorted(policies.items())),
        "totals": dict(totals),
        "harvest_rate": round(totals["new"] / pages, 6) if pages else 0.0,
        "timed": timed,
        "phases": {name: phases[name] for name in sorted(phases)},
        "top_queries": expensive[:top],
    }
    lanes = lane_breakdown(trace)
    if lanes is not None:
        summary["lanes"] = lanes
    return summary


def render_summary(summary: dict) -> str:
    """Human-readable summary text for ``repro trace summarize``."""
    lines = [
        f"trace: {summary['tasks']} task(s), {summary['steps']} steps"
        + (
            f" (+{summary['exhausted_steps']} exhausted)"
            if summary["exhausted_steps"]
            else ""
        ),
    ]
    if summary["policies"]:
        policy_bits = ", ".join(
            f"{name}: {count}" for name, count in summary["policies"].items()
        )
        lines.append(f"policies: {policy_bits}")
    totals = summary["totals"]
    lines.append(
        f"cost: {totals['rounds']} rounds, {totals['pages']} pages, "
        f"{totals['new']} new / {totals['dup']} duplicate records "
        f"(harvest rate {summary['harvest_rate']:.4f})"
    )
    lines.append("")
    lines.append("phase breakdown:")
    header = f"  {'phase':<18}{'count':>8}"
    if summary["timed"]:
        header += f"{'wall (s)':>12}{'cpu (s)':>12}"
    lines.append(header)
    for name, entry in summary["phases"].items():
        row = f"  {name:<18}{entry['count']:>8}"
        if summary["timed"]:
            row += f"{entry['wall_s']:>12.4f}{entry['cpu_s']:>12.4f}"
        lines.append(row)
    lanes = summary.get("lanes")
    if lanes is not None:
        lines.append("")
        lines.append(
            "lane breakdown (stitched): "
            f"server {lanes['server_s']:.4f} s | "
            f"client {lanes['client_s']:.4f} s | "
            f"wire+sched {lanes['wire_s']:.4f} s "
            f"of {lanes['total_s']:.4f} s "
            f"({lanes['requests']} server-traced requests, "
            f"{lanes['fetches']} fetches)"
        )
    if summary["top_queries"]:
        lines.append("")
        lines.append("most expensive queries (by rounds):")
        for q in summary["top_queries"]:
            task = f"[{q['task']}] " if q["task"] else ""
            wall = (
                f", {q['wall_s'] * 1e3:.2f} ms"
                if q.get("wall_s") is not None
                else ""
            )
            lines.append(
                f"  {task}step {q['step']:>4}  {q['query']}: "
                f"{q['rounds']} rounds, {q['pages']} pages, "
                f"{q['new']} new (hr {q['harvest_rate']:.3f}{wall})"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Critical paths and folded stacks
# ----------------------------------------------------------------------
def critical_paths(trace: Trace, top: int = 10) -> List[dict]:
    """Dominant root-to-leaf paths across all step trees.

    For every step the heaviest child is followed recursively (by wall
    time when the trace is timed, else by round cost); identical path
    signatures aggregate.  The result is sorted by total weight — the
    crawl's critical path is the top entry.
    """
    aggregate: Dict[str, dict] = {}
    for task in trace.tasks:
        for root, children in build_trees(task.spans):
            names = [root["name"]]
            wall_total, rounds_total = subtree_weight(root, children)
            node = root
            while True:
                kids = children.get(node["id"])
                if not kids:
                    break
                node = max(
                    kids,
                    key=lambda s: (
                        subtree_weight(s, children),
                        -s["seq"],
                    ),
                )
                names.append(node["name"])
            signature = ";".join(names)
            entry = aggregate.setdefault(
                signature,
                {"path": signature, "count": 0, "wall_s": 0.0, "rounds": 0},
            )
            entry["count"] += 1
            entry["wall_s"] += wall_total
            entry["rounds"] += rounds_total
    paths = sorted(
        aggregate.values(),
        key=lambda e: (-e["wall_s"], -e["rounds"], e["path"]),
    )
    for entry in paths:
        entry["wall_s"] = round(entry["wall_s"], 6)
    return paths[:top]


def folded_stacks(trace: Trace) -> List[str]:
    """Flamegraph-ready folded stacks (``a;b;c <value>`` lines).

    Values are self-time in microseconds when the trace is timed,
    otherwise self round cost; zero-valued stacks are dropped.
    """
    buckets: Dict[str, int] = {}
    for task in trace.tasks:
        prefix = f"{task.label};" if task.label else ""
        for root, children in build_trees(task.spans):
            _fold(root, children, prefix + "crawl", buckets)
    return [
        f"{stack} {value}"
        for stack, value in sorted(buckets.items())
        if value > 0
    ]


def _fold(
    span: dict,
    children: Dict[str, List[dict]],
    prefix: str,
    buckets: Dict[str, int],
) -> None:
    stack = f"{prefix};{span['name']}"
    wall = span_wall(span)
    kids = children.get(span["id"], ())
    if wall is not None:
        child_wall = sum((span_wall(k) or 0.0) for k in kids)
        self_us = int(max(wall - child_wall, 0.0) * 1e6)
    else:
        self_us = span_rounds(span)
    buckets[stack] = buckets.get(stack, 0) + self_us
    for child in kids:
        _fold(child, children, stack, buckets)


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def diff_summaries(a: dict, b: dict) -> dict:
    """Structural comparison of two trace summaries."""
    names = sorted(set(a["phases"]) | set(b["phases"]))
    phases = {}
    for name in names:
        pa = a["phases"].get(name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
        pb = b["phases"].get(name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
        phases[name] = {
            "count": (pa["count"], pb["count"]),
            "wall_s": (pa["wall_s"], pb["wall_s"]),
        }
    keys = ("rounds", "pages", "new", "dup")
    return {
        "steps": (a["steps"], b["steps"]),
        "totals": {
            key: (a["totals"][key], b["totals"][key]) for key in keys
        },
        "harvest_rate": (a["harvest_rate"], b["harvest_rate"]),
        "phases": phases,
    }


def render_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Human-readable diff text for ``repro trace diff``."""

    def delta(pair) -> str:
        va, vb = pair
        change = vb - va
        sign = "+" if change >= 0 else ""
        if isinstance(change, float):
            return f"{sign}{change:.4f}"
        return f"{sign}{change}"

    lines = [f"{'':<18}{label_a:>14}{label_b:>14}{'delta':>12}"]
    lines.append(
        f"{'steps':<18}{diff['steps'][0]:>14}{diff['steps'][1]:>14}"
        f"{delta(diff['steps']):>12}"
    )
    for key, pair in diff["totals"].items():
        lines.append(
            f"{key:<18}{pair[0]:>14}{pair[1]:>14}{delta(pair):>12}"
        )
    hr = diff["harvest_rate"]
    lines.append(
        f"{'harvest_rate':<18}{hr[0]:>14.4f}{hr[1]:>14.4f}{delta(hr):>12}"
    )
    lines.append("")
    lines.append("per-phase (count | wall s):")
    for name, entry in diff["phases"].items():
        ca, cb = entry["count"]
        wa, wb = entry["wall_s"]
        lines.append(
            f"  {name:<16}{ca:>7} → {cb:<7}  "
            f"{wa:>10.4f} → {wb:<10.4f} ({delta(entry['wall_s'])} s)"
        )
    return "\n".join(lines)
