"""Chrome / Perfetto trace-event export.

Converts a span-JSONL trace into the Trace Event Format JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly: one
``"X"`` (complete) event per span, one process row per grid task.

Span JSONL carries durations, not absolute timestamps (timestamps are
wall-clock and would break determinism), so the exporter synthesizes a
timeline: steps are laid out back to back per task, and within a step
each span starts where its previous sibling ended.  Durations come
from the ``"t"`` wall timings when the trace has them; canonical
traces fall back to round cost (1 ms per communication round) so the
shape of the crawl is still visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.trace.analyze import build_trees, span_rounds, span_wall
from repro.trace.spans import Trace

PathLike = Union[str, Path]

#: Synthetic duration scale for untimed traces: one round = 1 ms.
_US_PER_ROUND = 1000


def _duration_us(
    span: dict, children: Dict[str, List[dict]], cache: Dict[str, int]
) -> int:
    """Microsecond duration: own wall, else children + round cost, min 1."""
    cached = cache.get(span["id"])
    if cached is not None:
        return cached
    child_total = sum(
        _duration_us(child, children, cache)
        for child in children.get(span["id"], ())
    )
    wall = span_wall(span)
    if wall is not None:
        duration = max(int(wall * 1e6), child_total, 1)
    else:
        duration = max(span_rounds(span) * _US_PER_ROUND + child_total, 1)
    cache[span["id"]] = duration
    return duration


def to_chrome(trace: Trace) -> dict:
    """Build the Trace Event Format payload for a parsed trace."""
    events: List[dict] = []
    for pid, task in enumerate(trace.tasks):
        name = task.label or "crawl"
        if task.seed_index is not None:
            name = f"{name} (seed {task.seed_index})"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        cursor = 0
        for root, children in build_trees(task.spans):
            cache: Dict[str, int] = {}
            _duration_us(root, children, cache)
            _emit(root, children, cache, cursor, pid, events)
            cursor += cache[root["id"]]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _emit(
    span: dict,
    children: Dict[str, List[dict]],
    cache: Dict[str, int],
    start_us: int,
    pid: int,
    events: List[dict],
) -> None:
    name = span["name"]
    if name == "submit" and "query" in span["attrs"]:
        name = f"submit {span['attrs']['query']}"
    elif name == "step":
        name = f"step {span['step']}"
    events.append(
        {
            "ph": "X",
            "name": name,
            "cat": "crawl",
            "ts": start_us,
            "dur": cache[span["id"]],
            "pid": pid,
            "tid": 0,
            "args": dict(span["attrs"]),
        }
    )
    cursor = start_us
    for child in children.get(span["id"], ()):
        _emit(child, children, cache, cursor, pid, events)
        cursor += cache[child["id"]]


def write_chrome(trace: Trace, path: PathLike) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    payload = to_chrome(trace)
    Path(path).write_text(
        json.dumps(payload, separators=(",", ":")), encoding="utf-8"
    )
    return len(payload["traceEvents"])
