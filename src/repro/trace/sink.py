"""TraceSink — assembles causal span trees from the crawl event stream.

The sink subscribes to the engine's :class:`~repro.runtime.events.EventBus`
(``wants_phases = True`` switches the engine/prober/selector
instrumentation on) and folds the per-step event sequence into one span
tree, flushed to span JSONL as each step completes:

- :class:`~repro.runtime.events.StepStarted` opens the ``step`` root;
- engine/selector :class:`~repro.runtime.events.PhaseCompleted` events
  become ``select``/``extract``/``decompose`` children (selector
  phases — ``score``, ``frontier-refresh`` — nest under the engine
  phase that triggered them);
- wire events (:class:`~repro.runtime.events.QueryIssued`,
  ``PageFetched``, ``RetryAttempted``, ``QueryAborted``,
  ``QueryFailed``, ``QueryRejected``) become the ``submit`` subtree;
- :class:`~repro.runtime.events.RecordsHarvested` closes the step,
  stamps the paper's cost-model attributes on the root (query, pages,
  rounds paid, new vs duplicate records, harvest rate), and writes the
  whole tree.

Determinism: span ids and ``seq`` numbers derive from the step number
and the in-step event order — both functions of the crawl alone — so a
trace is byte-identical across sequential/parallel execution and
across a crash/resume split.  Wall/CPU durations are collected (when
``include_timings``) into the non-canonical ``"t"`` field only.

Durability: every completed step is flushed to disk before the runtime
journals it can fall behind, so the trace's durable horizon is always
at least the journal's.  On resume, :meth:`TraceSink.align` truncates
the file back to the recovered step horizon and continues the ``seq``
stream from the last surviving span — the resumed file is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.runtime.events import (
    CheckpointWritten,
    CrawlEvent,
    CrawlStopped,
    EventSink,
    PageFetched,
    PhaseCompleted,
    QueryAborted,
    QueryFailed,
    QueryIssued,
    QueryRejected,
    RecordsHarvested,
    RetryAttempted,
    StepStarted,
)
from repro.trace.spans import TRACE_SCHEMA, TraceError

PathLike = Union[str, Path]

#: Short id segments for selector-internal phases.
_PHASE_TAGS = {"score": "score", "frontier-refresh": "fr"}


def _dump(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":"))


def _json_str(value: str) -> str:
    """JSON string literal, byte-identical to ``json.dumps(value)``.

    Plain printable-ASCII strings (every id, phase name, and almost
    every query value) embed directly; anything needing escapes falls
    back to the real encoder.
    """
    if (
        value.isascii()
        and value.isprintable()
        and '"' not in value
        and "\\" not in value
    ):
        return f'"{value}"'
    return json.dumps(value)


def _json_val(value) -> str:
    """JSON literal for an attr value (ints/floats/strings/bools)."""
    kind = type(value)
    if kind is int:
        return str(value)
    if kind is str:
        return _json_str(value)
    if kind is float:
        return repr(value)
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    return json.dumps(value, separators=(",", ":"))


def _json_attrs(detail: dict) -> str:
    """JSON object literal for a phase's detail dict (skips ``matches``,
    which the sink lifts onto the step root instead).

    Every detail the engine and the selectors emit today is one or two
    int-valued keys, so those shapes render with a single f-string; the
    generic loop only runs for future emitters.
    """
    size = len(detail)
    if size == 1:
        ((key, value),) = detail.items()
        if type(value) is int:
            return "{}" if key == "matches" else f'{{"{key}":{value}}}'
    elif size == 2:
        (k1, v1), (k2, v2) = detail.items()
        if type(v1) is int and type(v2) is int:
            if k1 == "matches":
                return f'{{"{k2}":{v2}}}'
            if k2 == "matches":
                return f'{{"{k1}":{v1}}}'
            return f'{{"{k1}":{v1},"{k2}":{v2}}}'
    elif not detail:
        return "{}"
    parts = [
        f'"{key}":{_json_val(value)}'
        for key, value in detail.items()
        if key != "matches"
    ]
    return "{" + ",".join(parts) + "}"


class TraceSink(EventSink):
    """Write one crawl's span tree stream to ``path`` (or collect it).

    Parameters
    ----------
    path:
        Span-JSONL output file.  ``None`` collects finished span lines
        in :attr:`collected` instead — the mode the parallel grid's
        workers use to ship spans back for fixed-order merging.
    include_timings:
        Attach wall/CPU durations as the non-canonical ``"t"`` field.
        Off for canonical (byte-comparable) traces.
    fresh:
        Truncate/create ``path`` immediately (default).  Pass ``False``
        when resuming: the file is left untouched until
        :meth:`align` rewrites it to the recovered horizon.
    """

    wants_phases = True

    def __init__(
        self,
        path: Optional[PathLike] = None,
        include_timings: bool = True,
        fresh: bool = True,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.include_timings = include_timings
        self.collected: List[str] = []
        self.spans_written = 0
        #: Flush after every completed step.  Off by default (plain
        #: crawls only need the close()-time flush); the durable
        #: runtime switches it on so the trace's durable horizon never
        #: falls behind the journal's.
        self.step_flush = False
        self._handle = None
        self._seq = 0
        self._last_rounds = 0
        self._policy_key: Optional[str] = None
        self._policy_frag = ""
        self._reset_step()
        if self.path is not None and fresh:
            self._open(mode="w")

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def _open(self, mode: str) -> None:
        assert self.path is not None
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._handle.write(_dump({"schema": TRACE_SCHEMA}) + "\n")
            self._handle.flush()

    def align(
        self,
        step: int,
        rounds: int,
        state: Optional[dict] = None,
    ) -> int:
        """Rewind the trace file to the resumed crawl's position.

        ``step`` is the engine's completed-step count after checkpoint
        restore + journal replay; ``rounds`` the server's cumulative
        round counter at that point.  Spans past ``step`` (written by
        the crashed run but lost from the journal) are dropped, and the
        ``seq`` stream continues from the last surviving span, so the
        resumed file ends up byte-identical to an uninterrupted run's.

        ``state`` is the checkpoint-embedded
        :meth:`state_dict` snapshot; it seeds ``seq`` when the trace
        file itself is missing (e.g. the crashed run wrote its trace
        elsewhere).  Returns the number of spans kept.
        """
        self._last_rounds = rounds
        if self.path is None or not self.path.exists():
            self._seq = int((state or {}).get("next_seq", 0))
            if self.path is not None:
                self._open(mode="w")
            return 0
        raw = self.path.read_text(encoding="utf-8").splitlines()
        if not raw:
            raise TraceError(f"{self.path}: empty trace file")
        header = json.loads(raw[0])
        if header.get("schema") != TRACE_SCHEMA:
            raise TraceError(
                f"{self.path}: not a {TRACE_SCHEMA} trace "
                f"(schema={header.get('schema')!r})"
            )
        kept: List[str] = []
        last_seq = -1
        for line in raw[1:]:
            if not line.strip():
                continue
            span = json.loads(line)
            if "task" in span:
                raise TraceError(
                    f"{self.path}: cannot resume into a merged grid trace"
                )
            if span["step"] > step:
                break  # spans are written in step order; the rest is newer
            kept.append(line)
            last_seq = span["seq"]
        self._seq = last_seq + 1
        # Rewrite the surviving prefix verbatim (byte preservation).
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(raw[0] + "\n")
            for line in kept:
                handle.write(line + "\n")
        self._open(mode="a")
        self.spans_written = len(kept)
        return len(kept)

    def state_dict(self) -> dict:
        """Checkpoint-embeddable continuation state (open spans are
        never checkpointed: a snapshot always happens between steps)."""
        return {"next_seq": self._seq, "last_rounds": self._last_rounds}

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    # ------------------------------------------------------------------
    # Event assembly
    #
    # Spans are assembled as complete JSON lines with inline f-strings
    # rather than dicts fed to ``json.dumps`` — the encoder was ~half
    # the sink's cost and ``benchmarks/test_trace_overhead`` holds the
    # whole sink under 5% of crawl CPU.  ``seq`` is assigned at emit
    # time (buffer order is write order; the root reserves the step's
    # first seq at ``StepStarted`` and is rendered at finalization,
    # once the harvest event has delivered the cost-model attrs).  The
    # canonical fields are byte-identical to
    # ``json.dumps(span, separators=(",", ":"))``.
    # ------------------------------------------------------------------
    def _reset_step(self) -> None:
        self._step: Optional[int] = None
        self._sid = ""
        self._policy: Optional[str] = None
        self._buffer: List[str] = []
        self._append = self._buffer.append
        self._pending: List[Tuple[str, float, float, str]] = []
        self._retries: List[Tuple[int, int, int]] = []
        self._root_seq = 0
        self._sel = 0
        self._q = 0
        self._qid: Optional[str] = None
        self._records = 0
        self._matches: Optional[int] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def _emit(self, span_id: str, parent: str, name: str, attrs: str) -> None:
        seq = self._seq
        self._seq = seq + 1
        self._append(
            f'{{"id":"{span_id}","parent":"{parent}","name":"{name}",'
            f'"step":{self._step},"seq":{seq},"attrs":{attrs}}}'
        )

    def _emit_timed(
        self,
        span_id: str,
        parent: str,
        name: str,
        attrs: str,
        wall: float,
        cpu: float,
    ) -> None:
        seq = self._seq
        self._seq = seq + 1
        if self.include_timings:
            self._append(
                f'{{"id":"{span_id}","parent":"{parent}","name":"{name}",'
                f'"step":{self._step},"seq":{seq},"attrs":{attrs},'
                f'"t":{{"ws":{int(wall * 1e9)}e-9,"cs":{int(cpu * 1e9)}e-9}}}}'
            )
        else:
            self._append(
                f'{{"id":"{span_id}","parent":"{parent}","name":"{name}",'
                f'"step":{self._step},"seq":{seq},"attrs":{attrs}}}'
            )

    def _on_step_started(self, event: StepStarted) -> None:
        if self._step is not None:  # abandoned step: reclaim its seq ids
            self._seq = self._root_seq
            self._reset_step()
        self._step = event.step
        self._sid = f"s{event.step}"
        if self.include_timings:
            self._wall0 = time.perf_counter()
            self._cpu0 = time.process_time()
        self._policy = event.policy
        self._root_seq = self._seq
        self._seq += 1
        self._append("")  # root placeholder, rendered at finalize

    def _attach_retries(self, fetch_id: str, page_number: int) -> None:
        remaining = []
        for page, attempt, delay_rounds in self._retries:
            if page == page_number:
                self._emit(
                    f"{fetch_id}/r{attempt}",
                    fetch_id,
                    "retry",
                    f'{{"delay_rounds":{delay_rounds}}}',
                )
            else:
                remaining.append((page, attempt, delay_rounds))
        self._retries = remaining

    def _on_aborted(self, event: QueryAborted) -> None:
        if self._qid is None:
            return
        last = f"{self._qid}/p{event.pages_fetched}"
        self._emit(
            f"{last}/abort", last, "abort", f'{{"saved":{event.pages_saved}}}'
        )

    def _on_failed(self, event: QueryFailed) -> None:
        if self._qid is None:
            return
        # Retries for the page that never arrived nest under submit.
        for _page, attempt, delay_rounds in self._retries:
            self._emit(
                f"{self._qid}/r{attempt}",
                self._qid,
                "retry",
                f'{{"delay_rounds":{delay_rounds}}}',
            )
        self._retries = []
        self._emit(
            f"{self._qid}/fail",
            self._qid,
            "fail",
            f'{{"pages":{event.pages_fetched}}}',
        )

    def handle(self, event: CrawlEvent) -> None:
        # Exact-type chain ordered by event frequency, with the hot
        # branches (phases, fetches, submits) fully inlined — this is
        # the sink's per-event cost and the overhead benchmark prices
        # it against the whole crawl.
        kind = type(event)
        if kind is PhaseCompleted:
            if self._step is None:
                return
            phase = event.phase
            detail = event.detail
            if phase in _PHASE_TAGS:
                # Selector-internal: parented under the engine phase
                # that triggered it, which has not arrived yet — buffer.
                self._pending.append(
                    (
                        phase,
                        event.seconds,
                        event.cpu_seconds,
                        _json_attrs(detail) if detail else "{}",
                    )
                )
                return
            sid = self._sid
            if phase == "select":
                parent_id = f"{sid}/sel{self._sel}"
                self._sel += 1
            elif phase == "extract":
                parent_id = f"{sid}/extract"
                if "matches" in detail:
                    self._matches = detail["matches"]
            elif phase == "decompose":
                parent_id = f"{sid}/dec"
            else:  # pragma: no cover - future phases pass through
                parent_id = f"{sid}/{phase}"
            attrs = _json_attrs(detail) if detail else "{}"
            seq = self._seq
            self._seq = seq + 1
            if self.include_timings:
                self._append(
                    f'{{"id":"{parent_id}","parent":"{sid}",'
                    f'"name":"{phase}","step":{self._step},"seq":{seq},'
                    f'"attrs":{attrs},"t":{{"ws":{int(event.seconds * 1e9)}e-9,'
                    f'"cs":{int(event.cpu_seconds * 1e9)}e-9}}}}'
                )
            else:
                self._append(
                    f'{{"id":"{parent_id}","parent":"{sid}",'
                    f'"name":"{phase}","step":{self._step},"seq":{seq},'
                    f'"attrs":{attrs}}}'
                )
            if self._pending and (phase == "select" or phase == "decompose"):
                for index, (name, wall, cpu, attrs) in enumerate(
                    self._pending
                ):
                    self._emit_timed(
                        f"{parent_id}/{_PHASE_TAGS[name]}{index}",
                        parent_id,
                        name,
                        attrs,
                        wall,
                        cpu,
                    )
                self._pending = []
        elif kind is PageFetched:
            qid = self._qid
            if qid is None:
                return
            fetch_id = f"{qid}/p{event.page_number}"
            seq = self._seq
            self._seq = seq + 1
            self._append(
                f'{{"id":"{fetch_id}","parent":"{qid}","name":"fetch",'
                f'"step":{self._step},"seq":{seq},'
                f'"attrs":{{"records":{event.records},'
                f'"new":{event.new_records}}}}}'
            )
            self._records += event.records
            if self._retries:
                self._attach_retries(fetch_id, event.page_number)
        elif kind is StepStarted:
            self._on_step_started(event)
        elif kind is QueryIssued:
            if self._step is None:
                return
            qid = f"{self._sid}/q{self._q}"
            self._q += 1
            self._qid = qid
            self._retries = []
            seq = self._seq
            self._seq = seq + 1
            self._append(
                f'{{"id":"{qid}","parent":"{self._sid}","name":"submit",'
                f'"step":{self._step},"seq":{seq},'
                f'"attrs":{{"query":{_json_str(str(event.query))}}}}}'
            )
        elif kind is RecordsHarvested:
            self._finalize(event)
        elif kind is RetryAttempted:
            if self._qid is not None:
                self._retries.append(
                    (event.page_number, event.attempt, event.backoff_rounds)
                )
        elif kind is QueryAborted:
            self._on_aborted(event)
        elif kind is QueryFailed:
            self._on_failed(event)
        elif kind is QueryRejected:
            if self._qid is not None:
                self._emit(f"{self._qid}/reject", self._qid, "reject", "{}")
        elif kind is CheckpointWritten:
            self.flush()
        elif kind is CrawlStopped:
            self._finalize_partial()
            self.flush()

    # ------------------------------------------------------------------
    # Step finalization
    # ------------------------------------------------------------------
    def _render_root(self, attrs: str) -> str:
        line = (
            f'{{"id":"{self._sid}","parent":null,"name":"step",'
            f'"step":{self._step},"seq":{self._root_seq},"attrs":{attrs}'
        )
        if self.include_timings:
            wall = time.perf_counter() - self._wall0
            cpu = time.process_time() - self._cpu0
            return (
                f'{line},"t":{{"ws":{int(wall * 1e9)}e-9,'
                f'"cs":{int(cpu * 1e9)}e-9}}}}'
            )
        return line + "}"

    def _policy_fragment(self) -> str:
        policy = self._policy
        if policy is None:
            return ""
        if policy != self._policy_key:
            self._policy_key = policy
            self._policy_frag = f'"policy":{_json_str(policy)},'
        return self._policy_frag

    def _finalize(self, event: RecordsHarvested) -> None:
        if self._step is None:
            return
        pages = event.pages_fetched
        harvest_rate = round(event.new_records / pages, 6) if pages else 0.0
        policy = self._policy_fragment()
        matches = (
            f',"matches":{self._matches}' if self._matches is not None else ""
        )
        self._buffer[0] = self._render_root(
            f'{{{policy}"query":{_json_str(str(event.query))},'
            f'"pages":{pages},"records":{self._records},'
            f'"new":{event.new_records},'
            f'"dup":{self._records - event.new_records},'
            f'"rounds":{event.rounds - self._last_rounds},'
            f'"records_total":{event.records_total},'
            f'"harvest_rate":{harvest_rate!r}{matches}}}'
        )
        self._last_rounds = event.rounds
        self._write_step()

    def _finalize_partial(self) -> None:
        """Frontier exhaustion: the final step opened but never harvested.

        The surviving spans (the root plus its ``select`` consultations)
        are a deterministic artifact of the crawl's end, so they are
        written — identically by a full run and a resumed one.
        """
        if self._step is None:
            return
        policy = self._policy_fragment()
        self._buffer[0] = self._render_root(
            f"{{{policy}\"exhausted\":true}}"
        )
        self._write_step()

    def _write_step(self) -> None:
        buffer = self._buffer
        if self.path is not None:
            if self._handle is None:
                self._open(mode="w")
            self._handle.write("\n".join(buffer) + "\n")
            if self.step_flush:
                self._handle.flush()
        else:
            self.collected.extend(buffer)
        self.spans_written += len(buffer)
        self._reset_step()


def write_trace(
    path: PathLike,
    tasks: Sequence[Tuple[str, int, Sequence[str]]],
    append: bool = False,
) -> int:
    """Write a merged experiment-grid trace.

    ``tasks`` is ``[(label, seed_index, span_lines), ...]`` in the
    grid's fixed task order (the same order
    :func:`repro.parallel.run_crawl_grid` merges results in), so the
    output is identical at any worker count.  ``append`` adds the tasks
    to an existing trace file instead of starting a new one — how
    multi-grid experiments (one grid per panel or policy) merge all
    their grids into a single trace.  Returns the span count.
    """
    path = Path(path)
    total = 0
    mode = "a" if append and path.exists() else "w"
    with open(path, mode, encoding="utf-8") as handle:
        if mode == "w":
            handle.write(_dump({"schema": TRACE_SCHEMA}) + "\n")
        for label, seed_index, lines in tasks:
            handle.write(
                _dump({"task": label, "seed_index": seed_index}) + "\n"
            )
            for line in lines:
                handle.write(line + "\n")
                total += 1
    return total
