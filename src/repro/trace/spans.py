"""The ``repro-trace/1`` span-JSONL format: schema, loader, validator.

A trace file is newline-delimited JSON:

- line 1 — the header: ``{"schema": "repro-trace/1", ...}``;
- ``{"task": <label>, "seed_index": <i>}`` — a task marker opening one
  crawl's span segment inside a merged (experiment-grid) trace; absent
  in single-crawl traces;
- every other line — one span::

      {"id": "s3/q0/p2", "parent": "s3/q0", "name": "fetch",
       "step": 3, "seq": 17, "attrs": {...}, "t": {"ws": ..., "cs": ...}}

``id``/``parent``/``name``/``step``/``seq``/``attrs`` are the
*canonical* payload — fully deterministic, derived from crawl structure
alone.  ``t`` (wall/CPU seconds) is optional and explicitly
non-canonical: byte-comparison of traces is only meaningful on files
written without timings (``TraceSink(include_timings=False)`` or
``--trace-canonical``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.core.errors import ReproError

PathLike = Union[str, Path]

#: Format tag carried in every trace file's header line.
TRACE_SCHEMA = "repro-trace/1"

#: Required keys of a span line (``t`` is optional).
SPAN_KEYS = ("id", "parent", "name", "step", "seq", "attrs")

#: Span names the tracer emits (validators accept no others).  The
#: last six are server-side request phases (:mod:`repro.obs`): they
#: appear in server span files and in stitched traces, where each
#: ``request`` hangs under the client ``fetch`` that caused it.
SPAN_NAMES = frozenset(
    {
        "step",
        "schedule",
        "select",
        "score",
        "submit",
        "reject",
        "fetch",
        "retry",
        "abort",
        "fail",
        "extract",
        "decompose",
        "frontier-refresh",
        "request",
        "parse",
        "limiter",
        "cache",
        "render",
        "serialize",
    }
)


class TraceError(ReproError):
    """A trace file is malformed or violates the repro-trace/1 schema."""


class TraceTask:
    """One crawl's span segment inside a trace file."""

    __slots__ = ("label", "seed_index", "spans")

    def __init__(
        self,
        label: Optional[str] = None,
        seed_index: Optional[int] = None,
    ) -> None:
        self.label = label
        self.seed_index = seed_index
        self.spans: List[dict] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceTask(label={self.label!r}, seed_index={self.seed_index}, "
            f"spans={len(self.spans)})"
        )


class Trace:
    """A parsed trace: the header plus one or more task segments."""

    __slots__ = ("header", "tasks")

    def __init__(self, header: dict, tasks: List[TraceTask]) -> None:
        self.header = header
        self.tasks = tasks

    @property
    def spans(self) -> List[dict]:
        """All spans across every task, in file order."""
        return [span for task in self.tasks for span in task.spans]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(tasks={len(self.tasks)}, spans={len(self.spans)})"


def _parse_line(raw: str, number: int) -> dict:
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise TraceError(f"line {number}: invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise TraceError(f"line {number}: expected an object")
    return payload


def load_trace(path: PathLike) -> Trace:
    """Parse a span-JSONL trace file (validating as it goes)."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    header = _parse_line(lines[0], 1)
    if header.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            f"{path}: header schema is {header.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}"
        )
    tasks: List[TraceTask] = []
    current: Optional[TraceTask] = None
    for number, raw in enumerate(lines[1:], start=2):
        if not raw.strip():
            continue
        payload = _parse_line(raw, number)
        if "task" in payload:
            current = TraceTask(
                label=payload["task"], seed_index=payload.get("seed_index")
            )
            tasks.append(current)
            continue
        _check_span(payload, number, current.spans if current else None)
        if current is None:
            current = TraceTask()
            tasks.append(current)
        current.spans.append(payload)
    return Trace(header, tasks)


def _check_span(
    span: dict, number: int, previous: Optional[List[dict]]
) -> None:
    for key in SPAN_KEYS:
        if key not in span:
            raise TraceError(f"line {number}: span missing key {key!r}")
    if span["name"] not in SPAN_NAMES:
        raise TraceError(f"line {number}: unknown span name {span['name']!r}")
    if not isinstance(span["attrs"], dict):
        raise TraceError(f"line {number}: attrs must be an object")
    if not isinstance(span["step"], int) or span["step"] < 0:
        raise TraceError(f"line {number}: bad step {span['step']!r}")
    if previous:
        last = previous[-1]
        if span["seq"] <= last["seq"]:
            raise TraceError(
                f"line {number}: seq {span['seq']} not increasing "
                f"(previous {last['seq']})"
            )
    parent = span["parent"]
    if parent is not None:
        # A parent must already exist within the same step's tree.
        step_spans = previous or []
        known = {
            s["id"] for s in step_spans if s["step"] == span["step"]
        }
        if parent not in known:
            raise TraceError(
                f"line {number}: parent {parent!r} of {span['id']!r} "
                f"not seen earlier in step {span['step']}"
            )
    timings = span.get("t")
    if timings is not None and not isinstance(timings, dict):
        raise TraceError(f"line {number}: t must be an object")


def validate_trace_jsonl(path: PathLike) -> int:
    """Validate a trace file; returns the number of spans.

    Mirrors :func:`repro.metrics.exporters.validate_metrics_jsonl` —
    the CI smoke jobs call both.
    """
    return len(load_trace(path).spans)
