"""Centralized warehousing of multi-source crawl harvests."""

from repro.warehouse.merge import (
    Offer,
    Warehouse,
    WarehouseEntry,
    WarehouseError,
)
from repro.warehouse.pipeline import (
    PipelineResult,
    SourceReport,
    crawl_into_warehouse,
)
from repro.warehouse.scheduler import (
    GreedyScheduler,
    RoundRobinScheduler,
    ScheduleResult,
    ScheduledSource,
)

__all__ = [
    "GreedyScheduler",
    "Offer",
    "PipelineResult",
    "RoundRobinScheduler",
    "ScheduleResult",
    "ScheduledSource",
    "SourceReport",
    "Warehouse",
    "WarehouseEntry",
    "WarehouseError",
    "crawl_into_warehouse",
]
