"""Warehousing crawled records from many sources.

The paper's introduction motivates crawling with the "data
warehouse-like approach ... where the data is gathered from a large
number of Web data sources and can be searched and mined in a
centralized manner", with comparison shopping as the flagship
application.  This module is that centralized side: it merges the
record sets harvested from several sources into one catalogue of
:class:`WarehouseEntry` items, resolving entities by a normalized key
attribute and keeping per-source provenance (which store offered the
item, under which local record id, with which attribute values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.records import Record
from repro.core.values import normalize


class WarehouseError(ReproError):
    """Invalid warehouse configuration or ingest."""


@dataclass
class Offer:
    """One source's version of an entity (its provenance unit)."""

    source: str
    record_id: int
    fields: Mapping[str, Tuple[str, ...]]

    def value(self, attribute: str) -> Optional[str]:
        values = self.fields.get(attribute.strip().lower())
        return values[0] if values else None


@dataclass
class WarehouseEntry:
    """An entity with every source's offer attached."""

    key: str
    offers: List[Offer] = field(default_factory=list)

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(sorted({offer.source for offer in self.offers}))

    @property
    def n_sources(self) -> int:
        return len(set(offer.source for offer in self.offers))

    def consolidated(self) -> Dict[str, Tuple[str, ...]]:
        """Union of attribute values across offers (first-seen order)."""
        merged: Dict[str, Dict[str, None]] = {}
        for offer in self.offers:
            for attribute, values in offer.fields.items():
                bucket = merged.setdefault(attribute, {})
                for value in values:
                    bucket.setdefault(value, None)
        return {attribute: tuple(bucket) for attribute, bucket in merged.items()}

    def values_by_source(self, attribute: str) -> Dict[str, str]:
        """``source → value`` for one attribute (e.g. price comparison)."""
        out: Dict[str, str] = {}
        for offer in self.offers:
            value = offer.value(attribute)
            if value is not None and offer.source not in out:
                out[offer.source] = value
        return out


class Warehouse:
    """A centralized catalogue keyed by one entity-resolution attribute.

    Parameters
    ----------
    key_attribute:
        The attribute whose normalized value identifies an entity
        (title for media, ISBN for books...).  Records lacking it are
        counted in :attr:`skipped` rather than silently dropped.
    """

    def __init__(self, key_attribute: str = "title") -> None:
        key = key_attribute.strip().lower()
        if not key:
            raise WarehouseError("key attribute must be non-empty")
        self.key_attribute = key
        self._entries: Dict[str, WarehouseEntry] = {}
        self.skipped = 0

    # ------------------------------------------------------------------
    def ingest(self, source: str, records: Iterable[Record]) -> int:
        """Add one source's harvested records; returns entities touched."""
        if not source.strip():
            raise WarehouseError("source name must be non-empty")
        touched = 0
        for record in records:
            values = record.values_of(self.key_attribute)
            if not values:
                self.skipped += 1
                continue
            key = normalize(values[0])
            entry = self._entries.setdefault(key, WarehouseEntry(key=key))
            entry.offers.append(
                Offer(source=source, record_id=record.record_id, fields=record.fields)
            )
            touched += 1
        return touched

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return normalize(key) in self._entries

    def get(self, key: str) -> WarehouseEntry:
        try:
            return self._entries[normalize(key)]
        except KeyError:
            raise WarehouseError(f"no entity with key {key!r}") from None

    def entries(self) -> List[WarehouseEntry]:
        return [self._entries[key] for key in sorted(self._entries)]

    def multi_source_entries(self, minimum: int = 2) -> List[WarehouseEntry]:
        """Entities offered by at least ``minimum`` distinct sources."""
        return [e for e in self.entries() if e.n_sources >= minimum]

    def coverage_by_source(self) -> Dict[str, int]:
        """``source → number of entities it offers``."""
        out: Dict[str, int] = {}
        for entry in self._entries.values():
            for source in entry.sources:
                out[source] = out.get(source, 0) + 1
        return out

    def compare(self, attribute: str, key: str) -> Dict[str, str]:
        """Per-source values of one attribute for one entity."""
        return self.get(key).values_by_source(attribute)
