"""Multi-source crawl pipeline feeding a warehouse.

Ties the crawler and the warehouse together: given several simulated
sources and a crawl budget per source, run the practical crawler
against each and ingest the harvests into one catalogue — the
"one-stop access" architecture of the paper's introduction, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.crawler.engine import CrawlResult
from repro.domain.table import DomainStatisticsTable
from repro.policies.practical import build_practical_crawler
from repro.server.webdb import SimulatedWebDatabase
from repro.warehouse.merge import Warehouse


@dataclass
class SourceReport:
    """How one source's crawl went."""

    source: str
    crawl: CrawlResult
    ingested: int


@dataclass
class PipelineResult:
    warehouse: Warehouse
    reports: List[SourceReport] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return sum(report.crawl.communication_rounds for report in self.reports)

    @property
    def total_entities(self) -> int:
        return len(self.warehouse)

    def report_lines(self) -> List[str]:
        lines = []
        for report in self.reports:
            lines.append(
                f"{report.source}: {report.crawl.records_harvested:,} records "
                f"({report.crawl.coverage:.0%}) in "
                f"{report.crawl.communication_rounds:,} rounds"
            )
        lines.append(
            f"warehouse: {self.total_entities:,} entities, "
            f"{len(self.warehouse.multi_source_entries()):,} from 2+ sources"
        )
        return lines


def crawl_into_warehouse(
    servers: Sequence[SimulatedWebDatabase],
    seeds_per_source: Sequence[Sequence],
    key_attribute: str = "title",
    domain_table: Optional[DomainStatisticsTable] = None,
    max_rounds_per_source: Optional[int] = None,
    target_coverage: Optional[float] = None,
    seed: int = 0,
) -> PipelineResult:
    """Crawl every source with the practical crawler and merge the results.

    ``seeds_per_source[i]`` are the seed values for ``servers[i]`` (may
    be empty when a domain table supplies the candidate pool).
    """
    if len(servers) != len(seeds_per_source):
        raise ValueError("need one seed list per server")
    warehouse = Warehouse(key_attribute=key_attribute)
    result = PipelineResult(warehouse=warehouse)
    for index, (server, seeds) in enumerate(zip(servers, seeds_per_source)):
        engine = build_practical_crawler(
            server, domain_table=domain_table, seed=seed + index
        )
        crawl = engine.crawl(
            seeds,
            allow_empty_seeds=domain_table is not None,
            max_rounds=max_rounds_per_source,
            target_coverage=target_coverage,
        )
        ingested = warehouse.ingest(server.table.name, engine.local_db)
        result.reports.append(
            SourceReport(source=server.table.name, crawl=crawl, ingested=ingested)
        )
    return result
