"""Budget scheduling across several sources.

Warehousing crawls many sources under one communication budget, and
sources differ wildly in marginal productivity: a fresh store yields
ten new records per page while a nearly drained one yields none.  The
scheduler interleaves the engines' :meth:`~CrawlerEngine.step` calls:

- :class:`GreedyScheduler` always steps the source with the best recent
  harvest rate (new records per page over a sliding window of its last
  queries) — greedy marginal-gain allocation;
- :class:`RoundRobinScheduler` is the fair-share baseline.

Both stop when the shared round budget is exhausted or every source's
frontier is dry, and both return per-source crawl results plus the
allocation that emerged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.errors import CrawlError
from repro.crawler.engine import CrawlerEngine, CrawlResult


@dataclass
class ScheduledSource:
    """One engine under scheduling, with its recent-productivity window."""

    name: str
    engine: CrawlerEngine
    window: Deque[float] = field(default_factory=lambda: deque(maxlen=10))
    steps: int = 0
    exhausted: bool = False

    @property
    def recent_rate(self) -> float:
        """Mean new-records-per-page over the window (optimistic start)."""
        if not self.window:
            return float(self.engine.server.page_size)
        return sum(self.window) / len(self.window)

    @property
    def priority(self) -> float:
        """Recent rate plus an exploration bonus that decays with steps.

        A single unlucky first query must not starve a source forever
        (its later hub queries may be the budget's best spend), so
        undersampled sources carry a bonus of one page-size's worth of
        records shrinking as evidence accumulates — a lightweight UCB.
        """
        bonus = self.engine.server.page_size / (1.0 + self.steps)
        return self.recent_rate + bonus

    def step(self) -> bool:
        """Run one query; returns False when the source is exhausted."""
        outcome = self.engine.step()
        if outcome is None:
            self.exhausted = True
            return False
        self.steps += 1
        self.window.append(outcome.harvest_rate)
        return True


@dataclass
class ScheduleResult:
    """What the shared budget bought."""

    results: Dict[str, CrawlResult]
    rounds_used: int
    total_records: int

    def allocation(self) -> Dict[str, int]:
        """Rounds each source actually consumed."""
        return {
            name: result.communication_rounds
            for name, result in self.results.items()
        }


class _BaseScheduler:
    def __init__(
        self,
        engines: Dict[str, CrawlerEngine],
        seeds: Dict[str, Sequence],
        allow_empty_seeds: bool = False,
    ) -> None:
        if not engines:
            raise CrawlError("need at least one source to schedule")
        if set(engines) != set(seeds):
            raise CrawlError("engines and seeds must cover the same sources")
        self._sources: List[ScheduledSource] = []
        for name, engine in engines.items():
            engine.prepare(seeds[name], allow_empty_seeds=allow_empty_seeds)
            self._sources.append(ScheduledSource(name=name, engine=engine))

    def _pick(self) -> Optional[ScheduledSource]:
        raise NotImplementedError

    def run(self, total_rounds: int) -> ScheduleResult:
        """Spend up to ``total_rounds`` across the sources."""
        if total_rounds < 1:
            raise CrawlError(f"budget must be >= 1, got {total_rounds}")

        def spent() -> int:
            return sum(s.engine.server.rounds for s in self._sources)

        while spent() < total_rounds:
            source = self._pick()
            if source is None:
                break
            source.step()
        results = {
            source.name: source.engine.result(
                "frontier-exhausted" if source.exhausted else "budget"
            )
            for source in self._sources
        }
        return ScheduleResult(
            results=results,
            rounds_used=spent(),
            total_records=sum(r.records_harvested for r in results.values()),
        )


class GreedyScheduler(_BaseScheduler):
    """Step the source with the highest exploration-adjusted rate."""

    def _pick(self) -> Optional[ScheduledSource]:
        live = [s for s in self._sources if not s.exhausted]
        if not live:
            return None
        return max(live, key=lambda s: (s.priority, s.name))


class RoundRobinScheduler(_BaseScheduler):
    """Fair-share baseline: cycle through live sources in order."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def _pick(self) -> Optional[ScheduledSource]:
        live = [s for s in self._sources if not s.exhausted]
        if not live:
            return None
        source = live[self._cursor % len(live)]
        self._cursor += 1
        return source
