"""Budget scheduling across several sources.

Warehousing crawls many sources under one communication budget, and
sources differ wildly in marginal productivity: a fresh store yields
ten new records per page while a nearly drained one yields none.  The
scheduler interleaves the engines' :meth:`~CrawlerEngine.step` calls:

- :class:`GreedyScheduler` always steps the source with the best recent
  harvest rate (new records per page over a sliding window of its last
  queries) — greedy marginal-gain allocation;
- :class:`RoundRobinScheduler` is the fair-share baseline.

Both stop when the shared round budget is exhausted or every source's
frontier is dry, and both return per-source crawl results plus the
allocation that emerged.

Budget semantics
----------------
One engine step may charge several rounds (a query pages through its
results; a flaky source charges retries), so a naive "stop once spent
reaches the budget" loop overruns by the final step's whole charge.
The scheduler therefore gates admission on a per-source *worst-case
charge*:

- with ``max_step_rounds`` set (a hard per-step bound the engine
  configuration guarantees — e.g. a
  :class:`~repro.crawler.abortion.PageCapAbort` page cap with no
  retries), a source is only stepped while the remaining budget covers
  the bound, so ``rounds_used <= total_rounds`` **always** holds;
- without it, the bound is each source's largest observed single-step
  charge (optimistic 1 before its first step).  Only a step that
  charges more than that source ever has can overshoot; the excess is
  reported, never hidden, as :attr:`ScheduleResult.overshoot`
  (``rounds_used`` stays the truthful actual spend).

Fairness
--------
``fairness_every=K`` adds a starvation guarantee on top of any
allocation policy: whenever a schedulable source has not been stepped
within the last ``K`` budget units, the most-starved such source (ties
toward the smallest name) is stepped before the policy's own pick.
The guarantee is satisfiable when ``K`` is at least the number of live
sources times the worst-case step charge.

Schedulers are checkpointable (see :mod:`repro.runtime`): ``state_dict``
captures every engine's state, every server's runtime state, the
sliding windows, and the shared-budget position; ``from_checkpoint``
rebuilds a scheduler mid-allocation from fresh engines.  Durability is
checkpoint-granular — there is no per-step write-ahead journal at the
warehouse level, so a crash replays from the last scheduler snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.errors import CrawlError
from repro.crawler.engine import CrawlerEngine, CrawlResult


@dataclass
class ScheduledSource:
    """One engine under scheduling, with its recent-productivity window."""

    name: str
    engine: CrawlerEngine
    window: Deque[float] = field(default_factory=lambda: deque(maxlen=10))
    steps: int = 0
    exhausted: bool = False
    #: Scale of the exploration bonus.  ``None`` (the warehouse
    #: default) uses the source's own page size — full-page optimism.
    #: Fleets with heterogeneous page sizes set a small shared constant
    #: instead: per-source optimism would keep a *drained* big-page
    #: source outranking *fresh* small-page ones long after its window
    #: has gone to zero.
    exploration: Optional[float] = None
    #: Largest single-step round charge this source has ever incurred —
    #: the admission bound when no hard ``max_step_rounds`` is known.
    worst_charge: int = 0
    #: Shared-budget position (``rounds_spent``) at this source's most
    #: recent step; drives the ``fairness_every`` starvation guarantee.
    last_step_spent: int = 0

    @property
    def recent_rate(self) -> float:
        """Mean new-records-per-page over the window (optimistic start)."""
        if not self.window:
            return float(self.engine.server.page_size)
        return sum(self.window) / len(self.window)

    @property
    def priority(self) -> float:
        """Recent rate plus an exploration bonus that decays with steps.

        A single unlucky first query must not starve a source forever
        (its later hub queries may be the budget's best spend), so
        undersampled sources carry a bonus of one page-size's worth of
        records shrinking as evidence accumulates — a lightweight UCB.
        """
        scale = (
            self.engine.server.page_size
            if self.exploration is None
            else self.exploration
        )
        bonus = scale / (1.0 + self.steps)
        return self.recent_rate + bonus

    def step(self) -> bool:
        """Run one query; returns False when the source is exhausted."""
        outcome = self.engine.step()
        if outcome is None:
            self.exhausted = True
            return False
        self.steps += 1
        self.window.append(outcome.harvest_rate)
        return True


@dataclass
class ScheduleResult:
    """What the shared budget bought."""

    results: Dict[str, CrawlResult]
    rounds_used: int
    total_records: int
    #: The budget ``run`` was last called with (None for legacy callers
    #: that built the result by hand).
    budget: Optional[int] = None
    #: Rounds by which the final step exceeded the budget.  Always 0
    #: when the scheduler runs with ``max_step_rounds``; without it, at
    #: most one step's unprecedented charge (see module docstring).
    overshoot: int = 0

    def allocation(self) -> Dict[str, int]:
        """Rounds each source actually consumed."""
        return {
            name: result.communication_rounds
            for name, result in self.results.items()
        }


class _BaseScheduler:
    """Shared budget loop: admission, fairness, stepping, checkpoints.

    Subclasses implement :meth:`_pick` (the allocation policy) over the
    schedulable candidates the loop hands them.  The politeness hooks
    (:meth:`_admissible`, :meth:`_admit`, :meth:`_after_step`,
    :meth:`_wait_for_admission`) default to no-ops; the fleet
    schedulers (:mod:`repro.fleet.scheduler`) override them with
    rate-limited cooldowns over simulated time.
    """

    def __init__(
        self,
        engines: Dict[str, CrawlerEngine],
        seeds: Dict[str, Sequence],
        allow_empty_seeds: bool = False,
        prepare: bool = True,
        max_step_rounds: Optional[int] = None,
        fairness_every: Optional[int] = None,
        window_size: int = 10,
        exploration: Optional[float] = None,
    ) -> None:
        if not engines:
            raise CrawlError("need at least one source to schedule")
        if set(engines) != set(seeds):
            raise CrawlError("engines and seeds must cover the same sources")
        if max_step_rounds is not None and max_step_rounds < 1:
            raise CrawlError(
                f"max_step_rounds must be >= 1, got {max_step_rounds}"
            )
        if fairness_every is not None and fairness_every < 1:
            raise CrawlError(
                f"fairness_every must be >= 1, got {fairness_every}"
            )
        if window_size < 1:
            raise CrawlError(f"window_size must be >= 1, got {window_size}")
        self.max_step_rounds = max_step_rounds
        self.fairness_every = fairness_every
        self._sources: List[ScheduledSource] = []
        for name, engine in engines.items():
            if prepare:
                engine.prepare(seeds[name], allow_empty_seeds=allow_empty_seeds)
            # A short window adapts the marginal-rate estimate faster —
            # at fleet scale a drained source must stop looking
            # productive within a couple of steps, or greedy allocation
            # keeps feeding it (the warehouse default of 10 smooths
            # per-query noise on long two-source crawls instead).
            self._sources.append(
                ScheduledSource(
                    name=name,
                    engine=engine,
                    window=deque(maxlen=window_size),
                    exploration=exploration,
                )
            )
        # Shared-budget position, maintained incrementally: one delta
        # per step instead of an O(sources) recomputation per loop
        # iteration (which dominated wall-clock on wide warehouses).
        self._spent = sum(s.engine.server.rounds for s in self._sources)
        for source in self._sources:
            source.last_step_spent = self._spent
        self._overshoot = 0

    def _pick(
        self, candidates: List[ScheduledSource]
    ) -> Optional[ScheduledSource]:
        raise NotImplementedError

    @property
    def rounds_spent(self) -> int:
        """Rounds consumed across all sources so far."""
        return self._spent

    # ------------------------------------------------------------------
    # Politeness hooks (no-ops here; see repro.fleet.scheduler)
    # ------------------------------------------------------------------
    def _admissible(self, source: ScheduledSource) -> bool:
        """May this source be stepped right now (cooldowns etc.)?"""
        return True

    def _admit(self, source: ScheduledSource) -> None:
        """Record that the source is about to be stepped."""

    def _after_step(self, source: ScheduledSource, charge: int) -> None:
        """One step just charged ``charge`` rounds against the budget."""

    def _wait_for_admission(self, blocked: List[ScheduledSource]) -> bool:
        """Every candidate is cooling down; return True once one may run.

        The base scheduler has no notion of time, so it never waits.
        """
        return False

    # ------------------------------------------------------------------
    def _charge_bound(self, source: ScheduledSource) -> int:
        """Worst-case rounds one step of ``source`` may charge."""
        if self.max_step_rounds is not None:
            return self.max_step_rounds
        return max(source.worst_charge, 1)

    def _starved(
        self, candidates: List[ScheduledSource]
    ) -> Optional[ScheduledSource]:
        """The most overdue candidate under the starvation guarantee."""
        if not self.fairness_every:
            return None
        overdue = [
            s
            for s in candidates
            if self._spent - s.last_step_spent >= self.fairness_every
        ]
        if not overdue:
            return None
        return min(
            overdue, key=lambda s: (-(self._spent - s.last_step_spent), s.name)
        )

    def run(self, total_rounds: int) -> ScheduleResult:
        """Spend up to ``total_rounds`` across the sources.

        Callable repeatedly with growing budgets: the spent counter
        carries over, so ``run(300)`` then ``run(600)`` ends exactly
        where a single ``run(600)`` would.  See the module docstring
        for the exact budget semantics (hard with ``max_step_rounds``,
        clamp-and-report without).
        """
        if total_rounds < 1:
            raise CrawlError(f"budget must be >= 1, got {total_rounds}")
        while True:
            remaining = total_rounds - self._spent
            if remaining <= 0:
                break
            affordable = [
                s
                for s in self._sources
                if not s.exhausted and self._charge_bound(s) <= remaining
            ]
            candidates = [s for s in affordable if self._admissible(s)]
            if not candidates:
                blocked = [s for s in affordable if not self._admissible(s)]
                if blocked and self._wait_for_admission(blocked):
                    continue
                break
            source = self._starved(candidates) or self._pick(candidates)
            if source is None:
                break
            self._admit(source)
            before = source.engine.server.rounds
            source.step()
            charge = source.engine.server.rounds - before
            self._spent += charge
            if charge > source.worst_charge:
                source.worst_charge = charge
            source.last_step_spent = self._spent
            if (
                self.max_step_rounds is not None
                and charge > self.max_step_rounds
            ):
                raise CrawlError(
                    f"source {source.name} charged {charge} rounds in one "
                    f"step but max_step_rounds={self.max_step_rounds} was "
                    f"declared; fix the engine's page/retry configuration"
                )
            self._after_step(source, charge)
        self._overshoot = max(self._spent - total_rounds, 0)
        results = {
            source.name: source.engine.result(
                "frontier-exhausted" if source.exhausted else "budget"
            )
            for source in self._sources
        }
        return ScheduleResult(
            results=results,
            rounds_used=self._spent,
            total_records=sum(r.records_harvested for r in results.values()),
            budget=total_rounds,
            overshoot=self._overshoot,
        )

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the whole allocation: every source plus budget spent."""
        return {
            "sources": {
                source.name: {
                    "engine": source.engine.state_dict(),
                    "server": source.engine.server.runtime_state(),
                    "window": list(source.window),
                    "steps": source.steps,
                    "exhausted": source.exhausted,
                    "worst_charge": source.worst_charge,
                    "last_step_spent": source.last_step_spent,
                }
                for source in sorted(self._sources, key=lambda s: s.name)
            },
            "spent": self._spent,
            "overshoot": self._overshoot,
            **self._extra_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore onto a scheduler built with fresh engines (``prepare=False``)."""
        by_name = {source.name: source for source in self._sources}
        if set(by_name) != set(state["sources"]):
            raise CrawlError(
                f"scheduler state covers sources {sorted(state['sources'])}, "
                f"this scheduler has {sorted(by_name)}"
            )
        for name, source_state in state["sources"].items():
            source = by_name[name]
            source.engine.load_state(source_state["engine"])
            source.engine.server.load_runtime_state(source_state["server"])
            source.window = deque(
                source_state["window"], maxlen=source.window.maxlen
            )
            source.steps = source_state["steps"]
            source.exhausted = source_state["exhausted"]
            source.worst_charge = source_state.get("worst_charge", 0)
            source.last_step_spent = source_state.get("last_step_spent", 0)
        self._spent = state["spent"]
        self._overshoot = state.get("overshoot", 0)
        self._load_extra(state)

    @classmethod
    def from_checkpoint(
        cls, engines: Dict[str, CrawlerEngine], state: dict, **kwargs
    ) -> "_BaseScheduler":
        """Rebuild a mid-allocation scheduler from fresh (unprepared) engines.

        ``kwargs`` carry scheduler *configuration* (``max_step_rounds``,
        ``fairness_every``, politeness settings on the fleet
        subclasses) — config is rebuilt by the caller, like engine
        config; only dynamic state lives in the snapshot.
        """
        scheduler = cls(
            engines, {name: () for name in engines}, prepare=False, **kwargs
        )
        scheduler.load_state(state)
        return scheduler

    def _extra_state(self) -> dict:
        return {}

    def _load_extra(self, state: dict) -> None:
        pass


class GreedyScheduler(_BaseScheduler):
    """Step the source with the highest exploration-adjusted rate.

    Priority ties break toward the *smallest* source name, so the
    allocation is independent of dict insertion order and stable under
    renames that preserve relative order.
    """

    def _pick(
        self, candidates: List[ScheduledSource]
    ) -> Optional[ScheduledSource]:
        if not candidates:
            return None
        return min(candidates, key=lambda s: (-s.priority, s.name))


class RoundRobinScheduler(_BaseScheduler):
    """Fair-share baseline: cycle through the sources in stable order.

    The cursor walks a fixed ring of source names (construction order),
    skipping names that are currently unschedulable (exhausted, budget
    bound too high, or cooling down).  Indexing the ring — not the
    shrinking live list — keeps the interleaving fair across an
    exhaustion: the sources after a just-exhausted one are neither
    skipped nor double-stepped mid-cycle.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ring = [source.name for source in self._sources]
        self._cursor = 0

    def _pick(
        self, candidates: List[ScheduledSource]
    ) -> Optional[ScheduledSource]:
        if not candidates:
            return None
        eligible = {source.name: source for source in candidates}
        for _ in range(len(self._ring)):
            name = self._ring[self._cursor % len(self._ring)]
            self._cursor += 1
            source = eligible.get(name)
            if source is not None:
                return source
        return None

    def _extra_state(self) -> dict:
        return {"cursor": self._cursor}

    def _load_extra(self, state: dict) -> None:
        self._cursor = state.get("cursor", 0)
