"""Budget scheduling across several sources.

Warehousing crawls many sources under one communication budget, and
sources differ wildly in marginal productivity: a fresh store yields
ten new records per page while a nearly drained one yields none.  The
scheduler interleaves the engines' :meth:`~CrawlerEngine.step` calls:

- :class:`GreedyScheduler` always steps the source with the best recent
  harvest rate (new records per page over a sliding window of its last
  queries) — greedy marginal-gain allocation;
- :class:`RoundRobinScheduler` is the fair-share baseline.

Both stop when the shared round budget is exhausted or every source's
frontier is dry, and both return per-source crawl results plus the
allocation that emerged.

Schedulers are checkpointable (see :mod:`repro.runtime`): ``state_dict``
captures every engine's state, every server's runtime state, the
sliding windows, and the shared-budget position; ``from_checkpoint``
rebuilds a scheduler mid-allocation from fresh engines.  Durability is
checkpoint-granular — there is no per-step write-ahead journal at the
warehouse level, so a crash replays from the last scheduler snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.errors import CrawlError
from repro.crawler.engine import CrawlerEngine, CrawlResult


@dataclass
class ScheduledSource:
    """One engine under scheduling, with its recent-productivity window."""

    name: str
    engine: CrawlerEngine
    window: Deque[float] = field(default_factory=lambda: deque(maxlen=10))
    steps: int = 0
    exhausted: bool = False

    @property
    def recent_rate(self) -> float:
        """Mean new-records-per-page over the window (optimistic start)."""
        if not self.window:
            return float(self.engine.server.page_size)
        return sum(self.window) / len(self.window)

    @property
    def priority(self) -> float:
        """Recent rate plus an exploration bonus that decays with steps.

        A single unlucky first query must not starve a source forever
        (its later hub queries may be the budget's best spend), so
        undersampled sources carry a bonus of one page-size's worth of
        records shrinking as evidence accumulates — a lightweight UCB.
        """
        bonus = self.engine.server.page_size / (1.0 + self.steps)
        return self.recent_rate + bonus

    def step(self) -> bool:
        """Run one query; returns False when the source is exhausted."""
        outcome = self.engine.step()
        if outcome is None:
            self.exhausted = True
            return False
        self.steps += 1
        self.window.append(outcome.harvest_rate)
        return True


@dataclass
class ScheduleResult:
    """What the shared budget bought."""

    results: Dict[str, CrawlResult]
    rounds_used: int
    total_records: int

    def allocation(self) -> Dict[str, int]:
        """Rounds each source actually consumed."""
        return {
            name: result.communication_rounds
            for name, result in self.results.items()
        }


class _BaseScheduler:
    def __init__(
        self,
        engines: Dict[str, CrawlerEngine],
        seeds: Dict[str, Sequence],
        allow_empty_seeds: bool = False,
        prepare: bool = True,
    ) -> None:
        if not engines:
            raise CrawlError("need at least one source to schedule")
        if set(engines) != set(seeds):
            raise CrawlError("engines and seeds must cover the same sources")
        self._sources: List[ScheduledSource] = []
        for name, engine in engines.items():
            if prepare:
                engine.prepare(seeds[name], allow_empty_seeds=allow_empty_seeds)
            self._sources.append(ScheduledSource(name=name, engine=engine))
        # Shared-budget position, maintained incrementally: one delta
        # per step instead of an O(sources) recomputation per loop
        # iteration (which dominated wall-clock on wide warehouses).
        self._spent = sum(s.engine.server.rounds for s in self._sources)

    def _pick(self) -> Optional[ScheduledSource]:
        raise NotImplementedError

    @property
    def rounds_spent(self) -> int:
        """Rounds consumed across all sources so far."""
        return self._spent

    def run(self, total_rounds: int) -> ScheduleResult:
        """Spend up to ``total_rounds`` across the sources.

        Callable repeatedly with growing budgets: the spent counter
        carries over, so ``run(300)`` then ``run(600)`` ends exactly
        where a single ``run(600)`` would.
        """
        if total_rounds < 1:
            raise CrawlError(f"budget must be >= 1, got {total_rounds}")
        while self._spent < total_rounds:
            source = self._pick()
            if source is None:
                break
            before = source.engine.server.rounds
            source.step()
            self._spent += source.engine.server.rounds - before
        results = {
            source.name: source.engine.result(
                "frontier-exhausted" if source.exhausted else "budget"
            )
            for source in self._sources
        }
        return ScheduleResult(
            results=results,
            rounds_used=self._spent,
            total_records=sum(r.records_harvested for r in results.values()),
        )

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the whole allocation: every source plus budget spent."""
        return {
            "sources": {
                source.name: {
                    "engine": source.engine.state_dict(),
                    "server": source.engine.server.runtime_state(),
                    "window": list(source.window),
                    "steps": source.steps,
                    "exhausted": source.exhausted,
                }
                for source in sorted(self._sources, key=lambda s: s.name)
            },
            "spent": self._spent,
            **self._extra_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore onto a scheduler built with fresh engines (``prepare=False``)."""
        by_name = {source.name: source for source in self._sources}
        if set(by_name) != set(state["sources"]):
            raise CrawlError(
                f"scheduler state covers sources {sorted(state['sources'])}, "
                f"this scheduler has {sorted(by_name)}"
            )
        for name, source_state in state["sources"].items():
            source = by_name[name]
            source.engine.load_state(source_state["engine"])
            source.engine.server.load_runtime_state(source_state["server"])
            source.window = deque(
                source_state["window"], maxlen=source.window.maxlen
            )
            source.steps = source_state["steps"]
            source.exhausted = source_state["exhausted"]
        self._spent = state["spent"]
        self._load_extra(state)

    @classmethod
    def from_checkpoint(
        cls, engines: Dict[str, CrawlerEngine], state: dict
    ) -> "_BaseScheduler":
        """Rebuild a mid-allocation scheduler from fresh (unprepared) engines."""
        scheduler = cls(
            engines, {name: () for name in engines}, prepare=False
        )
        scheduler.load_state(state)
        return scheduler

    def _extra_state(self) -> dict:
        return {}

    def _load_extra(self, state: dict) -> None:
        pass


class GreedyScheduler(_BaseScheduler):
    """Step the source with the highest exploration-adjusted rate."""

    def _pick(self) -> Optional[ScheduledSource]:
        live = [s for s in self._sources if not s.exhausted]
        if not live:
            return None
        return max(live, key=lambda s: (s.priority, s.name))


class RoundRobinScheduler(_BaseScheduler):
    """Fair-share baseline: cycle through live sources in order."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def _pick(self) -> Optional[ScheduledSource]:
        live = [s for s in self._sources if not s.exhausted]
        if not live:
            return None
        source = live[self._cursor % len(live)]
        self._cursor += 1
        return source

    def _extra_state(self) -> dict:
        return {"cursor": self._cursor}

    def _load_extra(self, state: dict) -> None:
        self._cursor = state.get("cursor", 0)
