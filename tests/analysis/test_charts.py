"""Tests for ASCII charts."""

import pytest

from repro.analysis import ascii_chart, coverage_chart
from repro.crawler import CrawlHistory


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart({"up": [0, 1, 2, 3]}, width=20, height=6)
        lines = text.splitlines()
        assert any("o" in line for line in lines)
        assert "legend: o up" in lines[-1]

    def test_title_first(self):
        text = ascii_chart({"s": [1, 2]}, title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_two_series_distinct_markers(self):
        text = ascii_chart({"a": [0, 1], "b": [1, 0]}, width=12, height=5)
        assert "o" in text and "x" in text
        assert "o a" in text and "x b" in text

    def test_y_labels_show_extremes(self):
        text = ascii_chart({"s": [5, 25]}, width=10, height=4)
        assert "25" in text and "5" in text

    def test_x_values_on_axis(self):
        text = ascii_chart({"s": [0, 1]}, x_values=[100, 900], width=16, height=4)
        assert "100" in text and "900" in text

    def test_flat_series_ok(self):
        text = ascii_chart({"s": [2, 2, 2]}, width=10, height=3)
        assert "o" in text

    def test_single_point(self):
        text = ascii_chart({"s": [7]}, width=10, height=3)
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})
        with pytest.raises(ValueError):
            ascii_chart({"a": [1, 2]}, x_values=[1])


class TestCoverageChart:
    def test_renders_from_histories(self):
        gl = CrawlHistory()
        gl.append(0, 0)
        gl.append(50, 40)
        gl.append(100, 70)
        bfs = CrawlHistory()
        bfs.append(0, 0)
        bfs.append(100, 50)
        text = coverage_chart(
            {"gl": gl, "bfs": bfs},
            database_size=100,
            checkpoints=[25, 50, 75, 100],
            title="coverage",
        )
        assert "legend" in text
        assert "gl" in text and "bfs" in text
