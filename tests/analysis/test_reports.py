"""Tests for post-crawl analysis reports."""

import pytest

from repro.analysis import (
    attribute_productivity,
    productivity_decay,
    render_attribute_productivity,
    render_value_coverage,
    value_coverage,
)
from repro.crawler import CrawlerEngine
from repro.policies import BreadthFirstSelector, GreedyLinkSelector
from repro.server import SimulatedWebDatabase


@pytest.fixture
def crawled(books):
    server = SimulatedWebDatabase(books, page_size=2)
    engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0, keep_outcomes=True)
    result = engine.crawl([("publisher", "orbit")])
    return engine, result


class TestAttributeProductivity:
    def test_covers_queried_attributes(self, crawled):
        _engine, result = crawled
        rows = attribute_productivity(result)
        attributes = {row.attribute for row in rows}
        assert "publisher" in attributes
        assert "author" in attributes

    def test_totals_match_result(self, crawled):
        _engine, result = crawled
        rows = attribute_productivity(result)
        assert sum(row.queries for row in rows) == result.queries_issued
        assert sum(row.pages for row in rows) == result.communication_rounds
        assert sum(row.new_records for row in rows) == result.records_harvested

    def test_sorted_by_rate(self, crawled):
        _engine, result = crawled
        rates = [row.harvest_rate for row in attribute_productivity(result)]
        assert rates == sorted(rates, reverse=True)

    def test_requires_outcomes(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        result = CrawlerEngine(server, BreadthFirstSelector(), seed=0).crawl(
            [("publisher", "orbit")]
        )
        with pytest.raises(ValueError):
            attribute_productivity(result)

    def test_render(self, crawled):
        _engine, result = crawled
        text = render_attribute_productivity(result)
        assert "publisher" in text
        assert "new/page" in text


class TestProductivityDecay:
    def test_buckets_and_low_marginal_benefit(self, small_ebay):
        server = SimulatedWebDatabase(small_ebay, page_size=10)
        engine = CrawlerEngine(
            server, GreedyLinkSelector(), seed=1, keep_outcomes=True
        )
        result = engine.crawl(
            [
                next(
                    v
                    for v in small_ebay.distinct_values("seller")
                    if small_ebay.frequency(v) >= 3
                )
            ]
        )
        decay = productivity_decay(result, buckets=5)
        assert len(decay) == 5
        # The paper's phenomenon: the first phase far outproduces the last.
        assert decay[0] > decay[-1]

    def test_bucket_validation(self, crawled):
        _engine, result = crawled
        with pytest.raises(ValueError):
            productivity_decay(result, buckets=0)


class TestValueCoverage:
    def test_full_component_crawl_covers_component_values(self, crawled, books):
        engine, _result = crawled
        rows = {row.attribute: row for row in value_coverage(engine.local_db, books)}
        # All 4 publishers minus the island's 'lonepress'.
        assert rows["publisher"].values_seen == 3
        assert rows["publisher"].values_total == 4
        assert rows["publisher"].fraction == pytest.approx(0.75)

    def test_render(self, crawled, books):
        engine, _result = crawled
        text = render_value_coverage(engine.local_db, books)
        assert "publisher" in text and "coverage" in text
