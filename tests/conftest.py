"""Shared fixtures: tiny hand-built tables and small generated sources.

The hand-built ``books`` table is small enough to reason about exactly
in assertions; the generated fixtures are session-scoped so the many
tests that need a realistic source don't regenerate it each time.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

# Two hypothesis profiles: the default keeps the suite fast; "thorough"
# (REPRO_TEST_PROFILE=thorough) multiplies example counts for deeper
# soak runs in CI.
hypothesis_settings.register_profile("thorough", max_examples=300, deadline=None)
hypothesis_settings.register_profile("fast", deadline=None)
hypothesis_settings.load_profile(os.environ.get("REPRO_TEST_PROFILE", "fast"))

from repro.core import Record, RelationalTable, Schema
from repro.datasets import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    generate_ebay,
    imdb_table_from_movies,
)
from repro.domain import build_domain_table
from repro.server import SimulatedWebDatabase


@pytest.fixture
def books_schema() -> Schema:
    return Schema.of(
        "title",
        "publisher",
        author={"multivalued": True},
        price={"queriable": False},
    )


@pytest.fixture
def books(books_schema) -> RelationalTable:
    """Nine books with deliberate hub structure.

    - publisher "orbit" appears in 4 records (the hub);
    - author "knuth" spans two publishers (a bridge vertex);
    - record 8 is an island (unique values everywhere).
    """
    table = RelationalTable(books_schema, name="books")
    rows = [
        {"title": "alpha", "publisher": "orbit", "author": ["knuth"], "price": "10"},
        {"title": "beta", "publisher": "orbit", "author": ["knuth", "liskov"], "price": "12"},
        {"title": "gamma", "publisher": "orbit", "author": ["liskov"], "price": "15"},
        {"title": "delta", "publisher": "orbit", "author": ["hopper"], "price": "8"},
        {"title": "epsilon", "publisher": "mitp", "author": ["knuth"], "price": "30"},
        {"title": "zeta", "publisher": "mitp", "author": ["dijkstra"], "price": "22"},
        {"title": "eta", "publisher": "southbank", "author": ["hamilton"], "price": "18"},
        {"title": "theta", "publisher": "southbank", "author": ["hamilton", "hopper"], "price": "9"},
        {"title": "iota", "publisher": "lonepress", "author": ["solo"], "price": "55"},
    ]
    table.insert_rows(rows)
    return table


@pytest.fixture
def books_server(books) -> SimulatedWebDatabase:
    return SimulatedWebDatabase(books, page_size=2)


@pytest.fixture(scope="session")
def small_ebay() -> RelationalTable:
    return generate_ebay(n_records=1200, seed=13)


@pytest.fixture(scope="session")
def movie_universe() -> MovieUniverse:
    return MovieUniverse(n_movies=1500, seed=21, obscure_fraction=0.2)


@pytest.fixture(scope="session")
def dvd_store(movie_universe) -> RelationalTable:
    return generate_amazon_dvd(movie_universe, seed=8)


@pytest.fixture(scope="session")
def dvd_domain_table(movie_universe):
    sample = imdb_table_from_movies(movie_universe.since(1960), name="imdb-dm1")
    return build_domain_table(sample, attributes=IMDB_DT_ATTRIBUTES)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def make_record(record_id: int, **fields) -> Record:
    """Loose record builder for graph/unit tests (no schema check)."""
    cleaned = {
        key: (value if isinstance(value, tuple) else (value,))
        for key, value in fields.items()
    }
    return Record(record_id, cleaned)
