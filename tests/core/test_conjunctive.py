"""Unit tests for conjunctive (multi-attribute) queries."""

import pytest

from repro.core import (
    AttributeValue,
    ConjunctiveQuery,
    Query,
    QueryError,
    RelationalTable,
    Schema,
)


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestConstruction:
    def test_predicates_sorted_canonical(self):
        a = ConjunctiveQuery.of(AV("model", "corolla"), AV("make", "toyota"))
        b = ConjunctiveQuery.of(AV("make", "toyota"), AV("model", "corolla"))
        assert a == b
        assert hash(a) == hash(b)

    def test_equalities_helper(self):
        query = ConjunctiveQuery.equalities(make="Toyota", model="Corolla")
        assert query.arity == 2
        assert query.attributes == ("make", "model")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery.of(AV("make", "a"), AV("make", "b"))

    def test_duplicate_predicate_collapses(self):
        query = ConjunctiveQuery.of(AV("make", "a"), AV("make", "a"))
        assert query.arity == 1

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery.of()

    def test_not_keyword(self):
        assert not ConjunctiveQuery.equalities(a="x").is_keyword

    def test_differs_from_single_query(self):
        assert ConjunctiveQuery.equalities(a="x") != Query.equality("a", "x")


class TestSql:
    def test_and_chain(self):
        sql = ConjunctiveQuery.equalities(make="toyota", model="corolla").sql()
        assert "make = 'toyota'" in sql
        assert " AND " in sql
        assert "model = 'corolla'" in sql


class TestTableMatching:
    schema = Schema.of("make", "model", "year")

    def table(self):
        table = RelationalTable(self.schema)
        table.insert_rows(
            [
                {"make": "toyota", "model": "corolla", "year": "2001"},
                {"make": "toyota", "model": "corolla", "year": "2002"},
                {"make": "toyota", "model": "camry", "year": "2001"},
                {"make": "honda", "model": "civic", "year": "2001"},
            ]
        )
        return table

    def test_conjunction_intersects(self):
        table = self.table()
        query = ConjunctiveQuery.equalities(make="toyota", model="corolla")
        assert table.match(query) == [0, 1]
        assert table.count(query) == 2

    def test_unsatisfiable_conjunction_empty(self):
        table = self.table()
        query = ConjunctiveQuery.equalities(make="honda", model="corolla")
        assert table.match(query) == []

    def test_unknown_value_empty(self):
        table = self.table()
        query = ConjunctiveQuery.equalities(make="ford", model="corolla")
        assert table.match(query) == []

    def test_single_predicate_matches_equality(self):
        table = self.table()
        conjunctive = ConjunctiveQuery.equalities(make="toyota")
        assert table.match(conjunctive) == table.match_equality("make", "toyota")

    def test_triple_conjunction(self):
        table = self.table()
        query = ConjunctiveQuery.equalities(
            make="toyota", model="corolla", year="2002"
        )
        assert table.match(query) == [1]
