"""Unit tests for the dense interning layer (repro.core.intern)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AttributeValue,
    StringInterner,
    ValueInterner,
    intersect_sorted,
    pack_pair,
    unpack_pair,
)
from repro.core.intern import MAX_ID, PAIR_SHIFT


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestValueInterner:
    def test_ids_are_dense_first_seen_order(self):
        interner = ValueInterner()
        assert interner.intern(AV("a", "x")) == 0
        assert interner.intern(AV("a", "y")) == 1
        assert interner.intern(AV("b", "x")) == 2
        # Re-interning returns the existing id.
        assert interner.intern(AV("a", "x")) == 0
        assert len(interner) == 3

    def test_lookup_does_not_assign(self):
        interner = ValueInterner()
        assert interner.lookup(AV("a", "x")) is None
        assert len(interner) == 0
        vid = interner.intern(AV("a", "x"))
        assert interner.lookup(AV("a", "x")) == vid

    def test_value_is_inverse_of_intern(self):
        interner = ValueInterner()
        pairs = [AV("a", f"v{i}") for i in range(20)]
        ids = [interner.intern(p) for p in pairs]
        assert [interner.value(vid) for vid in ids] == pairs
        assert interner.values() == pairs

    def test_contains(self):
        interner = ValueInterner()
        interner.intern(AV("a", "x"))
        assert AV("a", "x") in interner
        assert AV("a", "y") not in interner

    def test_state_roundtrip_preserves_assignment(self):
        interner = ValueInterner()
        for i in range(10):
            interner.intern(AV("attr", f"v{i}"))
        payload = interner.state_dict()

        restored = ValueInterner()
        restored.load_state(payload)
        assert len(restored) == len(interner)
        for vid in range(len(interner)):
            assert restored.value(vid) == interner.value(vid)
        # Restored interner keeps assigning past the loaded ids.
        assert restored.intern(AV("attr", "new")) == len(interner)

    def test_load_state_replaces_existing(self):
        interner = ValueInterner()
        interner.intern(AV("old", "old"))
        interner.load_state([["a", "x"], ["a", "y"]])
        assert interner.lookup(AV("old", "old")) is None
        assert interner.lookup(AV("a", "x")) == 0
        assert interner.lookup(AV("a", "y")) == 1


class TestStringInterner:
    def test_dense_ids_and_roundtrip(self):
        interner = StringInterner()
        assert interner.intern("alpha") == 0
        assert interner.intern("beta") == 1
        assert interner.intern("alpha") == 0
        assert interner.token(1) == "beta"
        assert "beta" in interner and "gamma" not in interner

        restored = StringInterner()
        restored.load_state(interner.state_dict())
        assert restored.lookup("beta") == 1
        assert len(restored) == 2


class TestPackPair:
    def test_symmetric(self):
        assert pack_pair(3, 9) == pack_pair(9, 3)

    def test_distinct_pairs_distinct_keys(self):
        keys = {
            pack_pair(u, v)
            for u in range(20)
            for v in range(20)
            if u < v
        }
        assert len(keys) == 20 * 19 // 2

    def test_unpack_inverts(self):
        key = pack_pair(7, 2)
        assert unpack_pair(key) == (2, 7)

    def test_max_id_boundary(self):
        key = pack_pair(MAX_ID, 0)
        assert unpack_pair(key) == (0, MAX_ID)
        assert key == MAX_ID  # 0 in the high bits, MAX_ID low

    @given(
        u=st.integers(min_value=0, max_value=MAX_ID),
        v=st.integers(min_value=0, max_value=MAX_ID),
    )
    def test_pack_unpack_property(self, u, v):
        lo, hi = unpack_pair(pack_pair(u, v))
        assert (lo, hi) == (min(u, v), max(u, v))
        assert pack_pair(u, v) == pack_pair(v, u)
        assert pack_pair(u, v) >> PAIR_SHIFT == min(u, v)


class TestIntersectSorted:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5, 7], [2, 3, 4, 7, 9]) == [3, 7]

    def test_disjoint_and_empty(self):
        assert intersect_sorted([1, 2], [3, 4]) == []
        assert intersect_sorted([], [1, 2]) == []
        assert intersect_sorted([1, 2], []) == []

    def test_identical(self):
        assert intersect_sorted([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    @given(
        a=st.lists(st.integers(min_value=0, max_value=50), unique=True),
        b=st.lists(st.integers(min_value=0, max_value=50), unique=True),
    )
    def test_matches_set_intersection(self, a, b):
        a, b = sorted(a), sorted(b)
        assert intersect_sorted(a, b) == sorted(set(a) & set(b))
