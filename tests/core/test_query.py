"""Unit tests for the simplified query model."""

import pytest

from repro.core import AttributeValue, Query, QueryError


class TestConstruction:
    def test_equality_query(self):
        query = Query.equality("Brand", " IBM ")
        assert query.attribute == "brand"
        assert query.value == "ibm"
        assert not query.is_keyword

    def test_keyword_query(self):
        query = Query.keyword("Hanks, Tom")
        assert query.is_keyword
        assert query.attribute is None
        assert query.value == "hanks, tom"

    def test_empty_value_rejected(self):
        with pytest.raises(QueryError):
            Query.keyword("   ")

    def test_empty_attribute_rejected(self):
        with pytest.raises(QueryError):
            Query(value="x", attribute="  ")

    def test_from_attribute_value_roundtrip(self):
        pair = AttributeValue("actor", "hanks, tom")
        query = Query.from_attribute_value(pair)
        assert query.as_attribute_value() == pair

    def test_keyword_has_no_single_vertex(self):
        with pytest.raises(QueryError):
            Query.keyword("x").as_attribute_value()


class TestEqualitySemantics:
    def test_normalized_queries_compare_equal(self):
        assert Query.equality("a", "X ") == Query.equality("A", "x")

    def test_hashable(self):
        assert len({Query.keyword("x"), Query.keyword("x ")}) == 1

    def test_keyword_differs_from_equality(self):
        assert Query.keyword("x") != Query.equality("a", "x")


class TestSql:
    def test_equality_sql(self):
        sql = Query.equality("brand", "IBM").sql(("title", "price"))
        assert sql == "SELECT title, price FROM DB WHERE brand = 'ibm'"

    def test_keyword_sql_mentions_contains(self):
        sql = Query.keyword("ibm").sql()
        assert "CONTAINS" in sql
        assert "'ibm'" in sql

    def test_default_projection_star(self):
        assert Query.equality("a", "b").sql().startswith("SELECT *")
