"""Unit and property tests for records and their AVG cliques."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import AttributeValue, Record, Schema, SchemaError

schema = Schema.of("title", "publisher", author={"multivalued": True})


class TestBuild:
    def test_single_values_wrapped(self):
        record = Record.build(1, schema, title="A Book")
        assert record.values_of("title") == ("a book",)

    def test_multivalued_accepts_sequence(self):
        record = Record.build(1, schema, author=["X", "Y"])
        assert record.values_of("author") == ("x", "y")

    def test_single_valued_rejects_multiple(self):
        with pytest.raises(SchemaError):
            Record.build(1, schema, title=["a", "b"])

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Record.build(1, schema, isbn="123")

    def test_empty_values_dropped(self):
        record = Record.build(1, schema, title="  ", author=["x", ""])
        assert record.values_of("title") == ()
        assert record.values_of("author") == ("x",)

    def test_duplicate_values_dropped_order_preserved(self):
        record = Record.build(1, schema, author=["B", "a", "b ", "A"])
        assert record.values_of("author") == ("b", "a")


class TestAccessors:
    def test_missing_attribute_returns_empty(self):
        record = Record.build(1, schema, title="x")
        assert record.values_of("publisher") == ()

    def test_attribute_values_is_the_clique(self):
        record = Record.build(1, schema, title="t", author=["a", "b"])
        assert set(record.attribute_values()) == {
            AttributeValue("title", "t"),
            AttributeValue("author", "a"),
            AttributeValue("author", "b"),
        }

    def test_len_counts_values(self):
        record = Record.build(1, schema, title="t", author=["a", "b"])
        assert len(record) == 3

    def test_iter_yields_attribute_values(self):
        record = Record.build(1, schema, title="t")
        assert list(record) == [AttributeValue("title", "t")]


class TestMatching:
    def test_matches_normalized(self):
        record = Record.build(1, schema, title="The Deep  Web")
        assert record.matches("title", "the deep web")
        assert record.matches("TITLE", "The Deep Web ")

    def test_matches_any_of_multivalue(self):
        record = Record.build(1, schema, author=["Knuth", "Liskov"])
        assert record.matches("author", "knuth")
        assert record.matches("author", "liskov")
        assert not record.matches("author", "dijkstra")

    def test_matches_keyword_across_attributes(self):
        record = Record.build(1, schema, title="orbit", author=["x"])
        assert record.matches_keyword("Orbit")
        assert record.matches_keyword("x")
        assert not record.matches_keyword("y")


@given(
    st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_every_stored_value_matches(authors):
    record = Record.build(1, schema, author=authors)
    for value in record.values_of("author"):
        assert record.matches("author", value)
        assert record.matches_keyword(value)


@given(
    st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_clique_size_equals_distinct_values(authors):
    record = Record.build(1, schema, author=authors)
    clique = record.attribute_values()
    assert len(clique) == len(set(clique))
    assert len(clique) == len(record.values_of("author"))
