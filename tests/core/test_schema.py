"""Unit tests for schemas and attribute definitions."""

import pytest

from repro.core import Attribute, Schema, SchemaError


class TestAttribute:
    def test_name_normalized(self):
        assert Attribute(" Title ").name == "title"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("   ")

    def test_default_flags(self):
        attribute = Attribute("title")
        assert attribute.queriable and attribute.displayed
        assert not attribute.multivalued


class TestSchema:
    def test_of_plain_names(self):
        schema = Schema.of("title", "author")
        assert schema.names == ("title", "author")
        assert schema.queriable == ("title", "author")

    def test_of_with_flags(self):
        schema = Schema.of(
            "title",
            author={"multivalued": True},
            price={"queriable": False},
        )
        assert schema.attribute("author").multivalued
        assert not schema.attribute("price").queriable
        assert "price" not in schema.queriable
        assert "price" in schema.displayed

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("a"), Attribute("A")))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_lookup_case_insensitive(self):
        schema = Schema.of("Title")
        assert schema.attribute("TITLE").name == "title"

    def test_unknown_attribute_raises(self):
        schema = Schema.of("title")
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.attribute("author")

    def test_contains(self):
        schema = Schema.of("title")
        assert "title" in schema
        assert "TITLE " in schema
        assert "author" not in schema

    def test_iteration_and_len(self):
        schema = Schema.of("a", "b", "c")
        assert len(schema) == 3
        assert [a.name for a in schema] == ["a", "b", "c"]

    def test_displayed_excludes_hidden(self):
        schema = Schema.of("a", b={"displayed": False})
        assert schema.displayed == ("a",)


class TestRestrictQueriable:
    def test_narrows_interface(self):
        schema = Schema.of("a", "b", "c")
        narrowed = schema.restrict_queriable(["b"])
        assert narrowed.queriable == ("b",)
        # Display schema unchanged.
        assert narrowed.displayed == ("a", "b", "c")

    def test_preserves_multivalued_flag(self):
        schema = Schema.of("a", b={"multivalued": True})
        narrowed = schema.restrict_queriable(["b"])
        assert narrowed.attribute("b").multivalued

    def test_unknown_name_rejected(self):
        schema = Schema.of("a")
        with pytest.raises(SchemaError):
            schema.restrict_queriable(["nope"])

    def test_original_untouched(self):
        schema = Schema.of("a", "b")
        schema.restrict_queriable(["a"])
        assert schema.queriable == ("a", "b")
