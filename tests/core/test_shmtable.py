"""Shared-memory table payloads: round-trip fidelity and lifecycle.

``repro.core.shmtable`` flattens a :class:`RelationalTable` into one
shared-memory block and serves it back through a read-only
:class:`FrozenTableView`.  The view stands in for the table inside grid
workers, so every read path the crawler touches — records, postings,
match semantics *including tie order* — must be indistinguishable from
the original, and the block itself must not outlive the grid.
"""

from __future__ import annotations

import pytest

from repro.core import AttributeValue, Query
from repro.core import shmtable
from repro.datasets.ebay import generate_ebay

pytestmark = pytest.mark.skipif(
    not shmtable.supported(), reason="shared-memory payloads unsupported"
)


@pytest.fixture(scope="module")
def table():
    return generate_ebay(n_records=300, seed=4)


@pytest.fixture(scope="module")
def view(table):
    with shmtable.shared_table(table) as handle:
        yield handle.table()


class TestRoundTrip:
    def test_len_and_record_ids(self, table, view):
        assert len(view) == len(table)
        assert view.record_ids() == table.record_ids()

    def test_records_identical(self, table, view):
        for record_id in table.record_ids():
            assert view.get(record_id) == table.get(record_id)
        assert list(view) == list(table)

    def test_membership(self, table, view):
        present = table.record_ids()[0]
        assert present in view
        assert -1 not in view
        with pytest.raises(KeyError):
            view.get(-1)

    def test_distinct_values_and_frequencies(self, table, view):
        assert view.distinct_values() == table.distinct_values()
        assert view.num_distinct_values() == table.num_distinct_values()
        for attribute in table.schema.attributes:
            assert view.distinct_values(attribute.name) == (
                table.distinct_values(attribute.name)
            )
        for pair in table.distinct_values():
            assert view.frequency(pair) == table.frequency(pair)
            assert view.value_id(pair) == table.value_id(pair)

    def test_frequency_of_unknown_value(self, table, view):
        ghost = AttributeValue("seller", "nobody-sells-this")
        assert view.frequency(ghost) == table.frequency(ghost) == 0
        assert view.value_id(ghost) is None

    def test_match_paths_identical(self, table, view):
        for pair in table.distinct_values():
            assert view.match_equality(pair.attribute, pair.value) == (
                table.match_equality(pair.attribute, pair.value)
            )
        sample = table.distinct_values()[0]
        token = sample.value.split()[0]
        assert view.match_keyword(token) == table.match_keyword(token)
        assert view.match_keyword("zz-no-such-token") == []

    def test_conjunctive_tie_order(self, table, view):
        """The smallest-posting-first merge order must survive the trip."""
        record = table.get(table.record_ids()[0])
        predicates = list(record.attribute_values())[:2]
        assert view.match_conjunctive(predicates) == table.match_conjunctive(
            predicates
        )

    def test_query_objects_and_counts(self, table, view):
        pair = table.distinct_values("seller")[0]
        query = Query.equality(pair.attribute, pair.value)
        assert view.match(query) == table.match(query)
        assert view.count(query) == table.count(query)

    def test_project(self, table, view):
        ids = table.record_ids()[:7]
        assert view.project(ids) == table.project(ids)

    def test_schema_round_trip(self, table, view):
        assert view.schema.attributes == table.schema.attributes
        assert view.schema.queriable == table.schema.queriable


class TestLifecycle:
    def test_handle_is_picklable(self, table):
        import pickle

        with shmtable.shared_table(table) as handle:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.shm_name == handle.shm_name
            assert clone.table().record_ids() == table.record_ids()

    def test_attach_is_cached(self, table):
        with shmtable.shared_table(table) as handle:
            assert handle.table() is handle.table()

    def test_unlink_frees_the_block(self, table):
        handle = shmtable.share_table(table)
        name = handle.shm_name
        handle.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_unlink_is_idempotent(self, table):
        handle = shmtable.share_table(table)
        handle.unlink()
        handle.unlink()

    def test_empty_table_is_not_shared(self):
        from repro.core.table import RelationalTable
        from repro.experiments.harness import _table_source

        empty = generate_ebay(n_records=5, seed=2)
        empty_real = RelationalTable(empty.schema)
        source, payloads, cleanup = _table_source(empty_real, share=True)
        assert payloads == ()
        assert source() is empty_real
        cleanup()

    def test_crawl_over_view_matches_table(self, table, view):
        """End to end: a GL crawl cannot tell the view from the table."""
        from repro.crawler import CrawlerEngine
        from repro.policies import GreedyLinkSelector
        from repro.server import SimulatedWebDatabase

        seed_value = next(
            value
            for value in table.distinct_values("seller")
            if table.frequency(value) >= 2
        )
        results = []
        for source in (table, view):
            engine = CrawlerEngine(
                SimulatedWebDatabase(source, page_size=10),
                GreedyLinkSelector(),
                seed=3,
            )
            results.append(engine.crawl([seed_value], max_queries=30))
        assert results[0] == results[1]
