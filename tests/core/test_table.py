"""Unit and property tests for the universal relational table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttributeValue,
    Query,
    Record,
    RelationalTable,
    Schema,
    SchemaError,
)

schema = Schema.of(
    "title", "publisher", author={"multivalued": True}, price={"queriable": False}
)


def build_table(rows):
    table = RelationalTable(schema, name="t")
    table.insert_rows(rows)
    return table


class TestInsert:
    def test_duplicate_id_rejected(self):
        table = RelationalTable(schema)
        table.insert(Record.build(1, schema, title="a"))
        with pytest.raises(SchemaError):
            table.insert(Record.build(1, schema, title="b"))

    def test_unknown_attribute_rejected(self):
        table = RelationalTable(schema)
        bad = Record(1, {"isbn": ("123",)})
        with pytest.raises(SchemaError):
            table.insert(bad)

    def test_insert_rows_skips_taken_ids(self):
        table = RelationalTable(schema)
        table.insert(Record.build(1, schema, title="x"))
        table.insert_rows([{"title": "a"}, {"title": "b"}])
        assert len(table) == 3
        assert sorted(table.record_ids()) == [0, 1, 2]


class TestMatching:
    def test_equality_match(self, books):
        ids = books.match_equality("publisher", "orbit")
        assert len(ids) == 4
        assert ids == sorted(ids)

    def test_equality_match_on_multivalue(self, books):
        assert len(books.match_equality("author", "knuth")) == 3

    def test_keyword_match_spans_attributes(self):
        table = build_table(
            [{"title": "orbit"}, {"publisher": "orbit"}, {"title": "other"}]
        )
        assert len(table.match_keyword("orbit")) == 2

    def test_no_match_returns_empty(self, books):
        assert books.match_equality("publisher", "nope") == []
        assert books.match_keyword("nope") == []

    def test_match_dispatches_query(self, books):
        equality = Query.equality("publisher", "orbit")
        keyword = Query.keyword("orbit")
        assert books.match(equality) == books.match_equality("publisher", "orbit")
        assert books.match(keyword) == books.match_keyword("orbit")

    def test_count_equals_match_length(self, books):
        for query in (Query.equality("author", "knuth"), Query.keyword("mitp")):
            assert books.count(query) == len(books.match(query))

    def test_normalization_applies(self, books):
        assert books.match_equality("PUBLISHER", " Orbit ") == books.match_equality(
            "publisher", "orbit"
        )


class TestDistinctValues:
    def test_vertex_count(self, books):
        # 9 titles + 4 publishers + 6 authors + distinct prices.
        prices = {r.values_of("price")[0] for r in books}
        assert books.num_distinct_values() == 9 + 4 + 6 + len(prices)

    def test_per_attribute_listing(self, books):
        publishers = books.distinct_values("publisher")
        assert [p.value for p in publishers] == sorted(p.value for p in publishers)
        assert all(p.attribute == "publisher" for p in publishers)
        assert len(publishers) == 4

    def test_frequency(self, books):
        assert books.frequency(AttributeValue("publisher", "orbit")) == 4
        assert books.frequency(AttributeValue("publisher", "nope")) == 0


class TestProjection:
    def test_hidden_attributes_stripped(self):
        hidden_schema = Schema.of("title", secret={"displayed": False})
        table = RelationalTable(hidden_schema)
        table.insert_rows([{"title": "a", "secret": "s"}])
        [projected] = table.project([0])
        assert projected.values_of("title") == ("a",)
        assert projected.values_of("secret") == ()

    def test_projection_keeps_ids(self, books):
        projected = books.project([2, 0])
        assert [r.record_id for r in projected] == [2, 0]

    def test_all_displayed_returns_same_objects(self, books):
        # books schema displays everything: projection is pass-through.
        [record] = books.project([1])
        assert record is books.get(1)


rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "title": st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=6,
            ),
            "author": st.lists(
                st.sampled_from(["ada", "bob", "cai", "dee"]),
                min_size=1,
                max_size=3,
            ),
        }
    ),
    min_size=1,
    max_size=20,
)


class TestSortedPostings:
    """Posting lists stay sorted at insert time — match never re-sorts."""

    def test_out_of_order_inserts_sorted_results(self):
        table = RelationalTable(schema)
        for record_id in (5, 1, 9, 3, 7):
            table.insert(
                Record.build(
                    record_id, schema, title="same", publisher=f"p{record_id}"
                )
            )
        assert table.match_equality("title", "same") == [1, 3, 5, 7, 9]
        assert table.match_keyword("same") == [1, 3, 5, 7, 9]

    def test_ascending_inserts_sorted_results(self):
        table = RelationalTable(schema)
        for record_id in range(4):
            table.insert(Record.build(record_id, schema, title="same"))
        assert table.match_equality("title", "same") == [0, 1, 2, 3]

    def test_match_returns_detached_copy(self):
        table = RelationalTable(schema)
        table.insert(Record.build(1, schema, title="same"))
        ids = table.match_equality("title", "same")
        ids.append(999)
        assert table.match_equality("title", "same") == [1]
        keywords = table.match_keyword("same")
        keywords.clear()
        assert table.match_keyword("same") == [1]


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_property_inverted_index_consistent(rows):
    """Every record that claims to hold a value is in that value's postings."""
    table = build_table(rows)
    for value in table.distinct_values():
        ids = table.match_equality(value.attribute, value.value)
        assert len(ids) == table.frequency(value)
        for record_id in ids:
            assert table.get(record_id).matches(value.attribute, value.value)
    # And the converse: records' values all appear in the index.
    for record in table:
        for pair in record.attribute_values():
            assert record.record_id in table.match_equality(
                pair.attribute, pair.value
            )


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_property_keyword_superset_of_equality(rows):
    """Keyword matching must return a superset of any per-attribute match."""
    table = build_table(rows)
    for value in table.distinct_values():
        equality = set(table.match_equality(value.attribute, value.value))
        keyword = set(table.match_keyword(value.value))
        assert equality <= keyword
