"""Unit and property tests for attribute-value normalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import AttributeValue, distinct_values, normalize


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Hanks, Tom") == "hanks, tom"

    def test_strips_outer_whitespace(self):
        assert normalize("  ibm  ") == "ibm"

    def test_collapses_inner_whitespace(self):
        assert normalize("new   york \t city") == "new york city"

    def test_empty_stays_empty(self):
        assert normalize("") == ""
        assert normalize("   ") == ""

    def test_idempotent_examples(self):
        for raw in ("a b", "A  B", " mixed Case  words "):
            once = normalize(raw)
            assert normalize(once) == once

    @given(st.text(max_size=50))
    def test_idempotent_property(self, raw):
        once = normalize(raw)
        assert normalize(once) == once

    @given(st.text(max_size=50))
    def test_no_leading_trailing_space(self, raw):
        result = normalize(raw)
        assert result == result.strip()


class TestAttributeValue:
    def test_normalizes_both_fields(self):
        pair = AttributeValue(" Actor ", " Hanks,  TOM ")
        assert pair.attribute == "actor"
        assert pair.value == "hanks, tom"

    def test_equality_after_normalization(self):
        assert AttributeValue("actor", "Hanks, Tom") == AttributeValue(
            "ACTOR", "hanks,  tom"
        )

    def test_hashable_and_deduplicates(self):
        values = {
            AttributeValue("brand", "IBM"),
            AttributeValue("brand", "ibm "),
            AttributeValue("brand", "dell"),
        }
        assert len(values) == 2

    def test_orderable(self):
        a = AttributeValue("author", "adams")
        b = AttributeValue("author", "brown")
        c = AttributeValue("brand", "adams")
        assert sorted([c, b, a]) == [a, b, c]

    def test_different_attribute_different_vertex(self):
        # The same string under two attributes is two AVG vertices.
        assert AttributeValue("actor", "x") != AttributeValue("director", "x")

    def test_str_contains_both_parts(self):
        text = str(AttributeValue("brand", "ibm"))
        assert "brand" in text and "ibm" in text


def test_distinct_values_helper():
    pairs = [
        AttributeValue("a", "x"),
        AttributeValue("a", "X "),
        AttributeValue("b", "x"),
    ]
    assert len(distinct_values(pairs)) == 2
