"""Unit tests for heuristic query abortion policies."""

import pytest

from repro.core import Query, Record, Schema
from repro.crawler import (
    CombinedAbort,
    DuplicateFractionAbort,
    NeverAbort,
    PageProgress,
    TotalCountAbort,
)
from repro.server import paginate

schema = Schema.of("title")


def page_with(total, fetched_so_far=0, page_size=10, report_total=True):
    matches = [Record.build(i, schema, title=f"t{i}") for i in range(total)]
    page_number = fetched_so_far // page_size + 1
    return paginate(
        Query.equality("title", "x"),
        matches,
        page_number,
        page_size,
        report_total=report_total,
    )


class TestPageProgress:
    def test_tracks_tallies(self):
        progress = PageProgress()
        progress.update(10, 4)
        progress.update(10, 0)
        assert progress.pages_fetched == 2
        assert progress.records_seen == 20
        assert progress.new_records == 4
        assert progress.duplicate_fraction == pytest.approx(0.8)

    def test_zero_records_no_division(self):
        assert PageProgress().duplicate_fraction == 0.0


class TestNeverAbort:
    def test_always_false(self):
        policy = NeverAbort()
        progress = PageProgress()
        progress.update(10, 0)
        assert not policy.should_abort(page_with(50), progress, known_matches=50)


class TestTotalCountAbort:
    def test_aborts_when_remaining_all_known(self):
        # 50 matches, all 50 already local; after page 1 (10 dups seen),
        # remaining 40 records contain >= 40 guaranteed duplicates.
        policy = TotalCountAbort(min_harvest_rate=1.0)
        progress = PageProgress()
        progress.update(10, 0)
        assert policy.should_abort(page_with(50), progress, known_matches=50)

    def test_continues_when_fresh_records_remain(self):
        policy = TotalCountAbort(min_harvest_rate=1.0)
        progress = PageProgress()
        progress.update(10, 10)
        assert not policy.should_abort(page_with(50), progress, known_matches=0)

    def test_no_total_defers(self):
        policy = TotalCountAbort()
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(50, report_total=False)
        assert not policy.should_abort(page, progress, known_matches=50)

    def test_last_page_never_aborts(self):
        policy = TotalCountAbort()
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(10)
        assert not policy.should_abort(page, progress, known_matches=10)

    def test_threshold_scales(self):
        # 30 matches, 15 known; after page 1 (10 new): remaining 20 with
        # 15 guaranteed dups -> 5 new over 2 pages = 2.5/page.
        progress = PageProgress()
        progress.update(10, 10)
        page = page_with(30)
        assert not TotalCountAbort(min_harvest_rate=2.0).should_abort(
            page, progress, known_matches=15
        )
        assert TotalCountAbort(min_harvest_rate=3.0).should_abort(
            page, progress, known_matches=15
        )


class TestDuplicateFractionAbort:
    def test_waits_for_probe_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 0)  # 100% duplicates but only 1 page
        assert not policy.should_abort(page_with(50), progress, known_matches=0)

    def test_aborts_on_duplicate_heavy_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 1)
        progress.update(10, 2)
        assert policy.should_abort(page_with(50), progress, known_matches=0)

    def test_continues_on_fresh_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 9)
        progress.update(10, 8)
        assert not policy.should_abort(page_with(50), progress, known_matches=0)


class TestCombined:
    def test_uses_total_when_reported(self):
        policy = CombinedAbort()
        progress = PageProgress()
        progress.update(10, 0)
        assert policy.should_abort(page_with(50), progress, known_matches=50)

    def test_falls_back_to_duplicates(self):
        policy = CombinedAbort(
            duplicate_fraction=DuplicateFractionAbort(0.5, probe_pages=1)
        )
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(50, report_total=False)
        assert policy.should_abort(page, progress, known_matches=0)
