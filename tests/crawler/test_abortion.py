"""Unit tests for heuristic query abortion policies."""

import pytest

from repro.core import Query, Record, Schema
from repro.crawler import (
    CombinedAbort,
    DuplicateFractionAbort,
    NeverAbort,
    PageProgress,
    TotalCountAbort,
)
from repro.crawler.extractor import ResultExtractor
from repro.crawler.localdb import LocalDatabase
from repro.crawler.prober import DatabaseProber
from repro.metrics import TelemetrySink
from repro.runtime.events import EventBus
from repro.server import SimulatedWebDatabase, paginate
from repro.server.pagination import ResultPage

schema = Schema.of("title")


def page_with(total, fetched_so_far=0, page_size=10, report_total=True):
    matches = [Record.build(i, schema, title=f"t{i}") for i in range(total)]
    page_number = fetched_so_far // page_size + 1
    return paginate(
        Query.equality("title", "x"),
        matches,
        page_number,
        page_size,
        report_total=report_total,
    )


class TestPageProgress:
    def test_tracks_tallies(self):
        progress = PageProgress()
        progress.update(10, 4)
        progress.update(10, 0)
        assert progress.pages_fetched == 2
        assert progress.records_seen == 20
        assert progress.new_records == 4
        assert progress.duplicate_fraction == pytest.approx(0.8)

    def test_zero_records_no_division(self):
        assert PageProgress().duplicate_fraction == 0.0


class TestNeverAbort:
    def test_always_false(self):
        policy = NeverAbort()
        progress = PageProgress()
        progress.update(10, 0)
        assert not policy.should_abort(page_with(50), progress, known_matches=50)


class TestTotalCountAbort:
    def test_aborts_when_remaining_all_known(self):
        # 50 matches, all 50 already local; after page 1 (10 dups seen),
        # remaining 40 records contain >= 40 guaranteed duplicates.
        policy = TotalCountAbort(min_harvest_rate=1.0)
        progress = PageProgress()
        progress.update(10, 0)
        assert policy.should_abort(page_with(50), progress, known_matches=50)

    def test_continues_when_fresh_records_remain(self):
        policy = TotalCountAbort(min_harvest_rate=1.0)
        progress = PageProgress()
        progress.update(10, 10)
        assert not policy.should_abort(page_with(50), progress, known_matches=0)

    def test_no_total_defers(self):
        policy = TotalCountAbort()
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(50, report_total=False)
        assert not policy.should_abort(page, progress, known_matches=50)

    def test_last_page_never_aborts(self):
        policy = TotalCountAbort()
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(10)
        assert not policy.should_abort(page, progress, known_matches=10)

    def test_threshold_scales(self):
        # 30 matches, 15 known; after page 1 (10 new): remaining 20 with
        # 15 guaranteed dups -> 5 new over 2 pages = 2.5/page.
        progress = PageProgress()
        progress.update(10, 10)
        page = page_with(30)
        assert not TotalCountAbort(min_harvest_rate=2.0).should_abort(
            page, progress, known_matches=15
        )
        assert TotalCountAbort(min_harvest_rate=3.0).should_abort(
            page, progress, known_matches=15
        )


class TestShortPageRegression:
    """``page_size`` (the server's k) governs remaining-page math.

    A short page must not stand in for k: dividing the remaining
    records by the short page's length inflates the remaining-page
    count and makes the expected per-page harvest look worse than it
    is, triggering spurious aborts.
    """

    @staticmethod
    def short_page(page_size):
        # A ragged page: 4 records arrived although the server pages
        # by 10 — remaining records still span ceil(46/10)=5 pages.
        records = tuple(
            Record.build(i, schema, title=f"t{i}") for i in range(4)
        )
        return ResultPage(
            query=Query.equality("title", "x"),
            page_number=1,
            records=records,
            total_matches=50,
            accessible_matches=50,
            num_pages=5,
            page_size=page_size,
        )

    def test_disclosed_page_size_prevents_spurious_abort(self):
        progress = PageProgress()
        progress.update(4, 0)
        # 46 remaining, 16 guaranteed dups -> 30 possible new over
        # ceil(46/10)=5 pages = 6/page: comfortably above threshold 4.
        policy = TotalCountAbort(min_harvest_rate=4.0)
        assert not policy.should_abort(
            self.short_page(10), progress, known_matches=20
        )

    def test_undisclosed_page_size_falls_back_to_page_length(self):
        progress = PageProgress()
        progress.update(4, 0)
        # page_size=0 (source withholds k): ceil(46/4)=12 pages, so
        # 30/12=2.5/page drops below the same threshold.
        policy = TotalCountAbort(min_harvest_rate=4.0)
        assert policy.should_abort(
            self.short_page(0), progress, known_matches=20
        )

    def test_paginate_carries_page_size(self):
        page = page_with(25, fetched_so_far=20, page_size=10)
        assert len(page.records) == 5  # genuinely the short final page
        assert page.page_size == 10


class TestDuplicateFractionAbort:
    def test_waits_for_probe_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 0)  # 100% duplicates but only 1 page
        assert not policy.should_abort(page_with(50), progress, known_matches=0)

    def test_aborts_on_duplicate_heavy_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 1)
        progress.update(10, 2)
        assert policy.should_abort(page_with(50), progress, known_matches=0)

    def test_continues_on_fresh_pages(self):
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.5, probe_pages=2)
        progress = PageProgress()
        progress.update(10, 9)
        progress.update(10, 8)
        assert not policy.should_abort(page_with(50), progress, known_matches=0)

    def test_dry_tail_aborts_despite_fresh_head(self):
        # Regression: scored cumulatively (18 new / 40 seen = 0.55
        # duplicate fraction) this query would never abort, although
        # its last two pages yielded nothing.
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.9, probe_pages=2)
        progress = PageProgress()
        for new in (9, 9, 0, 0):
            progress.update(10, new)
        assert progress.duplicate_fraction < 0.9
        assert policy.should_abort(page_with(100), progress, known_matches=0)

    def test_fresh_tail_survives_duplicate_head(self):
        # The mirror regime: a duplicate-heavy early probe must not
        # doom a query whose trailing pages turned fresh.
        policy = DuplicateFractionAbort(max_duplicate_fraction=0.4, probe_pages=2)
        progress = PageProgress()
        for new in (0, 0, 10, 10):
            progress.update(10, new)
        assert progress.duplicate_fraction > 0.4
        assert not policy.should_abort(page_with(100), progress, known_matches=0)

    def test_window_duplicate_fraction_tallies(self):
        progress = PageProgress()
        progress.update(10, 10)
        progress.update(10, 0)
        assert progress.window_duplicate_fraction(1) == pytest.approx(1.0)
        assert progress.window_duplicate_fraction(2) == pytest.approx(0.5)
        # A zero-page window falls back to the cumulative fraction.
        assert progress.window_duplicate_fraction(0) == pytest.approx(0.5)
        assert PageProgress().window_duplicate_fraction(2) == 0.0


class TestCombined:
    def test_default_instances_are_independent(self):
        # field(default_factory=...) — mutating one CombinedAbort's
        # sub-policy must not leak into freshly built ones.
        first = CombinedAbort()
        second = CombinedAbort()
        assert first.total_count is not second.total_count
        assert first.duplicate_fraction is not second.duplicate_fraction
        first.total_count.min_harvest_rate = 99.0
        assert CombinedAbort().total_count.min_harvest_rate == 1.0

    def test_uses_total_when_reported(self):
        policy = CombinedAbort()
        progress = PageProgress()
        progress.update(10, 0)
        assert policy.should_abort(page_with(50), progress, known_matches=50)

    def test_falls_back_to_duplicates(self):
        policy = CombinedAbort(
            duplicate_fraction=DuplicateFractionAbort(0.5, probe_pages=1)
        )
        progress = PageProgress()
        progress.update(10, 0)
        page = page_with(50, report_total=False)
        assert policy.should_abort(page, progress, known_matches=0)


class TestAbortionEndToEnd:
    """Prober + SimulatedWebDatabase + telemetry, both total regimes.

    30 records share one queriable value, paged 5 at a time (6 pages).
    With every record already local, an effective abortion policy stops
    paying early, and the rounds it declined to pay must land in the
    metrics registry as ``crawl_rounds_saved_total``.
    """

    @staticmethod
    def build(abortion, report_total):
        from repro.core import RelationalTable

        hub_schema = Schema.of("title", "tag")
        table = RelationalTable(hub_schema, name="hub")
        table.insert_rows(
            {"title": f"t{i}", "tag": "common"} for i in range(30)
        )
        server = SimulatedWebDatabase(
            table, page_size=5, report_total=report_total
        )
        local_db = LocalDatabase()
        for record_id in table.record_ids():
            local_db.add(table.get(record_id))
        bus = EventBus()
        sink = bus.attach(TelemetrySink())
        prober = DatabaseProber(
            server,
            ResultExtractor(server.interface),
            local_db,
            abortion=abortion,
            bus=bus,
            policy="test",
        )
        return prober, sink

    def test_total_reported_aborts_after_first_page(self):
        prober, sink = self.build(
            TotalCountAbort(min_harvest_rate=1.0), report_total=True
        )
        outcome = prober.execute(Query.equality("tag", "common"))
        assert outcome.aborted
        assert outcome.pages_fetched == 1
        assert sink.queries_aborted.value(policy="test") == 1
        assert sink.rounds_saved.value(policy="test") == 5  # pages 2..6
        assert sink.pages_fetched.value(policy="test") == 1

    def test_total_suppressed_falls_back_to_duplicate_window(self):
        prober, sink = self.build(
            CombinedAbort(
                duplicate_fraction=DuplicateFractionAbort(
                    max_duplicate_fraction=0.9, probe_pages=2
                )
            ),
            report_total=False,
        )
        outcome = prober.execute(Query.equality("tag", "common"))
        assert outcome.total_matches is None
        assert outcome.aborted
        assert outcome.pages_fetched == 2  # probe window, then abort
        assert sink.rounds_saved.value(policy="test") == 4  # pages 3..6

    def test_never_abort_pays_every_page(self):
        prober, sink = self.build(NeverAbort(), report_total=True)
        outcome = prober.execute(Query.equality("tag", "common"))
        assert not outcome.aborted
        assert outcome.pages_fetched == 6
        assert sink.rounds_saved.value(policy="test") == 0
        assert sink.records_duplicate.value(policy="test") == 30
