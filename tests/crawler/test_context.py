"""Unit tests for the crawler context (policy-facing state)."""

import random

import pytest

from repro.core import AttributeValue, Query
from repro.crawler import CrawlerContext, LocalDatabase
from repro.server import QueryInterface


def make_context(interface):
    return CrawlerContext(
        local_db=LocalDatabase(),
        interface=interface,
        page_size=10,
        rng=random.Random(0),
    )


class TestValueToQuery:
    def test_queriable_attribute_structured(self):
        context = make_context(QueryInterface(frozenset({"title"})))
        query = context.value_to_query(AttributeValue("title", "x"))
        assert query == Query.equality("title", "x")

    def test_keyword_fallback(self):
        context = make_context(
            QueryInterface(frozenset({"title"}), supports_keyword=True)
        )
        query = context.value_to_query(AttributeValue("price", "9.99"))
        assert query is not None and query.is_keyword

    def test_inexpressible_returns_none(self):
        context = make_context(QueryInterface(frozenset({"title"})))
        assert context.value_to_query(AttributeValue("price", "9.99")) is None

    def test_star_pseudo_attribute_needs_keyword_box(self):
        structured = make_context(QueryInterface(frozenset({"title"})))
        assert structured.value_to_query(AttributeValue("*", "x")) is None
        keyword = make_context(QueryInterface.keyword_only())
        query = keyword.value_to_query(AttributeValue("*", "x"))
        assert query is not None and query.is_keyword


class TestCoverageOracle:
    def test_absent_oracle_gives_none(self):
        context = make_context(QueryInterface(frozenset({"a"})))
        assert context.estimated_coverage() is None

    def test_oracle_passthrough(self):
        context = CrawlerContext(
            local_db=LocalDatabase(),
            interface=QueryInterface(frozenset({"a"})),
            page_size=10,
            rng=random.Random(0),
            coverage_oracle=lambda: 0.42,
        )
        assert context.estimated_coverage() == pytest.approx(0.42)


class TestDefaults:
    def test_fresh_context_is_empty(self):
        context = make_context(QueryInterface(frozenset({"a"})))
        assert context.lqueried == []
        assert context.queried_values == set()
