"""Unit and integration tests for the crawler engine loop."""

import pytest

from repro.core import AttributeValue, CrawlError, Query
from repro.crawler import CrawlerEngine, normalize_seed, run_crawl
from repro.policies import BreadthFirstSelector, GreedyLinkSelector
from repro.server import QueryInterface, SimulatedWebDatabase


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestNormalizeSeed:
    def test_attribute_value_passthrough(self):
        pair = AV("a", "x")
        assert normalize_seed(pair) is pair

    def test_tuple(self):
        assert normalize_seed(("Publisher", "Orbit")) == AV("publisher", "orbit")

    def test_bare_string_becomes_star(self):
        seed = normalize_seed("orbit")
        assert seed.attribute == "*"
        assert seed.value == "orbit"


class TestCrawlLoop:
    def test_full_crawl_reaches_connected_component(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "orbit")])
        # Records 0-7 are mutually reachable; record 8 is an island.
        assert result.records_harvested == 8
        assert result.coverage == pytest.approx(8 / 9)
        assert result.stopped_by == "frontier-exhausted"

    def test_island_seed_stays_on_island(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "lonepress")])
        assert result.records_harvested == 1

    def test_no_query_issued_twice(self, books):
        server = SimulatedWebDatabase(books, page_size=2, keep_request_log=True)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        engine.crawl([("publisher", "orbit")])
        issued = [
            (entry.query, entry.page_number) for entry in server.log.requests
        ]
        assert len(issued) == len(set(issued))

    def test_history_tracks_progress(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "orbit")])
        assert result.history.final_records == result.records_harvested
        assert result.history.final_rounds == result.communication_rounds

    def test_max_rounds_stops(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "orbit")], max_rounds=3)
        assert result.stopped_by == "max-rounds"
        # One query may overshoot the budget by its own page count.
        assert result.communication_rounds <= 5

    def test_max_queries_stops(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "orbit")], max_queries=2)
        assert result.stopped_by == "max-queries"
        assert result.queries_issued == 2

    def test_target_coverage_stops(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl([("publisher", "orbit")], target_coverage=0.5)
        assert result.stopped_by == "target-coverage"
        assert result.coverage >= 0.5

    def test_engine_single_use(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        engine.crawl([("publisher", "orbit")])
        with pytest.raises(CrawlError):
            engine.crawl([("publisher", "mitp")])

    def test_empty_seeds_rejected(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        with pytest.raises(CrawlError):
            engine.crawl([])

    def test_keep_outcomes(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(
            server, BreadthFirstSelector(), seed=0, keep_outcomes=True
        )
        result = engine.crawl([("publisher", "orbit")])
        assert len(result.outcomes) == result.queries_issued
        assert sum(len(o.new_records) for o in result.outcomes) == 8

    def test_run_crawl_convenience(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        result = run_crawl(
            server, BreadthFirstSelector(), [("publisher", "orbit")], seed=0
        )
        assert result.records_harvested == 8


class TestKeywordInterface:
    def test_values_issue_as_keyword_queries(self, books):
        server = SimulatedWebDatabase(
            books,
            page_size=3,
            interface=QueryInterface.keyword_only("books"),
            keep_request_log=True,
        )
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        result = engine.crawl(["orbit"])
        assert result.records_harvested >= 4
        assert all(entry.query.is_keyword for entry in server.log.requests)

    def test_same_string_across_attributes_queried_once(self, books):
        # Under a keyword interface, AttributeValues sharing a string
        # collapse onto one wire query.
        server = SimulatedWebDatabase(
            books,
            page_size=3,
            interface=QueryInterface.keyword_only("books"),
            keep_request_log=True,
        )
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        engine.crawl(["orbit"])
        values = [entry.query.value for entry in server.log.requests]
        assert len(set(values)) == len(set(values))  # sanity
        # distinct wire queries == distinct strings issued
        assert server.log.distinct_queries == len(set(values))


class TestXmlEngine:
    def test_xml_crawl_matches_object_crawl(self, books):
        def run(use_xml):
            server = SimulatedWebDatabase(books, page_size=2)
            engine = CrawlerEngine(
                server, BreadthFirstSelector(), seed=0, use_xml=use_xml
            )
            return engine.crawl([("publisher", "orbit")])

        plain, xml = run(False), run(True)
        assert plain.records_harvested == xml.records_harvested
        assert plain.communication_rounds == xml.communication_rounds
        assert plain.queries_issued == xml.queries_issued
