"""Tests for the incremental prepare/step/result engine API."""

import pytest

from repro.core import CrawlError
from repro.crawler import CrawlerEngine
from repro.policies import BreadthFirstSelector
from repro.server import SimulatedWebDatabase


def engine_for(books):
    server = SimulatedWebDatabase(books, page_size=2)
    return CrawlerEngine(server, BreadthFirstSelector(), seed=0)


class TestStepApi:
    def test_step_before_prepare_rejected(self, books):
        engine = engine_for(books)
        with pytest.raises(CrawlError):
            engine.step()

    def test_single_step_executes_one_query(self, books):
        engine = engine_for(books)
        engine.prepare([("publisher", "orbit")])
        outcome = engine.step()
        assert outcome is not None
        assert str(outcome.query) == "publisher='orbit'"
        assert len(engine.local_db) == 4

    def test_stepping_to_exhaustion_matches_crawl(self, books):
        stepped = engine_for(books)
        stepped.prepare([("publisher", "orbit")])
        steps = 0
        while stepped.step() is not None:
            steps += 1
        closed = engine_for(books).crawl([("publisher", "orbit")])
        result = stepped.result()
        assert result.records_harvested == closed.records_harvested
        assert result.communication_rounds == closed.communication_rounds
        assert result.queries_issued == closed.queries_issued == steps
        assert result.stopped_by == "frontier-exhausted"

    def test_result_snapshot_mid_crawl(self, books):
        engine = engine_for(books)
        engine.prepare([("publisher", "orbit")])
        engine.step()
        snapshot = engine.result()
        assert snapshot.stopped_by == "in-progress"
        assert snapshot.queries_issued == 1
        engine.step()
        later = engine.result()
        assert later.queries_issued == 2
        assert later.records_harvested >= snapshot.records_harvested

    def test_prepare_twice_rejected(self, books):
        engine = engine_for(books)
        engine.prepare([("publisher", "orbit")])
        with pytest.raises(CrawlError):
            engine.prepare([("publisher", "mitp")])

    def test_crawl_after_prepare_rejected(self, books):
        engine = engine_for(books)
        engine.prepare([("publisher", "orbit")])
        with pytest.raises(CrawlError):
            engine.crawl([("publisher", "orbit")])

    def test_step_after_exhaustion_stays_none(self, books):
        engine = engine_for(books)
        engine.prepare([("publisher", "lonepress")])
        while engine.step() is not None:
            pass
        assert engine.step() is None
        assert engine.result().stopped_by == "frontier-exhausted"
