"""Unit tests for the result extractor (harvest + decompose)."""

from repro.core import AttributeValue, Query, Record, Schema
from repro.crawler import ResultExtractor
from repro.server import QueryInterface, paginate, render_page

schema = Schema.of("title", "publisher", price={"queriable": False})


def make_page():
    matches = [
        Record.build(1, schema, title="a", publisher="orbit", price="9"),
        Record.build(2, schema, title="b", publisher="orbit", price="12"),
    ]
    return paginate(Query.equality("publisher", "orbit"), matches, 1, 10)


class TestDecompose:
    def test_only_queriable_values_survive(self):
        interface = QueryInterface(frozenset({"title", "publisher"}))
        extraction = ResultExtractor(interface).extract(make_page())
        attributes = {value.attribute for value in extraction.candidate_values}
        assert attributes == {"title", "publisher"}

    def test_keyword_interface_keeps_everything(self):
        interface = QueryInterface.keyword_only()
        extraction = ResultExtractor(interface).extract(make_page())
        attributes = {value.attribute for value in extraction.candidate_values}
        assert attributes == {"title", "publisher", "price"}

    def test_first_seen_order_no_duplicates(self):
        interface = QueryInterface(frozenset({"title", "publisher"}))
        extraction = ResultExtractor(interface).extract(make_page())
        values = list(extraction.candidate_values)
        assert values == [
            AttributeValue("title", "a"),
            AttributeValue("publisher", "orbit"),
            AttributeValue("title", "b"),
        ]

    def test_records_passed_through(self):
        interface = QueryInterface(frozenset({"title"}))
        extraction = ResultExtractor(interface).extract(make_page())
        assert [r.record_id for r in extraction.records] == [1, 2]


class TestXmlInput:
    def test_extracts_from_document(self):
        interface = QueryInterface(frozenset({"title", "publisher"}))
        document = render_page(make_page())
        extraction = ResultExtractor(interface).extract(document)
        assert len(extraction.records) == 2
        assert AttributeValue("publisher", "orbit") in extraction.candidate_values

    def test_object_and_xml_paths_agree(self):
        interface = QueryInterface(frozenset({"title", "publisher"}))
        extractor = ResultExtractor(interface)
        page = make_page()
        from_object = extractor.extract(page)
        from_xml = extractor.extract(render_page(page))
        assert from_object.candidate_values == from_xml.candidate_values
        assert [r.record_id for r in from_object.records] == [
            r.record_id for r in from_xml.records
        ]
