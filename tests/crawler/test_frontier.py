"""Unit and property tests for frontier (L_to-query) data structures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeValue
from repro.crawler import (
    FifoFrontier,
    LifoFrontier,
    PriorityFrontier,
    RandomFrontier,
)


def AV(value):
    return AttributeValue("a", value)


class TestFifo:
    def test_discovery_order(self):
        frontier = FifoFrontier()
        frontier.push_all([AV("x"), AV("y"), AV("z")])
        assert [frontier.pop() for _ in range(3)] == [AV("x"), AV("y"), AV("z")]

    def test_empty_pop_none(self):
        assert FifoFrontier().pop() is None

    def test_no_duplicates(self):
        frontier = FifoFrontier()
        assert frontier.push(AV("x"))
        assert not frontier.push(AV("x"))
        assert len(frontier) == 1

    def test_popped_value_cannot_reenter(self):
        frontier = FifoFrontier()
        frontier.push(AV("x"))
        frontier.pop()
        assert not frontier.push(AV("x"))
        assert frontier.pop() is None

    def test_contains_and_bool(self):
        frontier = FifoFrontier()
        assert not frontier
        frontier.push(AV("x"))
        assert frontier
        assert AV("x") in frontier


class TestLifo:
    def test_reverse_order(self):
        frontier = LifoFrontier()
        frontier.push_all([AV("x"), AV("y"), AV("z")])
        assert [frontier.pop() for _ in range(3)] == [AV("z"), AV("y"), AV("x")]


class TestRandom:
    def test_requires_explicit_rng(self):
        # Regression: an implicit ``random.Random()`` default silently
        # broke bit-identical replay in the durable runtime.
        with pytest.raises(TypeError):
            RandomFrontier()  # no unseeded default any more
        with pytest.raises(TypeError, match="bit-identical replay"):
            RandomFrontier(42)  # a bare seed is not a stream
        with pytest.raises(TypeError, match="random.Random"):
            RandomFrontier(rng=None)

    def test_pops_everything_exactly_once(self):
        frontier = RandomFrontier(random.Random(3))
        values = [AV(f"v{i}") for i in range(20)]
        frontier.push_all(values)
        popped = [frontier.pop() for _ in range(20)]
        assert sorted(popped) == sorted(values)
        assert frontier.pop() is None

    def test_seeded_determinism(self):
        def run(seed):
            frontier = RandomFrontier(random.Random(seed))
            frontier.push_all([AV(f"v{i}") for i in range(10)])
            return [frontier.pop() for _ in range(10)]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestPriority:
    def test_pops_max_score(self):
        scores = {AV("lo"): 1.0, AV("hi"): 5.0, AV("mid"): 3.0}
        frontier = PriorityFrontier(lambda v: scores[v])
        frontier.push_all(scores)
        assert frontier.pop() == AV("hi")
        assert frontier.pop() == AV("mid")
        assert frontier.pop() == AV("lo")

    def test_fifo_tie_break(self):
        frontier = PriorityFrontier(lambda v: 1.0)
        frontier.push_all([AV("first"), AV("second")])
        assert frontier.pop() == AV("first")

    def test_refresh_reorders_after_score_growth(self):
        scores = {AV("a"): 1.0, AV("b"): 2.0}
        frontier = PriorityFrontier(lambda v: scores[v])
        frontier.push_all([AV("a"), AV("b")])
        scores[AV("a")] = 10.0
        frontier.refresh(AV("a"))
        assert frontier.pop() == AV("a")

    def test_unrefreshed_growth_caught_at_pop(self):
        # Even without refresh, the pop-time check re-ranks a stale top.
        scores = {AV("a"): 5.0, AV("b"): 1.0}
        frontier = PriorityFrontier(lambda v: scores[v])
        frontier.push_all([AV("a"), AV("b")])
        scores[AV("a")] = 6.0  # still max; growth must not break popping
        assert frontier.pop() == AV("a")

    def test_refresh_of_unknown_value_is_noop(self):
        frontier = PriorityFrontier(lambda v: 1.0)
        frontier.refresh(AV("ghost"))
        assert frontier.pop() is None

    def test_refresh_of_popped_value_is_noop(self):
        frontier = PriorityFrontier(lambda v: 1.0)
        frontier.push(AV("a"))
        frontier.pop()
        frontier.refresh(AV("a"))
        assert frontier.pop() is None

    def test_duplicate_entries_do_not_double_pop(self):
        scores = {AV("a"): 1.0, AV("b"): 0.5}
        frontier = PriorityFrontier(lambda v: scores[v])
        frontier.push_all([AV("a"), AV("b")])
        for _ in range(5):
            frontier.refresh(AV("a"))
        assert frontier.pop() == AV("a")
        assert frontier.pop() == AV("b")
        assert frontier.pop() is None


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40))
def test_property_each_pushed_value_popped_once(raw):
    """All frontier kinds: pops = distinct pushes, no repeats, no losses."""
    values = [AV(f"v{i}") for i in raw]
    distinct = len(set(values))
    for frontier in (
        FifoFrontier(),
        LifoFrontier(),
        RandomFrontier(random.Random(0)),
        PriorityFrontier(lambda v: hash(v) % 7),
    ):
        frontier.push_all(values)
        popped = []
        while True:
            value = frontier.pop()
            if value is None:
                break
            popped.append(value)
        assert len(popped) == distinct
        assert set(popped) == set(values)
