"""Differential tests: the incremental frontier must equal full rescoring.

:class:`~repro.crawler.frontier.InternedPriorityFrontier` only rescores
ids marked dirty since the last pop; ``full_rescore_every=1`` is the
escape hatch that rescores every pending id on every flush.  The two
configurations must yield identical pop sequences whenever the scoring
contract holds (scores change only after a ``refresh``), identical
checkpoint payloads, and identical end-to-end crawls — otherwise the
perf knob silently changes which queries the paper's policies issue.
"""

from __future__ import annotations

import pytest

from repro.core import AttributeValue
from repro.core.intern import ValueInterner
from repro.crawler import CrawlerEngine
from repro.crawler.frontier import InternedPriorityFrontier
from repro.policies import (
    GreedyFrequencySelector,
    GreedyLinkSelector,
    MinMaxMutualInformationSelector,
)
from repro.server import SimulatedWebDatabase


def AV(attribute, value):
    return AttributeValue(attribute, value)


class ScoreWorld:
    """A mutable score table driving one frontier under test."""

    def __init__(self, **frontier_kwargs):
        self.interner = ValueInterner()
        self.scores: dict[int, float] = {}
        self.frontier = InternedPriorityFrontier(
            score_id_fn=lambda vid: self.scores.get(vid, 0.0),
            intern_fn=self.interner.intern,
            lookup_fn=self.interner.lookup,
            value_fn=self.interner.value,
            **frontier_kwargs,
        )

    def push(self, name, score):
        vid = self.interner.intern(AV("a", name))
        self.scores[vid] = score
        return self.frontier.push_id(vid)

    def bump(self, name, score):
        """Change a score *and* report it — the documented contract."""
        vid = self.interner.intern(AV("a", name))
        self.scores[vid] = score
        self.frontier.refresh_id(vid)

    def pop(self):
        value = self.frontier.pop()
        return value.value if value is not None else None


def run_script(world: ScoreWorld, script):
    """Apply (op, *args) steps; collect every pop's result."""
    pops = []
    for op, *args in script:
        if op == "push":
            world.push(*args)
        elif op == "bump":
            world.bump(*args)
        elif op == "pop":
            pops.append(world.pop())
    return pops


#: Pushes, score bumps (with refresh), and pops interleaved to cover
#: re-ranking, ties broken by push order, and drain-to-empty.  Bumps
#: only *raise* scores: the shipped signals (GL degree, GF frequency)
#: are monotone non-decreasing, and the frontier's staleness handling
#: is specified for exactly that regime.
SCRIPT = [
    ("push", "a", 1.0),
    ("push", "b", 5.0),
    ("push", "c", 3.0),
    ("pop",),                 # b
    ("bump", "a", 9.0),
    ("push", "d", 3.0),       # ties c at 3.0; c pushed first
    ("pop",),                 # a (bumped above everything)
    ("bump", "c", 3.5),
    ("bump", "d", 6.0),       # overtakes c
    ("push", "e", 2.0),
    ("pop",),                 # d
    ("pop",),                 # c
    ("pop",),                 # e
    ("push", "f", 3.0),
    ("push", "g", 3.0),       # ties f; f pushed first
    ("pop",),                 # f (tie -> earlier push wins)
    ("pop",),                 # g
    ("pop",),                 # None (empty)
]

EXPECTED = ["b", "a", "d", "c", "e", "f", "g", None]


@pytest.mark.parametrize(
    "kwargs",
    [
        {},                                      # incremental (default)
        {"full_rescore_every": 1},               # rescore everything, always
        {"full_rescore_every": 3},               # periodic escape hatch
        {"rescore_head": 0},                     # no head correction
        {"full_rescore_every": 1, "rescore_head": 0},
    ],
)
def test_pop_sequence_is_config_independent(kwargs):
    assert run_script(ScoreWorld(**kwargs), SCRIPT) == EXPECTED


def test_stats_count_dirty_and_rescored():
    world = ScoreWorld()
    run_script(world, SCRIPT)
    stats = world.frontier.stats
    # 3 bumps marked dirty; the incremental path rescores only those.
    assert stats["dirty_total"] == 3
    assert stats["rescored_total"] == 3
    assert stats["flushes"] >= 1


def test_full_rescore_revisits_clean_ids():
    world = ScoreWorld(full_rescore_every=1)
    run_script(world, SCRIPT)
    stats = world.frontier.stats
    assert stats["dirty_total"] == 3
    # Every flush rescores the whole pending set, so the rescored count
    # must strictly exceed the dirty count on this script.
    assert stats["rescored_total"] > stats["dirty_total"]


def test_refresh_of_unknown_or_popped_id_is_noop():
    world = ScoreWorld()
    world.push("a", 1.0)
    assert world.pop() == "a"
    world.bump("a", 99.0)           # already popped — must stay popped
    world.frontier.refresh_id(777)  # never interned/pushed
    assert world.pop() is None
    assert world.frontier.stats["dirty_total"] == 0


def test_duplicate_push_is_rejected():
    world = ScoreWorld()
    assert world.push("a", 1.0)
    assert not world.push("a", 50.0)
    assert world.pop() == "a"
    assert world.pop() is None


def test_unchanged_score_refresh_pushes_nothing():
    """Rescoring to the same value must not grow the heap (perf invariant)."""
    world = ScoreWorld()
    for name in "abc":
        world.push(name, 2.0)
    for name in "abc":
        world.frontier.refresh_id(world.interner.intern(AV("a", name)))
    world.pop()
    assert len(world.frontier._heap) == 2  # no duplicate entries appended


@pytest.mark.parametrize("cut", [3, 6, 9, 12])
def test_checkpoint_round_trip_mid_script(cut):
    """state_dict/load_state at any point must not perturb later pops."""
    straight = run_script(ScoreWorld(), SCRIPT)

    world = ScoreWorld()
    prefix_pops = run_script(world, SCRIPT[:cut])
    state = world.frontier.state_dict()

    resumed = ScoreWorld()
    resumed.frontier.load_state(state)
    # Ids are re-assigned in load order — carry the scores over by
    # *value*, the way a real resume re-derives them from the local db.
    resumed.scores = {
        resumed.interner.intern(world.interner.value(vid)): score
        for vid, score in world.scores.items()
    }
    suffix_pops = run_script(resumed, SCRIPT[cut:])
    assert prefix_pops + suffix_pops == straight


def test_checkpoint_is_observation_free():
    """Taking a snapshot mid-stream must not change the pop sequence."""
    observed = ScoreWorld()
    pops = []
    for index, step in enumerate(SCRIPT):
        pops.extend(run_script(observed, [step]))
        if index % 2 == 0:
            observed.frontier.state_dict()  # snapshot and discard
    assert pops == EXPECTED


def crawl_pair(table, selector):
    server = SimulatedWebDatabase(table, page_size=10)
    engine = CrawlerEngine(server, selector, seed=11)
    seed_value = next(
        value
        for value in table.distinct_values("seller")
        if table.frequency(value) >= 3
    )
    result = engine.crawl([seed_value], max_queries=45)
    return result, list(engine.context.lqueried)


class TestCrawlLevelIdentity:
    """Full crawls: every frontier configuration issues the same queries."""

    @pytest.mark.parametrize(
        "factory", [GreedyLinkSelector, GreedyFrequencySelector]
    )
    def test_incremental_equals_full_rescore(self, small_ebay, factory):
        base, base_q = crawl_pair(small_ebay, factory())
        full, full_q = crawl_pair(small_ebay, factory(full_rescore_every=1))
        scalar_full, _ = crawl_pair(
            small_ebay, factory(full_rescore_every=1, use_vectorized=False)
        )
        assert base_q == full_q
        assert base == full == scalar_full

    def test_rescore_head_disabled_is_identical(self, small_ebay):
        base, _ = crawl_pair(small_ebay, GreedyLinkSelector())
        no_head, _ = crawl_pair(small_ebay, GreedyLinkSelector(rescore_head=0))
        assert base == no_head

    def test_frontier_stats_surface(self, small_ebay):
        selector = GreedyLinkSelector()
        crawl_pair(small_ebay, selector)
        stats = selector.frontier_stats()
        assert stats is not None
        assert stats["rescored_total"] >= stats["dirty_total"] > 0
        assert stats["pending"] >= 0

    def test_mmmi_has_no_interned_frontier_stats(self, small_ebay):
        """MMMI keeps its own batch frontier — no stats, and the
        telemetry sampler must treat that as 'nothing to record'."""
        selector = MinMaxMutualInformationSelector()
        crawl_pair(selector=selector, table=small_ebay)
        assert not hasattr(selector, "frontier_stats") or (
            selector.frontier_stats() is None
        )
