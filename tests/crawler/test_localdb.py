"""Unit and property tests for the crawler's local database."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeValue
from repro.crawler import LocalDatabase
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestAdd:
    def test_new_record_true(self):
        local = LocalDatabase()
        assert local.add(make_record(1, a="x"))
        assert len(local) == 1

    def test_duplicate_false(self):
        local = LocalDatabase()
        record = make_record(1, a="x")
        assert local.add(record)
        assert not local.add(record)
        assert len(local) == 1

    def test_add_all_counts_new(self):
        local = LocalDatabase()
        records = [make_record(1, a="x"), make_record(2, a="y"), make_record(1, a="x")]
        assert local.add_all(records) == 2

    def test_contains_and_ids(self):
        local = LocalDatabase()
        local.add(make_record(5, a="x"))
        assert 5 in local
        assert 6 not in local
        assert local.record_ids() == [5]


class TestStatistics:
    def test_frequency_counts_matching_records(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="x", b="q"))
        assert local.frequency(AV("a", "x")) == 2
        assert local.frequency(AV("b", "p")) == 1
        assert local.frequency(AV("a", "ghost")) == 0

    def test_degree_is_distinct_neighbors(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="x", b="p"))  # same neighbourhood
        local.add(make_record(3, a="x", b="q"))
        assert local.degree(AV("a", "x")) == 2  # p and q
        assert local.degree(AV("b", "p")) == 1

    def test_neighbors(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p", c="z"))
        assert local.neighbors(AV("a", "x")) == {AV("b", "p"), AV("c", "z")}

    def test_matching_ids(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x"))
        local.add(make_record(4, a="x"))
        assert local.matching_ids(AV("a", "x")) == {1, 4}

    def test_keyword_frequency_spans_attributes(self):
        local = LocalDatabase()
        local.add(make_record(1, a="orbit"))
        local.add(make_record(2, b="orbit"))
        assert local.keyword_frequency("orbit") == 2

    def test_distinct_values_sorted(self):
        local = LocalDatabase()
        local.add(make_record(1, b="y", a="x"))
        values = local.distinct_values()
        assert values == sorted(values)
        assert local.num_distinct_values() == 2

    def test_values_of_attribute(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="y"))
        assert local.values_of_attribute("a") == [AV("a", "x")]


class TestCooccurrence:
    def test_tracked_mode(self):
        local = LocalDatabase(track_cooccurrence=True)
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="x", b="p"))
        local.add(make_record(3, a="x", b="q"))
        assert local.cooccurrence(AV("a", "x"), AV("b", "p")) == 2
        assert local.cooccurrence(AV("a", "x"), AV("b", "q")) == 1
        assert local.cooccurrence(AV("b", "p"), AV("b", "q")) == 0

    def test_untracked_falls_back_to_postings(self):
        local = LocalDatabase(track_cooccurrence=False)
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="x", b="p"))
        assert local.cooccurrence(AV("a", "x"), AV("b", "p")) == 2

    def test_modes_agree(self):
        records = [
            make_record(1, a="x", b="p"),
            make_record(2, a="x", b="q"),
            make_record(3, a="y", b="p"),
        ]
        tracked, untracked = LocalDatabase(True), LocalDatabase(False)
        for record in records:
            tracked.add(record)
            untracked.add(record)
        for u in tracked.distinct_values():
            for v in tracked.distinct_values():
                assert tracked.cooccurrence(u, v) == untracked.cooccurrence(u, v)


class TestPmi:
    def test_independent_pair_pmi_zero(self):
        # P(x)=0.5, P(p)=0.5, P(x,p)=0.25 over 4 records: PMI = ln 1 = 0.
        local = LocalDatabase(track_cooccurrence=True)
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="x", b="q"))
        local.add(make_record(3, a="y", b="p"))
        local.add(make_record(4, a="y", b="q"))
        assert local.pmi(AV("a", "x"), AV("b", "p")) == pytest.approx(0.0)

    def test_perfect_dependency_positive(self):
        local = LocalDatabase(track_cooccurrence=True)
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="y", b="q"))
        # x and p always co-occur: PMI = ln(1*2/(1*1)) = ln 2.
        assert local.pmi(AV("a", "x"), AV("b", "p")) == pytest.approx(math.log(2))

    def test_never_cooccur_is_minus_inf(self):
        local = LocalDatabase(track_cooccurrence=True)
        local.add(make_record(1, a="x", b="p"))
        local.add(make_record(2, a="y", b="q"))
        assert local.pmi(AV("a", "x"), AV("b", "q")) == -math.inf

    def test_empty_db_is_minus_inf(self):
        local = LocalDatabase(track_cooccurrence=True)
        assert local.pmi(AV("a", "x"), AV("b", "p")) == -math.inf


class TestFrozenViews:
    """neighbors()/matching_ids() must never expose live internal sets."""

    def test_neighbors_view_is_immutable(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p"))
        view = local.neighbors(AV("a", "x"))
        assert view == {AV("b", "p")}
        with pytest.raises(AttributeError):
            view.add(AV("b", "q"))

    def test_matching_ids_view_is_immutable(self):
        local = LocalDatabase()
        local.add(make_record(1, a="x"))
        view = local.matching_ids(AV("a", "x"))
        assert view == {1}
        with pytest.raises(AttributeError):
            view.discard(1)

    def test_held_view_detached_from_later_inserts(self):
        # A policy may hold a view across rounds; G_local must neither
        # leak into it nor be corruptible through it.
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p"))
        neighbors_before = local.neighbors(AV("a", "x"))
        ids_before = local.matching_ids(AV("a", "x"))
        local.add(make_record(2, a="x", b="q"))
        assert neighbors_before == {AV("b", "p")}
        assert ids_before == {1}
        assert local.neighbors(AV("a", "x")) == {AV("b", "p"), AV("b", "q")}
        assert local.matching_ids(AV("a", "x")) == {1, 2}
        assert local.degree(AV("a", "x")) == 2

    def test_unknown_value_empty_views(self):
        local = LocalDatabase()
        assert local.neighbors(AV("a", "nope")) == frozenset()
        assert local.matching_ids(AV("a", "nope")) == frozenset()

    def test_views_compose_with_set_algebra(self):
        # mmmi intersects neighbor views with plain sets — keep working.
        local = LocalDatabase()
        local.add(make_record(1, a="x", b="p", c="m"))
        queried = {AV("b", "p"), AV("z", "zz")}
        assert local.neighbors(AV("a", "x")) & queried == {AV("b", "p")}


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("xyz"), st.sampled_from("pqr")),
        min_size=1,
        max_size=20,
    )
)
def test_property_degree_equals_local_avg_degree(pairs):
    """LocalDatabase's incremental degree must match a from-scratch AVG."""
    from repro.graph import build_avg

    records = [make_record(i, a=a, b=b) for i, (a, b) in enumerate(pairs)]
    local = LocalDatabase()
    for record in records:
        local.add(record)
    graph = build_avg(records)
    for node in graph.nodes:
        assert local.degree(node) == graph.degree(node)
        assert local.frequency(node) == graph.nodes[node]["frequency"]
