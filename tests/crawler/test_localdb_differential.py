"""Differential oracle: interned ``LocalDatabase`` vs the pre-PR dicts.

The dense-interning rewrite of :class:`repro.crawler.localdb.
LocalDatabase` must be *invisible* — every statistic it serves has to
match the retained pure-dict implementation
(:class:`repro.crawler.reference.ReferenceLocalDatabase`) on any record
stream.  These tests feed byte-identical seeded streams to both and
compare the full statistical surface:

frequencies, degrees, neighbor sets, postings (``matching_ids``),
keyword frequencies, co-occurrence counts (both the tracked-counter and
the posting-intersection configurations), PMI, conjunctive matching,
and the vocabulary views.

A hypothesis property covers adversarial small streams (duplicate
records, multi-valued attributes, colliding values across attributes);
a larger fixed-seed random stream covers the bulk statistics at a size
where lazy posting flushes and re-sorts actually trigger.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeValue, ValueInterner
from repro.core.records import Record
from repro.crawler import LocalDatabase, ReferenceLocalDatabase

ATTRIBUTES = ("author", "venue", "year", "tags")
VALUES = tuple(f"v{i}" for i in range(12))


def make_stream(seed: int, n: int, duplicate_every: int = 4) -> list[Record]:
    """A deterministic record stream with collisions and duplicates."""
    rng = random.Random(seed)
    records: list[Record] = []
    for i in range(n):
        if records and i % duplicate_every == 3:
            # Re-offer an earlier record verbatim (the common case in a
            # crawl: result pages overlap heavily).
            records.append(records[rng.randrange(len(records))])
            continue
        fields = {}
        for attribute in rng.sample(ATTRIBUTES, rng.randint(1, len(ATTRIBUTES))):
            if attribute == "tags":  # multi-valued
                fields[attribute] = tuple(
                    rng.sample(VALUES, rng.randint(1, 3))
                )
            else:
                fields[attribute] = (rng.choice(VALUES),)
        records.append(Record(i, fields))
    return records


def assert_equivalent(local: LocalDatabase, reference: ReferenceLocalDatabase):
    """Compare the entire statistical surface of the two implementations."""
    assert len(local) == len(reference)
    assert local.record_ids() == reference.record_ids()
    assert local.num_distinct_values() == reference.num_distinct_values()
    assert local.distinct_values() == reference.distinct_values()

    values = reference.distinct_values()
    for value in values:
        assert local.frequency(value) == reference.frequency(value), value
        assert local.degree(value) == reference.degree(value), value
        assert local.neighbors(value) == reference.neighbors(value), value
        assert local.matching_ids(value) == reference.matching_ids(value), value

    keywords = {value.value for value in values}
    for keyword in keywords:
        assert local.keyword_frequency(keyword) == reference.keyword_frequency(
            keyword
        ), keyword

    for attribute in ATTRIBUTES:
        assert local.values_of_attribute(attribute) == (
            reference.values_of_attribute(attribute)
        ), attribute

    # Pairwise statistics over a deterministic sample (all pairs would
    # be quadratic; the sample still covers co-occurring and disjoint
    # pairs, plus the u == v diagonal).
    sample = values[:: max(1, len(values) // 12)]
    for u in sample:
        for v in sample:
            assert local.cooccurrence(u, v) == reference.cooccurrence(u, v), (u, v)
            expected = reference.pmi(u, v)
            actual = local.pmi(u, v)
            if math.isinf(expected):
                assert math.isinf(actual) and actual < 0, (u, v)
            else:
                assert actual == expected, (u, v)

    # Conjunctive matching over sampled predicate pairs/triples.
    for i in range(0, max(0, len(values) - 2), 3):
        predicates = [values[i], values[i + 1], values[i + 2]]
        assert local.conjunctive_matching_ids(predicates) == (
            reference.conjunctive_matching_ids(predicates)
        ), predicates
        assert local.conjunctive_frequency(predicates) == (
            reference.conjunctive_frequency(predicates)
        ), predicates

    # Unknown values answer identically on both.
    ghost = AttributeValue("author", "never-harvested")
    assert local.frequency(ghost) == reference.frequency(ghost) == 0
    assert local.degree(ghost) == reference.degree(ghost) == 0
    assert local.neighbors(ghost) == reference.neighbors(ghost) == frozenset()
    assert local.matching_ids(ghost) == reference.matching_ids(ghost) == frozenset()


def feed_both(records, track_cooccurrence: bool, interner=None):
    local = LocalDatabase(
        track_cooccurrence=track_cooccurrence, interner=interner
    )
    reference = ReferenceLocalDatabase(track_cooccurrence=track_cooccurrence)
    for record in records:
        assert local.add(record) == reference.add(record), record.record_id
    return local, reference


class TestSeededStreams:
    def test_tracked_cooccurrence_stream(self):
        records = make_stream(seed=11, n=600)
        local, reference = feed_both(records, track_cooccurrence=True)
        assert_equivalent(local, reference)

    def test_posting_intersection_stream(self):
        # Without the tracked counter, co-occurrence answers come from
        # sorted-posting intersections — the lazy flush/sort machinery.
        records = make_stream(seed=23, n=600)
        local, reference = feed_both(records, track_cooccurrence=False)
        assert_equivalent(local, reference)

    def test_interleaved_reads_do_not_perturb_state(self):
        # Reading statistics mid-stream triggers posting flushes between
        # adds; the final state must still match a write-only reference.
        records = make_stream(seed=37, n=300)
        local, reference = feed_both([], track_cooccurrence=False)
        probe = AttributeValue("author", VALUES[0])
        for i, record in enumerate(records):
            assert local.add(record) == reference.add(record)
            if i % 7 == 0:
                local.matching_ids(probe)
                local.keyword_frequency(VALUES[1])
                local.conjunctive_frequency(
                    [probe, AttributeValue("venue", VALUES[2])]
                )
        assert_equivalent(local, reference)

    def test_shared_interner_pollution_is_invisible(self):
        # A shared interner holding ids for values no harvested record
        # contains (seeds, frontier candidates) must not leak into the
        # vocabulary or any statistic.
        interner = ValueInterner()
        for i in range(40):
            interner.intern(AttributeValue("author", f"phantom-{i}"))
        records = make_stream(seed=51, n=400)
        local, reference = feed_both(
            records, track_cooccurrence=True, interner=interner
        )
        assert_equivalent(local, reference)

    def test_multiple_clique_sizes(self):
        # Single-attribute records (clique of 1: no edges) through wide
        # multi-valued cliques.
        for seed, duplicate_every in ((3, 2), (5, 10)):
            records = make_stream(seed=seed, n=250, duplicate_every=duplicate_every)
            records += [
                Record(10_000 + i, {"author": (VALUES[i % len(VALUES)],)})
                for i in range(30)
            ]
            local, reference = feed_both(records, track_cooccurrence=True)
            assert_equivalent(local, reference)


@st.composite
def record_streams(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    records = []
    for i in range(n):
        record_id = draw(st.integers(min_value=0, max_value=12))
        n_attrs = draw(st.integers(min_value=1, max_value=3))
        fields = {}
        for a in range(n_attrs):
            attribute = draw(st.sampled_from(ATTRIBUTES))
            n_values = draw(st.integers(min_value=1, max_value=2))
            fields[attribute] = tuple(
                draw(st.sampled_from(VALUES[:5])) for _ in range(n_values)
            )
        records.append(Record(record_id, fields))
    return records


class TestPropertyDifferential:
    @settings(max_examples=60, deadline=None)
    @given(records=record_streams(), tracked=st.booleans())
    def test_any_stream_matches_reference(self, records, tracked):
        local, reference = feed_both(records, track_cooccurrence=tracked)
        assert_equivalent(local, reference)
