"""Tests for exporting a harvest as a table (re-crawl bootstrapping)."""

import pytest

from repro.crawler import CrawlerEngine
from repro.domain import build_domain_table
from repro.policies import BreadthFirstSelector, DomainKnowledgeSelector
from repro.server import SimulatedWebDatabase


class TestToTable:
    def crawl(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
        engine.crawl([("publisher", "orbit")])
        return engine.local_db

    def test_export_preserves_records(self, books):
        local = self.crawl(books)
        table = local.to_table(books.schema, name="harvest-1")
        assert len(table) == len(local)
        assert table.name == "harvest-1"
        for record_id in local.record_ids():
            assert table.get(record_id).fields == books.get(record_id).fields

    def test_export_is_queryable(self, books):
        local = self.crawl(books)
        table = local.to_table(books.schema)
        # All harvested orbit books must be findable in the export.
        assert len(table.match_equality("publisher", "orbit")) == 4

    def test_roundtrip_through_io(self, books, tmp_path):
        from repro import io

        local = self.crawl(books)
        path = tmp_path / "harvest.json"
        io.save_table(local.to_table(books.schema), path)
        assert len(io.load_table(path)) == len(local)

    def test_self_bootstrap_recrawl(self, books):
        """Last crawl's harvest seeds the next crawl as a domain table."""
        local = self.crawl(books)
        harvest = local.to_table(books.schema)
        domain_table = build_domain_table(harvest)
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(
            server, DomainKnowledgeSelector(domain_table), seed=1
        )
        result = engine.crawl([], allow_empty_seeds=True)
        # The self-domain table spans the whole reachable component, so
        # the re-crawl recovers at least the previous harvest.
        assert result.records_harvested >= len(local)
