"""Unit and property tests for crawl histories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler import CrawlHistory


def history_from(points):
    history = CrawlHistory()
    for rounds, records in points:
        history.append(rounds, records)
    return history


class TestAppend:
    def test_monotone_enforced_rounds(self):
        history = history_from([(0, 0), (5, 3)])
        with pytest.raises(ValueError):
            history.append(4, 10)

    def test_monotone_enforced_records(self):
        history = history_from([(0, 0), (5, 3)])
        with pytest.raises(ValueError):
            history.append(6, 2)

    def test_finals(self):
        history = history_from([(0, 0), (5, 3), (9, 7)])
        assert history.final_rounds == 9
        assert history.final_records == 7
        assert len(history) == 3

    def test_empty(self):
        history = CrawlHistory()
        assert history.final_rounds == 0
        assert history.final_records == 0


class TestRoundsToRecords:
    history = history_from([(0, 0), (10, 40), (25, 60), (60, 90)])

    def test_exact_hit(self):
        assert self.history.rounds_to_records(60) == 25

    def test_between_points_charges_crossing_query(self):
        assert self.history.rounds_to_records(50) == 25

    def test_zero_target_free(self):
        assert self.history.rounds_to_records(0) == 0

    def test_unreached_returns_none(self):
        assert self.history.rounds_to_records(91) is None

    def test_rounds_to_coverage(self):
        # 50% of 100 records = 50 -> crossed at rounds 25.
        assert self.history.rounds_to_coverage(0.5, 100) == 25


class TestRecordsAtRounds:
    history = history_from([(0, 0), (10, 40), (25, 60)])

    def test_exact(self):
        assert self.history.records_at_rounds(10) == 40

    def test_between(self):
        assert self.history.records_at_rounds(24) == 40

    def test_before_start(self):
        assert self.history.records_at_rounds(-1) == 0

    def test_beyond_end(self):
        assert self.history.records_at_rounds(1000) == 60

    def test_coverage_at_rounds(self):
        assert self.history.coverage_at_rounds(25, 120) == pytest.approx(0.5)
        assert self.history.coverage_at_rounds(25, 0) == 0.0

    def test_series_helpers(self):
        assert self.history.coverage_series([10, 25], 100) == [0.4, 0.6]
        assert self.history.cost_series([0.4, 0.6, 0.9], 100) == [10, 25, None]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1,
        max_size=20,
    )
)
def test_property_lookups_are_inverse_consistent(deltas):
    """records_at_rounds(rounds_to_records(n)) >= n when reachable."""
    history = CrawlHistory()
    rounds = records = 0
    for d_rounds, d_records in deltas:
        rounds += d_rounds
        records += d_records
        history.append(rounds, records)
    for target in range(0, records + 1, max(records // 5, 1)):
        cost = history.rounds_to_records(target)
        assert cost is not None
        assert history.records_at_rounds(cost) >= target
