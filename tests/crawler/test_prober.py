"""Unit tests for the database prober (query execution + paging)."""

import pytest

from repro.core import Query
from repro.crawler import (
    DatabaseProber,
    LocalDatabase,
    ResultExtractor,
    TotalCountAbort,
)
from repro.server import SimulatedWebDatabase


def make_prober(books, abortion=None, use_xml=False, local=None):
    server = SimulatedWebDatabase(books, page_size=2)
    local = local if local is not None else LocalDatabase()
    extractor = ResultExtractor(server.interface)
    return server, local, DatabaseProber(server, extractor, local, abortion, use_xml)


class TestExecute:
    def test_fetches_all_pages(self, books):
        server, local, prober = make_prober(books)
        outcome = prober.execute(Query.equality("publisher", "orbit"))
        assert outcome.pages_fetched == 2
        assert outcome.records_returned == 4
        assert len(outcome.new_records) == 4
        assert outcome.total_matches == 4
        assert not outcome.aborted
        assert server.rounds == 2
        assert len(local) == 4

    def test_duplicates_not_new(self, books):
        _server, local, prober = make_prober(books)
        prober.execute(Query.equality("publisher", "orbit"))
        outcome = prober.execute(Query.equality("author", "knuth"))
        # knuth matches records 0, 1 (orbit, already local) and 4 (mitp).
        assert outcome.records_returned == 3
        assert len(outcome.new_records) == 1
        assert outcome.new_records[0].record_id == 4

    def test_zero_match_query(self, books):
        server, _local, prober = make_prober(books)
        outcome = prober.execute(Query.equality("publisher", "ghost"))
        assert outcome.pages_fetched == 1
        assert outcome.records_returned == 0
        assert outcome.harvest_rate == 0.0
        assert server.rounds == 1

    def test_rejected_query_costs_nothing(self, books):
        server, _local, prober = make_prober(books)
        outcome = prober.execute(Query.equality("price", "10"))
        assert outcome.rejected
        assert outcome.pages_fetched == 0
        assert server.rounds == 0

    def test_candidate_values_from_all_pages(self, books):
        _server, _local, prober = make_prober(books)
        outcome = prober.execute(Query.equality("publisher", "orbit"))
        attributes = {v.attribute for v in outcome.candidate_values}
        assert attributes == {"title", "publisher", "author"}

    def test_harvest_rate(self, books):
        _server, _local, prober = make_prober(books)
        outcome = prober.execute(Query.equality("publisher", "orbit"))
        assert outcome.harvest_rate == pytest.approx(4 / 2)


class TestAbortion:
    def test_abort_stops_paging(self, books):
        server, local, prober = make_prober(
            books, abortion=TotalCountAbort(min_harvest_rate=1.0)
        )
        # Pre-load everything so the orbit query returns only duplicates.
        for record in books:
            local.add(record)
        outcome = prober.execute(Query.equality("publisher", "orbit"))
        assert outcome.aborted
        assert outcome.pages_fetched == 1
        assert server.rounds == 1


class TestXmlPath:
    def test_same_outcome_as_object_path(self, books):
        _s1, _l1, object_prober = make_prober(books, use_xml=False)
        _s2, _l2, xml_prober = make_prober(books, use_xml=True)
        query = Query.equality("publisher", "orbit")
        a = object_prober.execute(query)
        b = xml_prober.execute(query)
        assert a.pages_fetched == b.pages_fetched
        assert [r.record_id for r in a.new_records] == [
            r.record_id for r in b.new_records
        ]
        assert a.candidate_values == b.candidate_values
