"""Unit tests for the car-domain dataset and its restrictive interface."""

import pytest

from repro.core import DatasetError
from repro.datasets import car_interface, generate_cars


class TestGenerator:
    def test_size(self):
        assert len(generate_cars(250, seed=1)) == 250

    def test_deterministic(self):
        a = generate_cars(100, seed=4)
        b = generate_cars(100, seed=4)
        assert [r.fields for r in a] == [r.fields for r in b]

    def test_models_nest_under_makes(self):
        """Each model string appears under exactly one make."""
        table = generate_cars(1200, seed=2)
        model_to_makes = {}
        for record in table:
            model = record.values_of("model")[0]
            make = record.values_of("make")[0]
            model_to_makes.setdefault(model, set()).add(make)
        assert all(len(makes) == 1 for makes in model_to_makes.values())

    def test_bad_size(self):
        with pytest.raises(DatasetError):
            generate_cars(0)

    def test_complete_records(self):
        table = generate_cars(80, seed=3)
        for record in table:
            for attribute in ("make", "model", "year", "price", "location"):
                assert record.values_of(attribute)


class TestInterface:
    def test_default_requires_two_predicates(self):
        interface = car_interface()
        assert interface.min_predicates == 2
        assert not interface.single_attribute_queriable

    def test_custom_minimum(self):
        assert car_interface(min_predicates=3).min_predicates == 3

    def test_no_keyword_box(self):
        assert not car_interface().supports_keyword
