"""Unit tests for the eBay / ACM / DBLP dataset generators."""

import pytest

from repro.core import DatasetError
from repro.datasets import (
    EBAY_SCHEMA,
    generate_acm,
    generate_dblp,
    generate_ebay,
)
from repro.graph import build_avg_from_table, fit_power_law, record_connectivity


class TestEbay:
    def test_size_and_schema(self):
        table = generate_ebay(300, seed=1)
        assert len(table) == 300
        assert table.schema is EBAY_SCHEMA
        assert set(table.schema.queriable) == {
            "categories",
            "seller",
            "location",
            "price",
        }

    def test_deterministic(self):
        a = generate_ebay(100, seed=5)
        b = generate_ebay(100, seed=5)
        assert [r.fields for r in a] == [r.fields for r in b]

    def test_seed_changes_content(self):
        a = generate_ebay(100, seed=5)
        b = generate_ebay(100, seed=6)
        assert [r.fields for r in a] != [r.fields for r in b]

    def test_every_record_complete(self):
        table = generate_ebay(100, seed=2)
        for record in table:
            for attribute in ("categories", "seller", "location", "price", "title"):
                assert record.values_of(attribute)

    def test_bad_size(self):
        with pytest.raises(DatasetError):
            generate_ebay(0)

    def test_seller_head_exists(self):
        table = generate_ebay(1000, seed=3)
        top = max(
            table.frequency(value) for value in table.distinct_values("seller")
        )
        assert top >= 10  # power sellers exist
        assert top < 300  # but no single seller owns the market


class TestScholarly:
    def test_acm_has_keywords_no_volume(self):
        table = generate_acm(200, seed=1)
        assert "subject_keywords" in table.schema.queriable
        assert "volume" not in table.schema.names

    def test_dblp_has_volume_no_keywords(self):
        table = generate_dblp(200, seed=1)
        assert "volume" in table.schema.queriable
        assert "subject_keywords" not in table.schema.names

    def test_journal_xor_conference(self):
        table = generate_dblp(200, seed=1)
        for record in table:
            has_journal = bool(record.values_of("journal"))
            has_conference = bool(record.values_of("conference"))
            assert has_journal != has_conference

    def test_authors_multivalued(self):
        table = generate_dblp(300, seed=1)
        assert any(len(record.values_of("author")) >= 2 for record in table)

    def test_bad_sizes(self):
        with pytest.raises(DatasetError):
            generate_acm(0)
        with pytest.raises(DatasetError):
            generate_dblp(-5)


class TestStructuralProperties:
    """The properties Figures 2 and 3 depend on."""

    @pytest.mark.parametrize("generator", [generate_ebay, generate_acm, generate_dblp])
    def test_well_connected(self, generator):
        table = generator(800, seed=4)
        graph = build_avg_from_table(table, queriable_only=True)
        assert record_connectivity(list(table), graph) > 0.95

    @pytest.mark.parametrize("generator", [generate_acm, generate_dblp])
    def test_heavy_tail_degrees(self, generator):
        table = generator(1500, seed=4)
        graph = build_avg_from_table(table, queriable_only=True)
        fit = fit_power_law(graph)
        assert fit.slope < -0.8
        assert fit.r_squared > 0.5
