"""Unit tests for the Table 1 interface corpus."""

import pytest

from repro.core import DatasetError
from repro.datasets import (
    TABLE1_PROFILES,
    TABLE1_REPOSITORY,
    generate_interface_corpus,
)


class TestCorpus:
    def test_size(self):
        corpus = generate_interface_corpus(25, seed=0)
        assert len(corpus) == 25 * len(TABLE1_PROFILES)

    def test_deterministic(self):
        assert generate_interface_corpus(10, seed=1) == generate_interface_corpus(
            10, seed=1
        )

    def test_counts_match_percentages(self):
        corpus = generate_interface_corpus(100, seed=2)
        for domain, (kw_pct, sqm_pct) in TABLE1_PROFILES.items():
            profiles = [p for p in corpus if p.domain == domain]
            kw = sum(p.supports_keyword for p in profiles)
            sqm = sum(p.single_attribute_queriable for p in profiles)
            assert kw == kw_pct
            assert sqm == sqm_pct

    def test_sqm_covers_keyword_where_possible(self):
        corpus = generate_interface_corpus(50, seed=3)
        for domain, (kw_pct, sqm_pct) in TABLE1_PROFILES.items():
            if kw_pct > sqm_pct:
                continue  # the paper's own inconsistency (e.g. job)
            for profile in corpus:
                if profile.domain == domain and profile.supports_keyword:
                    assert profile.single_attribute_queriable

    def test_bad_size(self):
        with pytest.raises(DatasetError):
            generate_interface_corpus(0)

    def test_all_domains_have_repository(self):
        assert set(TABLE1_PROFILES) == set(TABLE1_REPOSITORY)


class TestInterfaces:
    def test_sqm_source_gets_structured_interface(self):
        corpus = generate_interface_corpus(25, seed=0)
        profile = next(p for p in corpus if p.single_attribute_queriable)
        interface = profile.interface()
        assert interface is not None
        assert interface.queriable_attributes

    def test_keyword_only_source(self):
        corpus = generate_interface_corpus(50, seed=0)
        keyword_only = [
            p
            for p in corpus
            if p.supports_keyword and not p.single_attribute_queriable
        ]
        for profile in keyword_only:
            interface = profile.interface()
            assert interface is not None
            assert interface.supports_keyword
            assert not interface.queriable_attributes

    def test_uncrawlable_source_has_no_interface(self):
        corpus = generate_interface_corpus(50, seed=0)
        blocked = next(
            p
            for p in corpus
            if not p.supports_keyword and not p.single_attribute_queriable
        )
        assert blocked.interface() is None
