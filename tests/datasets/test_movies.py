"""Unit tests for the shared movie universe and its two databases."""

import pytest

from repro.core import AttributeValue, DatasetError
from repro.datasets import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    generate_imdb,
    imdb_table_from_movies,
)


class TestUniverse:
    def test_deterministic(self):
        a = MovieUniverse(100, seed=3)
        b = MovieUniverse(100, seed=3)
        assert a.movies == b.movies

    def test_years_in_range(self, movie_universe):
        assert all(1930 <= movie.year <= 2005 for movie in movie_universe.movies)

    def test_since_filters(self, movie_universe):
        recent = movie_universe.since(1980)
        assert all(movie.year >= 1980 for movie in recent)
        assert len(recent) < len(movie_universe.movies)
        assert len(movie_universe.since(1960)) > len(recent)

    def test_obscure_fraction_bounds(self):
        with pytest.raises(DatasetError):
            MovieUniverse(10, obscure_fraction=1.0)
        with pytest.raises(DatasetError):
            MovieUniverse(0)

    def test_obscure_movies_have_one_off_casts(self):
        universe = MovieUniverse(400, seed=9, obscure_fraction=0.5)
        appearances = {}
        for movie in universe.movies:
            for person in movie.actors + movie.actresses:
                appearances.setdefault(person, []).append(movie.title)
        singles = sum(1 for titles in appearances.values() if len(titles) == 1)
        assert singles / len(appearances) > 0.4

    def test_zero_obscure_fraction_allowed(self):
        universe = MovieUniverse(50, seed=1, obscure_fraction=0.0)
        assert len(universe.movies) == 50


class TestImdbTable:
    def test_full_universe(self, movie_universe):
        table = generate_imdb(universe=movie_universe)
        assert len(table) == movie_universe.n_movies
        assert "actor" in table.schema.queriable
        assert "year" not in table.schema.queriable

    def test_subset_table(self, movie_universe):
        subset = movie_universe.since(1980)
        table = imdb_table_from_movies(subset, name="imdb-80s")
        assert len(table) == len(subset)
        assert table.name == "imdb-80s"

    def test_dt_attributes_exist_in_imdb_schema(self, movie_universe):
        table = generate_imdb(universe=movie_universe)
        for attribute in IMDB_DT_ATTRIBUTES:
            assert attribute in table.schema


class TestAmazonStore:
    def test_recency_bias(self, movie_universe, dvd_store):
        universe_years = [movie.year for movie in movie_universe.movies]
        store_years = [int(record.values_of("year")[0]) for record in dvd_store]
        assert sum(store_years) / len(store_years) > sum(universe_years) / len(
            universe_years
        )

    def test_people_only_interface(self, dvd_store):
        assert set(dvd_store.schema.queriable) == {
            "title",
            "actor",
            "actress",
            "director",
        }

    def test_overlap_with_universe(self, movie_universe, dvd_store):
        universe_titles = {movie.title for movie in movie_universe.movies}
        store_titles = {record.values_of("title")[0] for record in dvd_store}
        shared = store_titles & universe_titles
        assert len(shared) > 0.8 * len(store_titles)  # mostly catalogue
        assert store_titles - universe_titles  # plus store exclusives

    def test_catalogue_fraction_scales_size(self, movie_universe):
        small = generate_amazon_dvd(movie_universe, catalogue_fraction=0.3, seed=1)
        large = generate_amazon_dvd(movie_universe, catalogue_fraction=0.9, seed=1)
        assert len(small) < len(large)

    def test_no_exclusives_when_zero(self, movie_universe):
        store = generate_amazon_dvd(
            movie_universe, exclusive_fraction=0.0, seed=1
        )
        universe_titles = {movie.title for movie in movie_universe.movies}
        assert all(
            record.values_of("title")[0] in universe_titles for record in store
        )

    def test_bad_fractions(self, movie_universe):
        with pytest.raises(DatasetError):
            generate_amazon_dvd(movie_universe, catalogue_fraction=0.0)
        with pytest.raises(DatasetError):
            generate_amazon_dvd(movie_universe, exclusive_fraction=-0.1)

    def test_store_has_data_islands(self, movie_universe, dvd_store):
        """Obscure movies are unreachable through the people/title graph."""
        from repro.graph import build_avg_from_table, record_connectivity

        graph = build_avg_from_table(dvd_store, queriable_only=True)
        connectivity = record_connectivity(list(dvd_store), graph)
        assert connectivity < 0.95  # islands exist ...
        assert connectivity > 0.5   # ... but the bulk is connected


class TestDomainOverlap:
    def test_dt_covers_most_store_people(self, dvd_store, dvd_domain_table):
        """The premise of Section 4: same-domain databases share values."""
        store_actors = dvd_store.distinct_values("actor")
        covered = sum(1 for value in store_actors if value in dvd_domain_table)
        assert covered / len(store_actors) > 0.6
