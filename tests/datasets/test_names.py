"""Unit tests for synthetic vocabularies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import names


GENERATORS = (
    names.person_names,
    names.titles,
    names.venues,
    names.subjects,
    names.cities,
    names.companies,
    names.genres,
    names.languages,
    names.usernames,
    names.price_buckets,
)


@pytest.mark.parametrize("generator", GENERATORS)
class TestAllGenerators:
    def test_distinct(self, generator):
        values = generator(500)
        assert len(values) == len(set(values)) == 500

    def test_deterministic(self, generator):
        assert generator(50) == generator(50)

    def test_prefix_stable(self, generator):
        # Growing the vocabulary never changes earlier entries.
        assert generator(100)[:40] == generator(40)

    def test_nonempty_strings(self, generator):
        assert all(value and value.strip() == value for value in generator(100))

    def test_zero(self, generator):
        assert generator(0) == []


class TestSpecifics:
    def test_person_name_format(self):
        assert "," in names.person_name(0)
        assert names.person_names(3)[0] == names.person_name(0)

    def test_person_name_unbounded_index(self):
        assert names.person_name(10_000_000) != names.person_name(10_000_001)

    def test_person_names_negative_rejected(self):
        with pytest.raises(Exception):
            names.person_names(-1)

    def test_price_buckets_format(self):
        assert all(bucket.startswith("$") for bucket in names.price_buckets(20))

    def test_venue_mentions_subject(self):
        assert " on " in names.venues(1)[0]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_person_name_lowercase_normalizable(self, index):
        from repro.core import normalize

        name = names.person_name(index)
        assert normalize(name) == name.lower()
