"""Unit tests for the dataset registry."""

import pytest

from repro.core import DatasetError
from repro.datasets import dataset_info, dataset_names, load_dataset


class TestRegistry:
    def test_names_cover_paper_datasets(self):
        assert set(dataset_names()) == {"ebay", "imdb", "dblp", "acm"}

    def test_info_fields(self):
        info = dataset_info("ebay")
        assert info.paper_records == 20_000
        assert info.paper_distinct_values == 22_950
        assert "seller" in info.queriable_attributes

    def test_info_case_insensitive(self):
        assert dataset_info(" DBLP ").name == "dblp"

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            dataset_info("oracle-db")

    def test_load_with_explicit_size(self):
        table = load_dataset("acm", 150, seed=1)
        assert len(table) == 150

    def test_load_default_size(self):
        table = load_dataset("ebay", seed=1)
        assert len(table) == dataset_info("ebay").default_records

    def test_loaded_schema_matches_registry(self):
        for name in dataset_names():
            table = load_dataset(name, 60, seed=0)
            assert set(table.schema.queriable) == set(
                dataset_info(name).queriable_attributes
            )
