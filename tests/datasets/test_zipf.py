"""Unit and property tests for Zipf samplers."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DatasetError
from repro.datasets import ZipfSampler, choose_zipf, pareto_int


class TestValidation:
    def test_bad_n(self):
        with pytest.raises(DatasetError):
            ZipfSampler(0)

    def test_bad_exponent(self):
        with pytest.raises(DatasetError):
            ZipfSampler(5, exponent=-0.5)


class TestSampling:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(10, 1.0)
        rng = random.Random(0)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(500))

    def test_head_heavier_than_tail(self):
        sampler = ZipfSampler(50, 1.2)
        rng = random.Random(1)
        counts = Counter(sampler.sample_many(rng, 5000))
        assert counts[0] > counts.get(49, 0)
        assert counts[0] > 5000 / 50  # above the uniform share

    def test_uniform_when_exponent_zero(self):
        sampler = ZipfSampler(10, 0.0)
        rng = random.Random(2)
        counts = Counter(sampler.sample_many(rng, 10000))
        for rank in range(10):
            assert counts[rank] == pytest.approx(1000, rel=0.25)

    def test_deterministic_per_seed(self):
        sampler = ZipfSampler(20, 1.0)
        assert sampler.sample_many(random.Random(5), 50) == sampler.sample_many(
            random.Random(5), 50
        )


class TestProbability:
    def test_sums_to_one(self):
        sampler = ZipfSampler(30, 1.1)
        total = sum(sampler.probability(rank) for rank in range(30))
        assert total == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        sampler = ZipfSampler(30, 1.1)
        probabilities = [sampler.probability(rank) for rank in range(30)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_out_of_range(self):
        with pytest.raises(DatasetError):
            ZipfSampler(5).probability(5)

    def test_matches_formula(self):
        sampler = ZipfSampler(4, 1.0)
        h = 1 + 1 / 2 + 1 / 3 + 1 / 4
        assert sampler.probability(0) == pytest.approx(1 / h)
        assert sampler.probability(3) == pytest.approx(1 / (4 * h))


class TestDistinct:
    def test_exact_count(self):
        sampler = ZipfSampler(40, 1.0)
        rng = random.Random(3)
        ranks = sampler.sample_distinct(rng, 10)
        assert len(ranks) == len(set(ranks)) == 10

    def test_full_draw(self):
        sampler = ZipfSampler(8, 1.0)
        ranks = sampler.sample_distinct(random.Random(0), 8)
        assert sorted(ranks) == list(range(8))

    def test_too_many_rejected(self):
        with pytest.raises(DatasetError):
            ZipfSampler(3).sample_distinct(random.Random(0), 4)


class TestHelpers:
    def test_choose_zipf(self):
        items = ["a", "b", "c"]
        sampler = ZipfSampler(3, 1.0)
        assert choose_zipf(items, sampler, random.Random(0)) in items

    def test_choose_zipf_size_mismatch(self):
        with pytest.raises(DatasetError):
            choose_zipf(["a"], ZipfSampler(2), random.Random(0))

    def test_pareto_int_minimum(self):
        rng = random.Random(0)
        assert all(pareto_int(rng, 2, 3.0) >= 2 for _ in range(200))

    def test_pareto_int_degenerate_mean(self):
        assert pareto_int(random.Random(0), 3, 2.0) == 3

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.floats(1.5, 10.0))
    def test_pareto_int_mean_roughly_right(self, minimum, mean):
        if mean <= minimum:
            return
        rng = random.Random(42)
        draws = [pareto_int(rng, minimum, mean) for _ in range(2000)]
        assert sum(draws) / len(draws) == pytest.approx(mean, rel=0.35)
