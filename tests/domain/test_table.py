"""Unit and property tests for domain statistics tables and sorted unions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeValue, DatasetError, RelationalTable, Schema
from repro.domain import DomainStatisticsTable, SortedIdUnion, build_domain_table


def AV(attribute, value):
    return AttributeValue(attribute, value)


schema = Schema.of("a", "b", tags={"multivalued": True})


def sample(rows):
    table = RelationalTable(schema, name="sample")
    table.insert_rows(rows)
    return table


@pytest.fixture
def table():
    return build_domain_table(
        sample(
            [
                {"a": "x", "b": "p"},
                {"a": "x", "b": "q"},
                {"a": "y", "b": "p"},
            ]
        )
    )


class TestBuild:
    def test_counts_and_probabilities(self, table):
        assert table.size == 3
        assert table.count(AV("a", "x")) == 2
        assert table.probability(AV("a", "x")) == pytest.approx(2 / 3)
        assert table.probability(AV("a", "ghost")) == 0.0

    def test_postings_sorted_dense(self, table):
        assert table.postings(AV("a", "x")) == (0, 1)
        assert table.postings(AV("b", "p")) == (0, 2)
        assert table.postings(AV("a", "ghost")) == ()

    def test_values_most_probable_first(self, table):
        values = table.values()
        counts = [table.count(v) for v in values]
        assert counts == sorted(counts, reverse=True)

    def test_attribute_restriction(self):
        table = build_domain_table(
            sample([{"a": "x", "b": "p"}]), attributes=["a"]
        )
        assert AV("a", "x") in table
        assert AV("b", "p") not in table
        assert table.attributes == frozenset({"a"})

    def test_attribute_map_renames(self):
        table = build_domain_table(
            sample([{"a": "x"}]), attribute_map={"a": "alias"}
        )
        assert AV("alias", "x") in table
        assert AV("a", "x") not in table

    def test_min_count_filters(self):
        table = build_domain_table(
            sample([{"a": "x"}, {"a": "x"}, {"a": "y"}]), min_count=2
        )
        assert AV("a", "x") in table
        assert AV("a", "y") not in table

    def test_multivalued_counts_record_once(self):
        table = build_domain_table(sample([{"tags": ["t", "t", "u"]}]))
        assert table.count(AV("tags", "t")) == 1

    def test_bad_min_count(self):
        with pytest.raises(DatasetError):
            build_domain_table(sample([{"a": "x"}]), min_count=0)

    def test_empty_sample_rejected(self):
        with pytest.raises(DatasetError):
            DomainStatisticsTable({}, size=0)

    def test_values_of_attribute(self, table):
        values = table.values_of_attribute("a")
        assert all(v.attribute == "a" for v in values)
        assert len(values) == 2


class TestSortedIdUnion:
    def test_union_and_fraction(self):
        union = SortedIdUnion(universe_size=10)
        assert union.union([1, 3, 5]) == 3
        assert union.union([3, 4]) == 1
        assert union.cardinality == 4
        assert union.fraction == pytest.approx(0.4)

    def test_contains(self):
        union = SortedIdUnion(10)
        union.union([2, 7])
        assert 2 in union and 7 in union
        assert 3 not in union

    def test_empty_union(self):
        union = SortedIdUnion(5)
        assert union.union([]) == 0
        assert union.fraction == 0.0

    def test_bad_universe(self):
        with pytest.raises(DatasetError):
            SortedIdUnion(0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 40), max_size=15).map(
                lambda xs: sorted(set(xs))
            ),
            max_size=8,
        )
    )
    def test_property_matches_set_union(self, posting_lists):
        union = SortedIdUnion(41)
        reference: set = set()
        for postings in posting_lists:
            added = union.union(postings)
            new_reference = reference | set(postings)
            assert added == len(new_reference) - len(reference)
            reference = new_reference
            assert union.cardinality == len(reference)
        assert union.fraction == pytest.approx(len(reference) / 41)
        for record_id in range(41):
            assert (record_id in union) == (record_id in reference)
