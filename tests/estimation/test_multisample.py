"""Unit and property tests for the multi-sample size estimators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EstimationError
from repro.estimation import (
    all_estimates,
    capture_frequencies,
    chao1,
    jackknife1,
    schnabel,
)


class TestCaptureFrequencies:
    def test_counts(self):
        samples = [frozenset({1, 2, 3}), frozenset({2, 3}), frozenset({3})]
        frequencies = capture_frequencies(samples)
        # 1 seen once, 2 seen twice, 3 seen thrice.
        assert frequencies == {1: 1, 2: 1, 3: 1}

    def test_sum_equals_union(self):
        samples = [frozenset(range(10)), frozenset(range(5, 15))]
        frequencies = capture_frequencies(samples)
        assert sum(frequencies.values()) == 15


class TestSchnabel:
    def test_two_sample_reduces_to_lincoln_petersen(self):
        a = frozenset(range(0, 50))
        b = frozenset(range(40, 90))
        # Schnabel with 2 samples: C2*M2/R2 = 50*50/10.
        assert schnabel([a, b]) == pytest.approx(250.0)

    def test_no_recaptures_rejected(self):
        with pytest.raises(EstimationError):
            schnabel([frozenset({1}), frozenset({2})])

    def test_needs_two_samples(self):
        with pytest.raises(EstimationError):
            schnabel([frozenset({1})])

    def test_all_empty_rejected(self):
        with pytest.raises(EstimationError):
            schnabel([frozenset(), frozenset()])


class TestChao1:
    def test_no_singletons_estimates_observed(self):
        samples = [frozenset({1, 2}), frozenset({1, 2})]
        assert chao1(samples) == pytest.approx(2.0)

    def test_singletons_push_estimate_up(self):
        base = [frozenset({1, 2}), frozenset({1, 2})]
        with_singletons = [frozenset({1, 2, 3}), frozenset({1, 2, 4})]
        assert chao1(with_singletons) > chao1(base)

    def test_formula(self):
        # f1 = 2 (records 3, 4), f2 = 2 (records 1, 2), observed 4.
        samples = [frozenset({1, 2, 3}), frozenset({1, 2, 4})]
        assert chao1(samples) == pytest.approx(4 + 4 / 4)


class TestJackknife:
    def test_formula(self):
        samples = [frozenset({1, 2, 3}), frozenset({1, 2, 4})]
        # observed 4, f1 = 2, n = 2 -> 4 + 2*(1/2) = 5.
        assert jackknife1(samples) == pytest.approx(5.0)

    def test_at_least_observed(self):
        samples = [frozenset(range(5)), frozenset(range(3, 8))]
        observed = len(frozenset(range(8)))
        assert jackknife1(samples) >= observed


class TestAllEstimates:
    def test_returns_computable_subset(self):
        samples = [frozenset({1}), frozenset({2})]  # no recaptures
        estimates = all_estimates(samples)
        assert "schnabel" not in estimates
        assert "chao1" in estimates and "jackknife1" in estimates

    def test_full_house(self):
        samples = [frozenset(range(0, 40)), frozenset(range(30, 70))]
        estimates = all_estimates(samples)
        assert set(estimates) == {"schnabel", "chao1", "jackknife1"}


@settings(max_examples=20, deadline=None)
@given(
    universe=st.integers(400, 1500),
    seed=st.integers(0, 500),
)
def test_property_uniform_samples_land_near_truth(universe, seed):
    rng = random.Random(seed)
    samples = [frozenset(rng.sample(range(universe), 150)) for _ in range(6)]
    estimates = all_estimates(samples)
    assert estimates, "all estimators failed on dense samples"
    for name, estimate in estimates.items():
        if name == "schnabel":
            assert 0.5 * universe <= estimate <= 2.0 * universe, name
        else:
            # Richness estimators lower-bound the universe: above the
            # observed count, not above the truth.
            observed = len(frozenset().union(*samples))
            assert observed <= estimate <= 2.0 * universe, name
