"""Unit and property tests for capture-recapture size estimation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EstimationError
from repro.estimation import capture_recapture, pair_estimate, pairwise_estimates


class TestCaptureRecapture:
    def test_lincoln_petersen(self):
        # |A|=50, |B|=40, overlap 10 -> N̂ = 200.
        assert capture_recapture(50, 40, 10) == pytest.approx(200.0)

    def test_full_overlap_estimates_sample_size(self):
        assert capture_recapture(30, 30, 30) == pytest.approx(30.0)

    def test_zero_overlap_rejected(self):
        with pytest.raises(EstimationError):
            capture_recapture(50, 40, 0)

    def test_inconsistent_overlap_rejected(self):
        with pytest.raises(EstimationError):
            capture_recapture(5, 4, 6)

    def test_negative_sizes_rejected(self):
        with pytest.raises(EstimationError):
            capture_recapture(-1, 4, 1)


class TestPairEstimate:
    def test_from_sets(self):
        a = frozenset(range(0, 50))
        b = frozenset(range(40, 90))
        assert pair_estimate(a, b) == pytest.approx(50 * 50 / 10)

    def test_disjoint_rejected(self):
        with pytest.raises(EstimationError):
            pair_estimate(frozenset({1}), frozenset({2}))


class TestPairwise:
    def test_count_is_n_choose_2(self):
        samples = [frozenset(range(i, i + 30)) for i in range(0, 12, 2)]
        estimates = pairwise_estimates(samples)
        assert len(estimates) == 6 * 5 // 2

    def test_skips_disjoint_pairs(self):
        samples = [
            frozenset(range(0, 30)),
            frozenset(range(10, 40)),
            frozenset(range(1000, 1010)),
        ]
        estimates = pairwise_estimates(samples)
        assert len(estimates) == 1

    def test_needs_two_samples(self):
        with pytest.raises(EstimationError):
            pairwise_estimates([frozenset({1})])

    def test_all_disjoint_rejected(self):
        with pytest.raises(EstimationError):
            pairwise_estimates([frozenset({1}), frozenset({2}), frozenset({3})])


@settings(max_examples=25, deadline=None)
@given(
    universe=st.integers(min_value=200, max_value=2000),
    sample_size=st.integers(min_value=80, max_value=150),
    seed=st.integers(0, 1000),
)
def test_property_uniform_samples_recover_universe(universe, sample_size, seed):
    """With genuinely uniform samples the estimator is nearly unbiased."""
    rng = random.Random(seed)
    samples = [
        frozenset(rng.sample(range(universe), min(sample_size, universe)))
        for _ in range(6)
    ]
    try:
        estimates = pairwise_estimates(samples)
    except EstimationError:
        return  # tiny overlaps can all vanish; nothing to check
    mean = sum(estimates) / len(estimates)
    assert 0.4 * universe <= mean <= 2.5 * universe
