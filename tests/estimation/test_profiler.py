"""Tests for query-probe source profiling."""

import random

import pytest

from repro.core import AttributeValue, EstimationError
from repro.estimation import fit_zipf_exponent, profile_source
from repro.server import QueryInterface, SimulatedWebDatabase


class TestFitZipf:
    def test_exact_power_law(self):
        counts = [int(1000 * rank**-1.2) for rank in range(1, 12)]
        exponent = fit_zipf_exponent(counts)
        assert exponent == pytest.approx(1.2, abs=0.15)

    def test_too_few_counts(self):
        assert fit_zipf_exponent([10, 5]) is None

    def test_zeros_ignored(self):
        assert fit_zipf_exponent([0, 0, 0]) is None


class TestProfileSource:
    def probes_for(self, table, attribute, extra_misses=5):
        values = table.distinct_values(attribute)[:20]
        misses = [
            AttributeValue(attribute, f"no-such-value-{i}")
            for i in range(extra_misses)
        ]
        return values + misses

    def test_profile_counts(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        probes = self.probes_for(books, "publisher", extra_misses=2)
        report = profile_source(server, probes, max_probes=10, rng=random.Random(1))
        assert report.probes == min(10, len(probes))
        assert 0 < report.hit_rate <= 1
        assert report.rounds_spent == report.probes  # one page each
        assert report.max_matches <= len(books)

    def test_hit_rate_reflects_misses(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        all_misses = [
            AttributeValue("publisher", f"ghost-{i}") for i in range(8)
        ]
        report = profile_source(server, all_misses, rng=random.Random(0))
        assert report.hit_rate == 0.0
        assert report.mean_matches == 0.0
        assert not report.hubby

    def test_hubby_source_detected(self, small_ebay):
        server = SimulatedWebDatabase(small_ebay, page_size=10)
        probes = self.probes_for(small_ebay, "categories", extra_misses=0)
        probes += self.probes_for(small_ebay, "seller", extra_misses=0)
        report = profile_source(
            server, probes, max_probes=30, rng=random.Random(3)
        )
        assert report.hit_rate == 1.0
        assert report.max_matches > report.median_matches

    def test_inexpressible_probes_skipped_free(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        probes = [AttributeValue("price", "10")]  # not queriable
        with pytest.raises(EstimationError):
            profile_source(server, probes)
        assert server.rounds == 0

    def test_keyword_fallback(self, books):
        server = SimulatedWebDatabase(
            books, page_size=2, interface=QueryInterface.keyword_only("books")
        )
        probes = [AttributeValue("publisher", "orbit")]
        report = profile_source(server, probes)
        assert report.hits == 1

    def test_empty_probe_list_rejected(self, books):
        server = SimulatedWebDatabase(books)
        with pytest.raises(EstimationError):
            profile_source(server, [])

    def test_render(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        report = profile_source(
            server, self.probes_for(books, "publisher"), rng=random.Random(0)
        )
        text = report.render()
        assert "hit rate" in text
        assert "Source profile" in text

    def test_pages_per_value_accounts_misses(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        probes = [
            AttributeValue("publisher", "orbit"),   # 4 matches -> 2 pages
            AttributeValue("publisher", "ghost"),   # miss -> 1 page
        ]
        report = profile_source(server, probes, rng=random.Random(0))
        assert report.estimated_pages_per_value() == pytest.approx(1.5)
