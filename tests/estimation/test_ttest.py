"""Unit tests for t-based confidence statements."""

import math

import pytest

from repro.core import EstimationError
from repro.estimation import t_confidence_interval, upper_confidence_bound


class TestInterval:
    def test_contains_mean(self):
        interval = t_confidence_interval([10.0, 12.0, 11.0, 13.0])
        assert interval.lower < interval.mean < interval.upper
        assert interval.mean == pytest.approx(11.5)
        assert interval.n == 4

    def test_zero_variance_degenerate(self):
        interval = t_confidence_interval([5.0, 5.0, 5.0])
        assert interval.lower == interval.upper == interval.mean == 5.0

    def test_higher_confidence_wider(self):
        values = [10.0, 14.0, 12.0, 9.0, 15.0]
        narrow = t_confidence_interval(values, confidence=0.8)
        wide = t_confidence_interval(values, confidence=0.99)
        assert wide.upper - wide.lower > narrow.upper - narrow.lower

    def test_known_critical_value(self):
        # n=15 (like the paper's 15 estimates), 90% two-sided:
        # t(0.95, df=14) = 1.7613.
        values = list(range(15))
        interval = t_confidence_interval([float(v) for v in values], 0.9)
        mean = 7.0
        stdev = math.sqrt(sum((v - mean) ** 2 for v in values) / 14)
        margin = 1.7613 * stdev / math.sqrt(15)
        assert interval.upper == pytest.approx(mean + margin, rel=1e-3)

    def test_needs_two_values(self):
        with pytest.raises(EstimationError):
            t_confidence_interval([1.0])

    def test_rejects_nan(self):
        with pytest.raises(EstimationError):
            t_confidence_interval([1.0, float("nan")])

    def test_rejects_bad_confidence(self):
        with pytest.raises(EstimationError):
            t_confidence_interval([1.0, 2.0], confidence=1.0)


class TestUpperBound:
    def test_above_mean(self):
        values = [10.0, 14.0, 12.0, 9.0, 15.0]
        bound = upper_confidence_bound(values, confidence=0.9)
        assert bound > sum(values) / len(values)

    def test_one_sided_tighter_than_two_sided_upper(self):
        values = [10.0, 14.0, 12.0, 9.0, 15.0]
        one_sided = upper_confidence_bound(values, confidence=0.9)
        two_sided = t_confidence_interval(values, confidence=0.9).upper
        assert one_sided < two_sided

    def test_paper_statement_shape(self):
        """15 estimates around 35k -> a '< 37,000-ish' style bound."""
        import random

        rng = random.Random(0)
        estimates = [35_000 + rng.gauss(0, 1500) for _ in range(15)]
        bound = upper_confidence_bound(estimates, confidence=0.9)
        assert 34_000 < bound < 38_000

    def test_needs_two_values(self):
        with pytest.raises(EstimationError):
            upper_confidence_bound([42.0])
