"""Shape tests for the figure drivers at reduced scale.

Each test runs the real experiment driver with small parameters and
asserts the qualitative result the paper reports — the same assertions
the benchmarks make at larger scale, kept here so a regression is
caught by the fast suite.
"""

import pytest

from repro.experiments import (
    build_amazon_setup,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_size_estimation,
)


@pytest.fixture(scope="module")
def amazon_setup():
    return build_amazon_setup(n_movies=1800, seed=4)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2(n_records=1200, seed=0)

    def test_three_panels(self, result):
        assert {panel.dataset for panel in result.panels} == {
            "dblp",
            "imdb",
            "acm",
        }

    def test_power_law_shape(self, result):
        for panel in result.panels:
            assert panel.fit.slope < -0.8, panel.dataset
            assert panel.fit.r_squared > 0.5, panel.dataset

    def test_hubs_exist(self, result):
        for panel in result.panels:
            assert panel.hub_share_top1pct > 0.05, panel.dataset

    def test_points_exported(self, result):
        x, y = result.panel("dblp").points
        assert len(x) == len(y) > 5

    def test_render(self, result):
        assert "Figure 2" in result.render()


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3(n_records=1500, n_seeds=2, seed=1, max_level=0.9)

    def test_four_panels(self, result):
        assert len(result.panels) == 4

    def test_greedy_wins_at_high_coverage(self, result):
        """GL cheapest (or tied) among all methods at 90% on every panel."""
        for panel in result.panels:
            greedy = panel.cost("greedy-link", 0.9)
            assert greedy is not None
            for policy in ("dfs", "random"):
                other = panel.cost(policy, 0.9)
                assert other is None or greedy <= other * 1.1, (
                    panel.dataset,
                    policy,
                )

    def test_costs_monotone_in_coverage(self, result):
        for panel in result.panels:
            for policy, series in panel.series.items():
                concrete = [cost for cost in series if cost is not None]
                assert concrete == sorted(concrete), (panel.dataset, policy)

    def test_low_marginal_benefit(self, result):
        """Cost per coverage point steepens past 70% (the paper's knee)."""
        for panel in result.panels:
            series = panel.series["greedy-link"]
            early = series[1] - series[0]  # 10% -> 30%
            late = series[4] - series[3]   # 70% -> 90%
            assert late > early, panel.dataset

    def test_render(self, result):
        text = result.render()
        assert text.count("Figure 3") == 4


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(n_records=2500, n_seeds=2, seed=0)

    def test_mmmi_saves_rounds(self, result):
        assert result.rounds_saved > 0

    def test_both_reach_target(self, result):
        assert result.greedy.mean_final_coverage >= result.target_coverage - 0.01
        assert result.hybrid.mean_final_coverage >= result.target_coverage - 0.01

    def test_render(self, result):
        assert "rounds saved" in result.render()


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, amazon_setup):
        return run_figure5(amazon_setup, n_seeds=2, rng_seed=0)

    def test_dm_beats_gl_final(self, result):
        assert result.final("dm1") > result.final("greedy-link")

    def test_dm1_at_least_dm2(self, result):
        assert result.final("dm1") >= result.final("dm2") - 0.02

    def test_gl_plateaus_dm_climbs(self, result):
        half = len(result.checkpoints) // 2
        gl_late_gain = result.series["greedy-link"][-1] - result.series["greedy-link"][half]
        dm_late_gain = result.series["dm1"][-1] - result.series["dm1"][half]
        assert dm_late_gain > gl_late_gain

    def test_coverage_monotone(self, result):
        for series in result.series.values():
            assert series == sorted(series)

    def test_render(self, result):
        assert "Figure 5" in result.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, amazon_setup):
        return run_figure6(amazon_setup, limits=(10, 50), n_seeds=1, rng_seed=0)

    def test_tighter_limits_hurt(self, result):
        native = max(result.limits)
        for method in ("greedy-link", "dm1"):
            assert result.coverage[(method, 10)] <= result.coverage[(method, 50)]
            assert (
                result.coverage[(method, 50)]
                <= result.coverage[(method, native)] + 0.02
            )

    def test_limit_10_degrades_more(self, result):
        for method in ("greedy-link", "dm1"):
            assert result.degradation(method, 10) >= result.degradation(method, 50)

    def test_dm_stays_ahead(self, result):
        for limit in result.limits:
            assert (
                result.coverage[("dm1", limit)]
                >= result.coverage[("greedy-link", limit)] - 0.02
            )

    def test_render(self, result):
        assert "Figure 6" in result.render()


class TestSizeEstimation:
    @pytest.fixture(scope="class")
    def result(self, amazon_setup):
        return run_size_estimation(amazon_setup, rng_seed=0)

    def test_fifteen_estimates(self, result):
        assert len(result.estimates) == 15

    def test_estimate_right_order_of_magnitude(self, result):
        assert 0.5 * result.true_size <= result.interval.mean <= 1.5 * result.true_size

    def test_bound_above_mean(self, result):
        assert result.upper_bound >= result.interval.mean

    def test_union_below_truth(self, result):
        assert result.union_size <= result.true_size

    def test_render(self, result):
        assert "overlap" in result.render()


class TestCharts:
    def test_figure3_panel_chart(self):
        result = run_figure3(n_records=800, n_seeds=1, seed=2, datasets=("ebay",))
        chart = result.panels[0].chart(width=40, height=8)
        assert "legend" in chart
        assert "greedy-link" in chart

    def test_figure5_chart(self, amazon_setup):
        result = run_figure5(amazon_setup, n_seeds=1, rng_seed=1)
        chart = result.chart(width=40, height=8)
        assert "Figure 5" in chart
        assert "dm1" in chart


class TestKeywordInterface:
    def test_fading_schema_adds_reach(self, amazon_setup):
        from repro.experiments import run_keyword_interface

        result = run_keyword_interface(amazon_setup, rng_seed=0)
        assert result.coverage("keyword box only") > result.coverage(
            "structured (title/people)"
        )
        assert "Fading schema" in result.render()
