"""Unit tests for the shared experiment harness."""

import random

import pytest

from repro.experiments import run_policy, run_policy_suite, sample_seed_values
from repro.policies import BreadthFirstSelector, GreedyLinkSelector


class TestSampleSeeds:
    def test_returns_queriable_values(self, books):
        seeds = sample_seed_values(books, 3, random.Random(0))
        assert len(seeds) == 3
        assert all(seed.attribute in books.schema.queriable for seed in seeds)

    def test_min_frequency_respected(self, books):
        seeds = sample_seed_values(books, 2, random.Random(0), min_frequency=3)
        assert all(books.frequency(seed) >= 3 for seed in seeds)

    def test_distinct(self, small_ebay):
        seeds = sample_seed_values(small_ebay, 6, random.Random(1))
        assert len(set(seeds)) == 6

    def test_deterministic(self, small_ebay):
        a = sample_seed_values(small_ebay, 4, random.Random(9))
        b = sample_seed_values(small_ebay, 4, random.Random(9))
        assert a == b


class TestRunPolicy:
    def test_aggregates_over_seed_sets(self, books):
        seeds = [
            [("publisher", "orbit")],
            [("publisher", "mitp")],
        ]
        run = run_policy(books, BreadthFirstSelector, seeds, page_size=2)
        assert len(run.results) == 2
        assert run.policy == "bfs"
        assert run.mean_final_coverage > 0

    def test_mean_cost_none_when_unreached(self, books):
        # Island seed can never reach 50% coverage.
        run = run_policy(
            books, BreadthFirstSelector, [[("publisher", "lonepress")]], page_size=2
        )
        [cost] = run.mean_cost_at([0.5], len(books))
        assert cost is None

    def test_mean_coverage_at_checkpoints(self, books):
        run = run_policy(
            books, BreadthFirstSelector, [[("publisher", "orbit")]], page_size=2
        )
        coverages = run.mean_coverage_at([1, 10_000], len(books))
        assert coverages[0] <= coverages[1]
        assert coverages[1] == pytest.approx(8 / 9)


class TestRunSuite:
    def test_paired_seeds_across_policies(self, small_ebay):
        runs = run_policy_suite(
            small_ebay,
            {"bfs": BreadthFirstSelector, "gl": GreedyLinkSelector},
            n_seeds=2,
            rng_seed=4,
            target_coverage=0.5,
        )
        assert set(runs) == {"bfs", "gl"}
        assert all(len(run.results) == 2 for run in runs.values())
        # Paired comparison: both policies crawl to the same target.
        for run in runs.values():
            assert all(r.coverage >= 0.5 for r in run.results)
