"""Tests for the deterministic parallel experiment executor.

The contract under test is the strongest one :mod:`repro.parallel`
makes: a parallel run is *bit-identical* to the sequential one — same
result order, same crawl histories, same coverage curves — because
every task derives its engine seed as ``rng_seed + seed_index`` and
results merge in fixed task order.  The equality tests force real
multi-process pools (explicit ``workers=2``), which ``resolve_workers``
honours even on a single-CPU machine.
"""

from __future__ import annotations

import random

import pytest

from repro.domain import build_domain_table
from repro.experiments.harness import (
    group_policy_runs,
    run_policy,
    run_policy_suite,
    sample_seed_values,
)
from repro.parallel import (
    CrawlGrid,
    CrawlTask,
    available_workers,
    parallel_map,
    parse_workers,
    resolve_workers,
    run_crawl_grid,
)
from repro.policies import (
    AdaptiveAttributeSelector,
    DomainKnowledgeSelector,
    GreedyLinkSelector,
    GreedyMmmiSelector,
)
from repro.runtime.events import EventBus, RingBufferSink
from repro.server.flaky import FlakyServer
from repro.server.webdb import SimulatedWebDatabase


def _double(payload, item):
    return (payload or 0) + item * 2


class TestWorkerResolution:
    def test_parse_auto(self):
        assert parse_workers("auto") is None
        assert parse_workers(None) is None
        assert parse_workers("") is None

    def test_parse_count(self):
        assert parse_workers("3") == 3
        assert parse_workers(2) == 2

    def test_parse_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parse_workers("0")
        with pytest.raises(ValueError):
            parse_workers(-2)

    def test_auto_uses_available_cpus(self):
        assert resolve_workers(None) == available_workers()

    def test_explicit_count_honoured_beyond_cpus(self):
        # Tests force multi-process runs on small machines this way.
        assert resolve_workers(available_workers() + 7) == available_workers() + 7

    def test_never_more_workers_than_tasks(self):
        assert resolve_workers(8, n_tasks=3) == 3
        assert resolve_workers(8, n_tasks=0) == 1


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(_double, [3, 1, 2], payload=1, workers=1) == [7, 3, 5]

    def test_results_in_item_order(self):
        expected = [i * 2 for i in range(12)]
        assert parallel_map(_double, range(12), workers=2) == expected

    def test_parallel_matches_sequential(self):
        items = list(range(10))
        sequential = parallel_map(_double, items, payload=5, workers=1)
        parallel = parallel_map(_double, items, payload=5, workers=3)
        assert parallel == sequential

    def test_single_item_runs_inline(self):
        assert parallel_map(_double, [4], workers=4) == [8]


def _grid_for(table, policies, seed_sets, rng_seed=0, **crawl_kwargs):
    tasks = tuple(
        CrawlTask(label=label, seed_index=index, seeds=tuple(seeds))
        for label in policies
        for index, seeds in enumerate(seed_sets)
    )
    return CrawlGrid(
        make_server=lambda task: SimulatedWebDatabase(table, page_size=5),
        make_selector=lambda task: policies[task.label](),
        tasks=tasks,
        rng_seed=rng_seed,
        crawl_kwargs=crawl_kwargs,
    )


class TestDeterministicFanOut:
    """Parallel vs sequential bit-identity, per policy family."""

    @pytest.fixture(scope="class")
    def seed_sets(self, small_ebay):
        rng = random.Random(7)
        return [sample_seed_values(small_ebay, 1, rng) for _ in range(3)]

    @pytest.mark.parametrize(
        "factory",
        [
            GreedyLinkSelector,
            lambda: GreedyMmmiSelector(switch_coverage=None),
            AdaptiveAttributeSelector,
        ],
        ids=["greedy-link", "mmmi", "adaptive"],
    )
    def test_policy_bit_identical(self, small_ebay, seed_sets, factory):
        kwargs = dict(target_coverage=0.4, page_size=5, rng_seed=7)
        sequential = run_policy(small_ebay, factory, seed_sets, workers=1, **kwargs)
        parallel = run_policy(small_ebay, factory, seed_sets, workers=2, **kwargs)
        assert parallel == sequential
        for seq, par in zip(sequential.results, parallel.results):
            assert par.history == seq.history
            assert par.coverage == seq.coverage
            assert par.queries_issued == seq.queries_issued

    def test_domain_policy_bit_identical(self, small_ebay, seed_sets):
        domain_table = build_domain_table(small_ebay)
        factory = lambda: DomainKnowledgeSelector(domain_table)
        kwargs = dict(max_rounds=120, page_size=5, rng_seed=7)
        sequential = run_policy(small_ebay, factory, seed_sets, workers=1, **kwargs)
        parallel = run_policy(small_ebay, factory, seed_sets, workers=2, **kwargs)
        assert parallel == sequential

    def test_suite_bit_identical(self, small_ebay):
        policies = {
            "greedy-link": GreedyLinkSelector,
            "mmmi": lambda: GreedyMmmiSelector(switch_coverage=None),
        }
        kwargs = dict(n_seeds=2, rng_seed=3, target_coverage=0.4)
        sequential = run_policy_suite(small_ebay, policies, workers=1, **kwargs)
        parallel = run_policy_suite(small_ebay, policies, workers=2, **kwargs)
        assert parallel == sequential

    def test_flaky_retry_grid_bit_identical(self, small_ebay, seed_sets):
        """Retries inside workers replay the exact sequential streams."""
        grid = CrawlGrid(
            make_server=lambda task: FlakyServer(
                SimulatedWebDatabase(small_ebay, page_size=5),
                failure_rate=0.2,
                seed=100 + task.seed_index,
            ),
            make_selector=lambda task: GreedyLinkSelector(),
            tasks=tuple(
                CrawlTask(label="gl", seed_index=index, seeds=tuple(seeds))
                for index, seeds in enumerate(seed_sets)
            ),
            rng_seed=7,
            crawl_kwargs={"target_coverage": 0.3},
            engine_kwargs={"max_retries": 4},
        )
        sequential = run_crawl_grid(grid, workers=1)
        parallel = run_crawl_grid(grid, workers=2)
        assert parallel.results == sequential.results


class TestRunCrawlGrid:
    def test_results_in_task_order(self, small_ebay):
        seed_sets = [
            sample_seed_values(small_ebay, 1, random.Random(5)) for _ in range(2)
        ]
        policies = {"a": GreedyLinkSelector, "b": GreedyLinkSelector}
        grid = _grid_for(small_ebay, policies, seed_sets, target_coverage=0.3)
        outcome = run_crawl_grid(grid, workers=1)
        assert [t.label for t in outcome.timings] == ["a", "a", "b", "b"]
        assert [t.seed_index for t in outcome.timings] == [0, 1, 0, 1]
        assert set(outcome.by_label()) == {"a", "b"}

    def test_emits_timing_events(self, small_ebay):
        seed_sets = [sample_seed_values(small_ebay, 1, random.Random(5))]
        grid = _grid_for(
            small_ebay, {"gl": GreedyLinkSelector}, seed_sets, target_coverage=0.3
        )
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        outcome = run_crawl_grid(grid, workers=1, bus=bus)
        tasks = sink.of_kind("task-completed")
        [suite] = sink.of_kind("suite-completed")
        assert len(tasks) == len(grid.tasks)
        assert tasks[0].label == "gl"
        assert tasks[0].rounds == outcome.results[0].communication_rounds
        assert suite.tasks == len(grid.tasks)
        assert suite.workers == 1
        assert suite.wall_seconds >= 0.0

    def test_silent_bus_costs_nothing(self, small_ebay):
        seed_sets = [sample_seed_values(small_ebay, 1, random.Random(5))]
        grid = _grid_for(
            small_ebay, {"gl": GreedyLinkSelector}, seed_sets, target_coverage=0.3
        )
        outcome = run_crawl_grid(grid, workers=1, bus=EventBus())
        assert len(outcome.results) == 1

    def test_group_policy_runs_preserves_seed_order(self, small_ebay):
        seed_sets = [
            sample_seed_values(small_ebay, 1, random.Random(5)) for _ in range(3)
        ]
        grid = _grid_for(
            small_ebay, {"gl": GreedyLinkSelector}, seed_sets, target_coverage=0.3
        )
        outcome = run_crawl_grid(grid, workers=1)
        runs = group_policy_runs(grid.tasks, outcome.results)
        assert list(runs) == ["gl"]
        assert runs["gl"].results == outcome.results
