"""Unit tests for report rendering."""

from repro.experiments import render_series, render_table
from repro.experiments.report import format_cell, percentage


class TestFormatCell:
    def test_none_dash(self):
        assert format_cell(None) == "-"

    def test_int_thousands(self):
        assert format_cell(12345) == "12,345"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_short(self):
        assert format_cell(0.123456) == "0.123"

    def test_large_float(self):
        assert format_cell(12345.6) == "12,346"

    def test_nan_dash(self):
        assert format_cell(float("nan")) == "-"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "long-name" in lines[3]

    def test_title_first_line(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_separator_row(self):
        text = render_table(["a", "b"], [[1, 2]])
        assert "-+-" in text.splitlines()[1]


class TestRenderSeries:
    def test_columns_per_series(self):
        text = render_series("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        header = text.splitlines()[0]
        assert "x" in header and "s1" in header and "s2" in header
        assert "40" in text


def test_percentage():
    assert percentage(0.823) == "82%"
    assert percentage(1.0) == "100%"
