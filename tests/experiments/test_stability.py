"""Tests for the seed-stability experiment driver."""

import pytest

from repro.experiments import run_stability


@pytest.fixture(scope="module")
def result():
    return run_stability(
        dataset="dblp", n_records=1200, n_seeds=4, target_coverage=0.7, seed=1
    )


class TestStability:
    def test_one_cost_per_seed(self, result):
        for spread in result.spreads.values():
            assert len(spread.costs) == 4

    def test_spread_statistics(self, result):
        spread = result.spread("random")
        assert min(spread.costs) <= spread.mean <= max(spread.costs)
        assert spread.stdev >= 0
        assert spread.coefficient_of_variation >= 0

    def test_gl_wins_fraction_in_unit_interval(self, result):
        assert 0.0 <= result.gl_wins_fraction <= 1.0

    def test_gl_mean_beats_random(self, result):
        assert result.spread("greedy-link").mean <= result.spread("random").mean

    def test_render(self, result):
        text = result.render()
        assert "Seed stability" in text
        assert "GL cheapest" in text

    def test_custom_policy_set(self):
        from repro.policies import BreadthFirstSelector, DepthFirstSelector

        custom = run_stability(
            dataset="ebay",
            n_records=600,
            n_seeds=2,
            target_coverage=0.6,
            policies={"bfs": BreadthFirstSelector, "dfs": DepthFirstSelector},
        )
        assert set(custom.spreads) == {"bfs", "dfs"}
        assert custom.gl_wins_fraction == 0.0  # GL absent
