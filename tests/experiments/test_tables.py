"""Tests for the Table 1 and Table 2 drivers."""

import pytest

from repro.experiments import run_table1, run_table2


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(sources_per_domain=44, seed=0)

    def test_eleven_domains(self, result):
        assert len(result.rows) == 11

    def test_matches_paper_within_rounding(self, result):
        assert result.max_absolute_error() <= 0.05

    def test_corpus_size_matches_paper(self, result):
        assert sum(row.n_sources for row in result.rows) == pytest.approx(
            480, abs=5
        )

    def test_domain_lookup(self, result):
        row = result.row("car")
        assert row.repository == "uiuc"
        assert row.keyword_fraction < 0.3  # the paper's outlier domain

    def test_render_mentions_domains(self, result):
        text = result.render()
        for domain in ("book", "jewellery", "car"):
            assert domain in text

    def test_unknown_domain(self, result):
        with pytest.raises(KeyError):
            result.row("groceries")


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(n_records=600, seed=0)

    def test_four_datasets(self, result):
        assert {row.dataset for row in result.rows} == {
            "ebay",
            "imdb",
            "dblp",
            "acm",
        }

    def test_imdb_richest_interface(self, result):
        """The paper's IMDB exposes 12 queriable attributes — the most."""
        widths = {
            row.dataset: len(row.queriable_attributes) for row in result.rows
        }
        assert max(widths, key=widths.get) == "imdb"
        assert widths["imdb"] == 12

    def test_values_per_record_ordering_matches_paper(self, result):
        """IMDB has by far the highest distinct-values-per-record ratio."""
        ratios = {row.dataset: row.values_per_record for row in result.rows}
        assert max(ratios, key=ratios.get) == "imdb"

    def test_paper_columns_recorded(self, result):
        row = result.row("dblp")
        assert row.paper_records == 500_000
        assert row.paper_distinct_values == 860_293

    def test_render(self, result):
        text = result.render()
        assert "Table 2" in text
        assert "dblp" in text
