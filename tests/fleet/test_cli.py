"""CLI surface of the fleet lane: ``repro fleet``."""

import io as stdio
import json

from repro.cli import main


def run_cli(*argv):
    out = stdio.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


FAST = (
    "--sources", "12",
    "--budget", "48",
    "--scale", "0.25",
    "--shards", "4",
    "--seed", "1",
)


class TestFleetCommand:
    def test_basic_run_renders_report(self):
        code, text = run_cli("fleet", *FAST)
        assert code == 0
        assert "fleet: 12 sources" in text
        assert "records harvested" in text
        assert "budget=48 rounds" in text

    def test_workers_flag_does_not_change_output(self):
        _code, sequential = run_cli("fleet", *FAST, "--workers", "1")
        _code, parallel = run_cli("fleet", *FAST, "--workers", "4")
        assert sequential == parallel

    def test_scheduler_choices(self):
        for name in ("greedy", "rr", "fair"):
            code, text = run_cli("fleet", *FAST, "--scheduler", name)
            assert code == 0
            assert f"scheduler={name}" in text

    def test_compare_emits_bench_payload(self, tmp_path):
        bench = tmp_path / "BENCH_fleet.json"
        code, text = run_cli(
            "fleet", *FAST, "--compare", "--bench-out", str(bench)
        )
        assert code == 0
        assert "vs rr" in text
        payload = json.loads(bench.read_text())
        assert payload["benchmark"] == "fleet"
        assert "fleet-greedy" in payload["policies"]

    def test_checkpoint_and_resume(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt"
        _code, want = run_cli("fleet", *FAST)

        code, partial = run_cli(
            "fleet", *FAST,
            "--stop-after-rounds", "20",
            "--checkpoint", str(ckpt),
        )
        assert code == 0
        assert "partial (resumable)" in partial

        code, resumed = run_cli("fleet", *FAST, "--resume", str(ckpt))
        assert code == 0
        assert resumed == want

    def test_trace_and_metrics_outputs_validate(self, tmp_path):
        trace = tmp_path / "fleet-trace.jsonl"
        metrics = tmp_path / "fleet-metrics.jsonl"
        code, _text = run_cli(
            "fleet", *FAST,
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        )
        assert code == 0
        from repro.metrics import validate_metrics_jsonl
        from repro.trace import validate_trace_jsonl

        assert validate_trace_jsonl(trace) > 0
        assert validate_metrics_jsonl(metrics) > 0
