"""Fleet driver: sharding, determinism, budget guarantee, resume."""

import dataclasses

import pytest

from repro.core import CrawlError
from repro.fleet import (
    FLEET_SCHEDULERS,
    FleetConfig,
    compare_fleet,
    fleet_bench_payload,
    plan_shards,
    run_fleet,
)
from repro.runtime import CheckpointError

SMOKE = FleetConfig(n_sources=24, budget=96, scale=0.25, shards=4, seed=1)


class TestConfig:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(CrawlError):
            FleetConfig(scheduler="lifo")

    def test_rejects_bad_budget(self):
        with pytest.raises(CrawlError):
            FleetConfig(budget=0)


class TestPlanShards:
    def test_budget_split_is_exact(self):
        plan = plan_shards(FleetConfig(n_sources=37, budget=101, shards=8))
        assert sum(plan.shard_budgets) == 101
        assert len(plan.shard_specs) == 8

    def test_never_more_shards_than_sources(self):
        plan = plan_shards(FleetConfig(n_sources=3, budget=30, shards=8))
        assert len(plan.shard_specs) == 3

    def test_every_source_lands_in_exactly_one_shard(self):
        plan = plan_shards(SMOKE)
        names = [s.name for shard in plan.shard_specs for s in shard]
        assert sorted(names) == sorted(s.name for s in plan.specs)


class TestDeterminism:
    def test_workers_do_not_change_the_answer(self):
        sequential = run_fleet(SMOKE, workers=1)
        parallel = run_fleet(SMOKE, workers=4)
        assert sequential.sources == parallel.sources
        assert sequential.rounds_used == parallel.rounds_used
        assert sequential.shard_rounds == parallel.shard_rounds
        assert sequential.render() == parallel.render()
        assert (
            sequential.metrics.state_dict() == parallel.metrics.state_dict()
        )

    def test_repeat_runs_are_identical(self):
        assert run_fleet(SMOKE).sources == run_fleet(SMOKE).sources


class TestBudgetGuarantee:
    @pytest.mark.parametrize("scheduler", FLEET_SCHEDULERS)
    def test_budget_never_exceeded(self, scheduler):
        config = dataclasses.replace(SMOKE, scheduler=scheduler)
        result = run_fleet(config)
        assert result.rounds_used <= config.budget
        assert result.overshoot == 0

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_budget_holds_across_seeds(self, seed):
        config = dataclasses.replace(SMOKE, seed=seed)
        result = run_fleet(config)
        assert result.rounds_used <= config.budget
        assert result.overshoot == 0


class TestResume:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        want = run_fleet(SMOKE)

        partial = run_fleet(
            SMOKE, stop_after_rounds=40, checkpoint_path=path
        )
        assert not partial.completed
        assert partial.rounds_used < want.rounds_used

        resumed = run_fleet(SMOKE, resume_from=path)
        assert resumed.completed
        assert resumed.sources == want.sources
        assert resumed.rounds_used == want.rounds_used
        assert resumed.shard_rounds == want.shard_rounds

    def test_resume_rejects_config_drift(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        run_fleet(SMOKE, stop_after_rounds=40, checkpoint_path=path)
        drifted = dataclasses.replace(SMOKE, budget=SMOKE.budget + 1)
        with pytest.raises(CheckpointError):
            run_fleet(drifted, resume_from=path)


class TestPoliteness:
    def test_cooldown_engages_when_sources_are_scarce(self):
        # Two sources per shard with a long cooldown: the clock must
        # jump forward (waits) rather than hammer one source.
        config = FleetConfig(
            n_sources=4,
            budget=60,
            scale=0.5,
            shards=2,
            cooldown_rounds=50.0,
            seed=3,
        )
        result = run_fleet(config)
        assert result.cooldown_waits > 0
        assert result.rounds_used <= config.budget

    def test_politeness_can_be_disabled(self):
        config = dataclasses.replace(SMOKE, cooldown_rounds=0.0)
        result = run_fleet(config)
        assert result.cooldown_waits == 0


class TestFairScheduler:
    def test_fair_steps_every_live_source(self):
        config = dataclasses.replace(
            SMOKE, scheduler="fair", budget=SMOKE.budget * 3
        )
        result = run_fleet(config)
        starved = [
            name
            for name, info in result.sources.items()
            if info["rounds"] == 0 and info["stopped_by"] != "frontier-exhausted"
        ]
        assert starved == []


class TestCompareAndBench:
    def test_greedy_beats_rr_at_scarce_budget(self):
        # The regime the paper cares about: budget is scarce relative
        # to fleet content and sources differ in records-per-round.
        config = FleetConfig(
            n_sources=64, budget=64, scale=0.25, shards=8, seed=0
        )
        results = compare_fleet(config, schedulers=("greedy", "rr"))
        assert (
            results["greedy"].total_records > results["rr"].total_records
        )

    def test_bench_payload_shape(self):
        config = dataclasses.replace(SMOKE, n_sources=16, budget=32)
        results = compare_fleet(config)
        payload = fleet_bench_payload(results, scale=0.25)
        assert payload["benchmark"] == "fleet"
        assert set(payload["policies"]) == {
            "fleet-greedy",
            "fleet-rr",
            "fleet-fair",
        }
        assert "speedup" in payload["policies"]["fleet-greedy"]
        assert "speedup" not in payload["policies"]["fleet-rr"]
        greedy = payload["policies"]["fleet-greedy"]
        assert greedy["speedup"] == pytest.approx(
            greedy["records"] / payload["policies"]["fleet-rr"]["records"],
            abs=1e-4,
        )
