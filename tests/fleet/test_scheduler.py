"""Polite fleet schedulers: clock, cooldowns, spans, starvation bound."""

import json

import pytest

from repro.core import CrawlError
from repro.fleet import (
    FleetClock,
    PoliteGreedyFleet,
    build_fleet,
    make_fleet_scheduler,
    plan_fleet,
)
from repro.metrics import MetricsRegistry
from repro.trace import validate_trace_jsonl, write_trace


def small_fleet(n=6, seed=2, max_step_rounds=3):
    specs = plan_fleet(n, seed=seed, scale=0.25)
    engines, seeds = build_fleet(specs, max_step_rounds=max_step_rounds)
    return engines, seeds


class TestFleetClock:
    def test_advances_and_counts_waits(self):
        clock = FleetClock()
        clock.advance(3.0)
        clock.wait(2.0)
        assert clock.now() == 5.0
        assert clock.waits == 1
        assert clock.waited_seconds == 2.0

    def test_cannot_run_backwards(self):
        with pytest.raises(CrawlError):
            FleetClock().advance(-1.0)

    def test_state_round_trips(self):
        clock = FleetClock()
        clock.advance(7.0)
        clock.wait(1.5)
        fresh = FleetClock()
        fresh.load_state(clock.state_dict())
        assert fresh.now() == clock.now()
        assert fresh.waits == clock.waits


class TestPoliteness:
    def test_cooldown_spreads_steps_across_sources(self):
        # burst=1 with a long window: the same source can never be
        # stepped twice while another is admissible.
        engines, seeds = small_fleet(n=4)
        scheduler = make_fleet_scheduler(
            "greedy",
            engines,
            seeds,
            cooldown_rounds=30.0,
            max_step_rounds=3,
        )
        scheduler.run(24)
        stepped = [s for s in scheduler._sources if s.steps > 0]
        assert len(stepped) > 1

    def test_all_cooling_jumps_the_clock(self):
        engines, seeds = small_fleet(n=2)
        clock = FleetClock()
        scheduler = make_fleet_scheduler(
            "greedy",
            engines,
            seeds,
            cooldown_rounds=100.0,
            clock=clock,
            max_step_rounds=3,
        )
        result = scheduler.run(18)
        assert clock.waits > 0
        # Waits cost virtual seconds but no budget rounds.
        assert result.rounds_used <= 18

    def test_no_cooldown_means_plain_warehouse_behaviour(self):
        engines, seeds = small_fleet(n=4)
        scheduler = make_fleet_scheduler(
            "greedy", engines, seeds, max_step_rounds=3
        )
        assert scheduler.limiter is None
        result = scheduler.run(24)
        assert result.rounds_used <= 24
        assert scheduler.clock.waits == 0


class TestFairPolicy:
    def test_fair_requires_fairness_every(self):
        engines, seeds = small_fleet(n=4)
        with pytest.raises(CrawlError):
            make_fleet_scheduler("fair", engines, seeds)

    def test_fair_is_greedy_with_a_guarantee(self):
        engines, seeds = small_fleet(n=4)
        scheduler = make_fleet_scheduler(
            "fair", engines, seeds, fairness_every=12, max_step_rounds=3
        )
        assert isinstance(scheduler, PoliteGreedyFleet)
        scheduler.run(48)
        # Every live source was visited at most fairness_every (+ one
        # step's charge) budget units ago.
        for source in scheduler._sources:
            if source.exhausted:
                continue
            gap = scheduler.rounds_spent - source.last_step_spent
            assert gap <= 12 + 3

    def test_unknown_name_rejected(self):
        engines, seeds = small_fleet(n=2)
        with pytest.raises(CrawlError):
            make_fleet_scheduler("lifo", engines, seeds)


class TestScheduleSpans:
    def test_one_span_per_decision_and_valid_jsonl(self, tmp_path):
        engines, seeds = small_fleet(n=4)
        trace = []
        scheduler = make_fleet_scheduler(
            "greedy",
            engines,
            seeds,
            cooldown_rounds=2.0,
            trace=trace,
            max_step_rounds=3,
        )
        scheduler.run(30)
        steps = sum(s.steps for s in scheduler._sources)
        assert len(trace) == steps
        for line in trace:
            span = json.loads(line)
            assert span["name"] == "schedule"
            assert set(span["attrs"]) == {
                "source",
                "spent",
                "source_steps",
                "clock",
            }
        # The lines must pass the repro-trace/1 validator end to end.
        path = tmp_path / "fleet-trace.jsonl"
        write_trace(path, [("fleet-shard-00", 0, trace)])
        assert validate_trace_jsonl(path) > 0


class TestMetrics:
    def test_per_source_counters_recorded(self):
        engines, seeds = small_fleet(n=4)
        registry = MetricsRegistry()
        scheduler = make_fleet_scheduler(
            "greedy",
            engines,
            seeds,
            metrics=registry,
            max_step_rounds=3,
        )
        scheduler.run(24)
        state = registry.state_dict()
        names = {metric["name"] for metric in state["metrics"]}
        assert {
            "fleet_steps_total",
            "fleet_rounds_total",
            "fleet_records_total",
        } <= names
        steps_metric = next(
            m for m in state["metrics"] if m["name"] == "fleet_steps_total"
        )
        total = sum(value for _key, value in steps_metric["state"]["values"])
        assert total == sum(s.steps for s in scheduler._sources)


class TestCheckpoint:
    def test_polite_state_round_trips(self):
        engines, seeds = small_fleet(n=4)
        scheduler = make_fleet_scheduler(
            "greedy",
            engines,
            seeds,
            cooldown_rounds=2.0,
            max_step_rounds=3,
        )
        scheduler.run(12)
        state = json.loads(json.dumps(scheduler.state_dict()))

        fresh_engines, fresh_seeds = small_fleet(n=4)
        restored = make_fleet_scheduler(
            "greedy",
            fresh_engines,
            fresh_seeds,
            cooldown_rounds=2.0,
            max_step_rounds=3,
            prepare=False,
        )
        restored.load_state(state)
        assert restored.clock.value == scheduler.clock.value
        assert restored._decisions == scheduler._decisions

        # Growing-budget continuity straight through the boundary.
        want_engines, want_seeds = small_fleet(n=4)
        want = make_fleet_scheduler(
            "greedy",
            want_engines,
            want_seeds,
            cooldown_rounds=2.0,
            max_step_rounds=3,
        )
        want_result = want.run(36)
        got_result = restored.run(36)
        assert got_result.results == want_result.results
        assert got_result.rounds_used == want_result.rounds_used
