"""Fleet planning: deterministic, heterogeneous, rebuildable anywhere."""

import pytest

from repro.core import CrawlError
from repro.fleet import (
    FLEET_POLICIES,
    build_source,
    plan_fleet,
    source_seeds,
)


class TestPlanFleet:
    def test_same_inputs_same_plan(self):
        assert plan_fleet(60, seed=3, scale=0.5) == plan_fleet(
            60, seed=3, scale=0.5
        )

    def test_different_seeds_differ(self):
        assert plan_fleet(60, seed=1) != plan_fleet(60, seed=2)

    def test_scale_shrinks_sources_not_the_fleet(self):
        full = plan_fleet(40, seed=0, scale=1.0)
        small = plan_fleet(40, seed=0, scale=0.25)
        assert len(full) == len(small) == 40
        assert sum(s.records for s in small) < sum(s.records for s in full)

    def test_plan_is_heterogeneous(self):
        specs = plan_fleet(32, seed=0)
        assert len({s.dataset for s in specs}) == 4
        assert {s.policy for s in specs} == set(FLEET_POLICIES)
        assert len({s.page_size for s in specs}) > 1
        assert len({s.records for s in specs}) > 1

    def test_names_are_unique_and_sortable(self):
        specs = plan_fleet(120, seed=5)
        names = [s.name for s in specs]
        assert len(set(names)) == 120
        assert names == sorted(names)

    def test_validation(self):
        with pytest.raises(CrawlError):
            plan_fleet(0)
        with pytest.raises(CrawlError):
            plan_fleet(10, scale=0.0)


class TestBuildSource:
    def test_every_policy_builds_and_seeds(self):
        # One spec per policy; each must yield a working engine and at
        # least one usable seed value.
        specs = plan_fleet(16, seed=2, scale=0.25)
        by_policy = {}
        for spec in specs:
            by_policy.setdefault(spec.policy, spec)
        assert set(by_policy) == set(FLEET_POLICIES)
        for spec in by_policy.values():
            engine = build_source(spec, max_step_rounds=3)
            seeds = source_seeds(spec, engine)
            assert len(seeds) == 1

    def test_step_cap_bounds_rounds_per_step(self):
        spec = plan_fleet(4, seed=0, scale=1.0)[0]
        engine = build_source(spec, max_step_rounds=2)
        seeds = source_seeds(spec, engine)
        engine.prepare(seeds)
        before = engine.server.rounds
        engine.step()
        assert engine.server.rounds - before <= 2

    def test_rebuild_is_bit_identical(self):
        spec = plan_fleet(8, seed=9, scale=0.25)[3]
        a = build_source(spec, max_step_rounds=4)
        b = build_source(spec, max_step_rounds=4)
        a.prepare(source_seeds(spec, a))
        b.prepare(source_seeds(spec, b))
        for _ in range(5):
            # step() returns None once the frontier is dry; twins must
            # dry up on the same step.
            if a.step() is None:
                assert b.step() is None
                break
            assert b.step() is not None
        assert a.state_dict() == b.state_dict()
