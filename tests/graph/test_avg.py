"""Unit and property tests for attribute-value graph construction."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeValue, Record
from repro.graph import build_avg, build_avg_from_table, page_cost, record_clique
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestRecordClique:
    def test_pairs_of_three_values(self):
        record = make_record(1, a="x", b="y", c="z")
        edges = record_clique(record)
        assert len(edges) == 3

    def test_single_value_no_edges(self):
        assert record_clique(make_record(1, a="x")) == []


class TestBuildAvg:
    def test_paper_example(self):
        """Figure 1 of the paper: 5 records over attributes a, b, c."""
        records = [
            make_record(0, a="a1", b="b1", c="c1"),
            make_record(1, a="a2", b="b2", c="c1"),
            make_record(2, a="a2", b="b2", c="c2"),
            make_record(3, a="a2", b="b3", c="c2"),
            make_record(4, a="a3", b="b4", c="c2"),
        ]
        graph = build_avg(records)
        # Vertices: a1 a2 a3, b1..b4, c1 c2 = 9 distinct values.
        assert graph.number_of_nodes() == 9
        # Crawling example from the paper: a2 sees c1, b2, c2, b3.
        neighbors = set(graph.neighbors(AV("a", "a2")))
        assert neighbors == {AV("c", "c1"), AV("b", "b2"), AV("c", "c2"), AV("b", "b3")}

    def test_each_record_forms_a_clique(self):
        record = make_record(1, a="x", b="y", c="z", d="w")
        graph = build_avg([record])
        clique_nodes = list(graph.nodes)
        for i, u in enumerate(clique_nodes):
            for v in clique_nodes[i + 1:]:
                assert graph.has_edge(u, v)

    def test_shared_value_bridges_cliques(self):
        records = [make_record(1, a="x", b="y"), make_record(2, a="x", b="z")]
        graph = build_avg(records)
        assert nx.has_path(graph, AV("b", "y"), AV("b", "z"))

    def test_frequency_attribute(self):
        records = [make_record(1, a="x", b="y"), make_record(2, a="x", b="z")]
        graph = build_avg(records)
        assert graph.nodes[AV("a", "x")]["frequency"] == 2
        assert graph.nodes[AV("b", "y")]["frequency"] == 1

    def test_edge_records_count(self):
        records = [
            make_record(1, a="x", b="y"),
            make_record(2, a="x", b="y"),
            make_record(3, a="x", b="z"),
        ]
        graph = build_avg(records)
        assert graph.edges[AV("a", "x"), AV("b", "y")]["records"] == 2
        assert graph.edges[AV("a", "x"), AV("b", "z")]["records"] == 1

    def test_attribute_restriction(self):
        records = [make_record(1, a="x", b="y", c="z")]
        graph = build_avg(records, attributes=["a", "b"])
        assert AV("c", "z") not in graph
        assert graph.number_of_nodes() == 2

    def test_empty_input(self):
        graph = build_avg([])
        assert graph.number_of_nodes() == 0


class TestWeights:
    def test_weights_in_unit_interval(self):
        records = [make_record(i, a=f"v{i % 3}", b=f"w{i}") for i in range(30)]
        graph = build_avg(records, page_size=10)
        for _node, data in graph.nodes(data=True):
            assert 0.0 < data["weight"] <= 1.0

    def test_max_cost_node_has_weight_one(self):
        records = [make_record(i, a="hub", b=f"w{i}") for i in range(25)]
        graph = build_avg(records, page_size=10)
        assert graph.nodes[AV("a", "hub")]["weight"] == 1.0

    def test_page_cost_ceiling(self):
        records = [make_record(i, a="hub", b=f"w{i}") for i in range(25)]
        graph = build_avg(records, page_size=10)
        assert page_cost(graph, AV("a", "hub"), page_size=10) == 3
        assert page_cost(graph, AV("b", "w0"), page_size=10) == 1


class TestBuildFromTable:
    def test_queriable_only_drops_hidden(self, books):
        full = build_avg_from_table(books)
        queriable = build_avg_from_table(books, queriable_only=True)
        assert queriable.number_of_nodes() < full.number_of_nodes()
        assert all(n.attribute != "price" for n in queriable.nodes)

    def test_vertex_count_matches_table(self, books):
        graph = build_avg_from_table(books)
        assert graph.number_of_nodes() == books.num_distinct_values()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a1", "a2", "a3"]),
            st.sampled_from(["b1", "b2", "b3", "b4"]),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_vertices_equal_distinct_values(pairs):
    records = [make_record(i, a=a, b=b) for i, (a, b) in enumerate(pairs)]
    graph = build_avg(records)
    distinct = {pair for record in records for pair in record.attribute_values()}
    assert set(graph.nodes) == distinct


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a1", "a2"]),
            st.sampled_from(["b1", "b2", "b3"]),
            st.sampled_from(["c1", "c2"]),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_edge_iff_coexist(triples):
    records = [make_record(i, a=a, b=b, c=c) for i, (a, b, c) in enumerate(triples)]
    graph = build_avg(records)
    for u in graph.nodes:
        for v in graph.nodes:
            if u >= v:
                continue
            coexist = any(
                record.matches(u.attribute, u.value)
                and record.matches(v.attribute, v.value)
                for record in records
            )
            assert graph.has_edge(u, v) == coexist
