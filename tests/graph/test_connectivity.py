"""Unit tests for AVG connectivity and crawl-reachability analysis."""

import pytest

from repro.core import AttributeValue
from repro.graph import (
    build_avg,
    component_sizes,
    convergence_coverage,
    largest_component_fraction,
    reachable_records,
    reachable_values,
    record_connectivity,
)
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


@pytest.fixture
def split_world():
    """Two components: records 0-2 share values, record 3 is an island."""
    records = [
        make_record(0, a="x", b="p"),
        make_record(1, a="x", b="q"),
        make_record(2, a="y", b="q"),
        make_record(3, a="island", b="alone"),
    ]
    return records, build_avg(records)


class TestComponents:
    def test_sizes_descending(self, split_world):
        records, graph = split_world
        sizes = component_sizes(graph)
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == graph.number_of_nodes()
        assert len(sizes) == 2

    def test_largest_fraction(self, split_world):
        _records, graph = split_world
        # Main component: x, y, p, q (4 of 6 vertices).
        assert largest_component_fraction(graph) == pytest.approx(4 / 6)

    def test_empty_graph(self):
        assert largest_component_fraction(build_avg([])) == 0.0


class TestReachability:
    def test_reachable_values_within_component(self, split_world):
        _records, graph = split_world
        reached = reachable_values(graph, [AV("a", "x")])
        assert reached == {AV("a", "x"), AV("a", "y"), AV("b", "p"), AV("b", "q")}

    def test_unknown_seed_contributes_nothing(self, split_world):
        _records, graph = split_world
        assert reachable_values(graph, [AV("a", "ghost")]) == set()

    def test_multiple_seeds_union(self, split_world):
        _records, graph = split_world
        reached = reachable_values(graph, [AV("a", "x"), AV("a", "island")])
        assert len(reached) == 6

    def test_reachable_records(self, split_world):
        records, graph = split_world
        reached = reachable_records(records, graph, [AV("b", "q")])
        assert {record.record_id for record in reached} == {0, 1, 2}

    def test_convergence_coverage(self, split_world):
        records, graph = split_world
        assert convergence_coverage(records, graph, [AV("a", "x")]) == pytest.approx(
            0.75
        )
        assert convergence_coverage(
            records, graph, [AV("a", "island")]
        ) == pytest.approx(0.25)

    def test_empty_records(self):
        assert convergence_coverage([], build_avg([]), []) == 0.0


class TestRecordConnectivity:
    def test_split_world(self, split_world):
        records, graph = split_world
        assert record_connectivity(records, graph) == pytest.approx(0.75)

    def test_fully_connected(self):
        records = [make_record(i, a="shared", b=f"v{i}") for i in range(5)]
        graph = build_avg(records)
        assert record_connectivity(records, graph) == 1.0

    def test_controlled_datasets_well_connected(self, small_ebay):
        """The paper: 99% of records connected on the controlled servers."""
        from repro.graph import build_avg_from_table

        graph = build_avg_from_table(small_ebay, queriable_only=True)
        assert record_connectivity(list(small_ebay), graph) > 0.99
