"""Unit and property tests for weighted minimum dominating set algorithms."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    dominating_set_lower_bound,
    exact_weighted_dominating_set,
    greedy_record_cover,
    greedy_weighted_dominating_set,
    is_dominating_set,
    total_weight,
)


def path(n):
    return nx.path_graph(n)


class TestIsDominatingSet:
    def test_star_center(self):
        graph = nx.star_graph(5)
        assert is_dominating_set(graph, {0})
        assert not is_dominating_set(graph, {1})

    def test_empty_set_on_nonempty_graph(self):
        assert not is_dominating_set(path(3), set())

    def test_empty_graph(self):
        assert is_dominating_set(nx.Graph(), set())

    def test_all_nodes_always_dominate(self):
        graph = nx.gnm_random_graph(12, 20, seed=3)
        assert is_dominating_set(graph, set(graph.nodes))


class TestGreedy:
    def test_returns_valid_set(self):
        graph = nx.gnm_random_graph(40, 90, seed=1)
        chosen = greedy_weighted_dominating_set(graph, weight=None)
        assert is_dominating_set(graph, chosen)

    def test_star_picks_center_only(self):
        chosen = greedy_weighted_dominating_set(nx.star_graph(10), weight=None)
        assert chosen == {0}

    def test_respects_weights(self):
        # Center is expensive; spokes are cheap: greedy still needs the
        # center (spokes only dominate themselves + center), but weight
        # steering shows up in the path case below.
        graph = nx.Graph()
        graph.add_edge("hub", "a")
        graph.add_edge("hub", "b")
        graph.add_edge("cheap", "a")
        graph.add_edge("cheap", "b")
        nx.set_node_attributes(
            graph, {"hub": 10.0, "cheap": 0.1, "a": 1.0, "b": 1.0}, "weight"
        )
        chosen = greedy_weighted_dominating_set(graph, weight="weight")
        assert is_dominating_set(graph, chosen)
        assert "cheap" in chosen

    def test_isolated_nodes_must_be_chosen(self):
        graph = nx.Graph()
        graph.add_nodes_from([1, 2, 3])
        chosen = greedy_weighted_dominating_set(graph, weight=None)
        assert chosen == {1, 2, 3}

    def test_empty_graph(self):
        assert greedy_weighted_dominating_set(nx.Graph()) == set()

    def test_within_log_factor_of_lower_bound(self):
        import math

        graph = nx.gnm_random_graph(60, 150, seed=7)
        chosen = greedy_weighted_dominating_set(graph, weight=None)
        bound = dominating_set_lower_bound(graph)
        assert len(chosen) <= bound * (math.log(60) + 1) + 1


class TestExact:
    def test_matches_known_optimum_path4(self):
        # Path of 4 nodes: optimal dominating set has size 2.
        chosen = exact_weighted_dominating_set(path(4), weight=None)
        assert is_dominating_set(path(4), chosen)
        assert len(chosen) == 2

    def test_star_optimal_is_one(self):
        chosen = exact_weighted_dominating_set(nx.star_graph(8), weight=None)
        assert len(chosen) == 1

    def test_cycle_six_needs_two(self):
        chosen = exact_weighted_dominating_set(nx.cycle_graph(6), weight=None)
        assert len(chosen) == 2

    def test_weighted_optimum_avoids_heavy_node(self):
        # Triangle with one heavy node: any single node dominates, so the
        # optimum is the lightest one.
        graph = nx.complete_graph(3)
        nx.set_node_attributes(graph, {0: 5.0, 1: 0.2, 2: 1.0}, "weight")
        chosen = exact_weighted_dominating_set(graph, weight="weight")
        assert chosen == {1}

    def test_rejects_large_graphs(self):
        with pytest.raises(ValueError):
            exact_weighted_dominating_set(path(30), max_nodes=24)

    def test_exact_never_worse_than_greedy(self):
        for seed in range(5):
            graph = nx.gnm_random_graph(12, 18, seed=seed)
            exact = exact_weighted_dominating_set(graph, weight=None)
            greedy = greedy_weighted_dominating_set(graph, weight=None)
            assert len(exact) <= len(greedy)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=200))
def test_property_greedy_valid_on_random_graphs(seed):
    graph = nx.gnm_random_graph(20, 35, seed=seed)
    chosen = greedy_weighted_dominating_set(graph, weight=None)
    assert is_dominating_set(graph, chosen)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100))
def test_property_exact_at_most_greedy_and_at_least_bound(seed):
    graph = nx.gnm_random_graph(11, 16, seed=seed)
    exact = exact_weighted_dominating_set(graph, weight=None)
    greedy = greedy_weighted_dominating_set(graph, weight=None)
    assert is_dominating_set(graph, exact)
    assert dominating_set_lower_bound(graph) <= len(exact) <= len(greedy)


class TestRecordCover:
    def test_covers_everything_by_default(self):
        sets = {
            "a": frozenset({1, 2, 3}),
            "b": frozenset({3, 4}),
            "c": frozenset({5}),
        }
        plan = greedy_record_cover(sets)
        covered = set().union(*(sets[v] for v in plan))
        assert covered == {1, 2, 3, 4, 5}

    def test_greedy_order_by_benefit(self):
        sets = {
            "big": frozenset(range(10)),
            "small": frozenset({100}),
        }
        plan = greedy_record_cover(sets)
        assert plan[0] == "big"

    def test_cost_awareness(self):
        # "expensive" covers 10 at cost 10 (rate 1); "cheap" covers 4 at
        # cost 1 (rate 4) — cheap should come first.
        sets = {
            "expensive": frozenset(range(10)),
            "cheap": frozenset({0, 1, 2, 3}),
        }
        plan = greedy_record_cover(sets, costs={"expensive": 10.0, "cheap": 1.0})
        assert plan[0] == "cheap"

    def test_target_stops_early(self):
        sets = {"a": frozenset({1, 2}), "b": frozenset({3, 4}), "c": frozenset({5})}
        plan = greedy_record_cover(sets, target_records=3)
        covered = set().union(*(sets[v] for v in plan))
        assert len(covered) >= 3
        assert len(plan) <= 2

    def test_skips_useless_values(self):
        sets = {"a": frozenset({1, 2}), "dup": frozenset({1, 2})}
        plan = greedy_record_cover(sets)
        assert len(plan) == 1

    def test_empty_input(self):
        assert greedy_record_cover({}) == []


def test_total_weight_unweighted_is_cardinality():
    graph = path(5)
    assert total_weight(graph, [0, 2, 4], weight=None) == 3
