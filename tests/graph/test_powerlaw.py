"""Unit tests for degree-distribution analysis and power-law fitting."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    ccdf,
    degree_histogram,
    degree_sequence,
    fit_power_law,
    fit_power_law_points,
    hub_fraction,
    loglog_points,
)


def zipf_like_graph(n=400, seed=3):
    """A Barabási–Albert graph — a guaranteed power-law-ish testbed."""
    return nx.barabasi_albert_graph(n, 2, seed=seed)


class TestHistogram:
    def test_counts_sum_to_nodes(self):
        graph = zipf_like_graph()
        histogram = degree_histogram(graph)
        assert sum(histogram.values()) == graph.number_of_nodes()

    def test_star_graph(self):
        histogram = degree_histogram(nx.star_graph(5))
        assert histogram == {5: 1, 1: 5}

    def test_degree_sequence_sorted_desc(self):
        sequence = degree_sequence(zipf_like_graph())
        assert sequence == sorted(sequence, reverse=True)


class TestLogLogPoints:
    def test_drops_zero_degrees(self):
        graph = nx.Graph()
        graph.add_nodes_from([1, 2])
        graph.add_edge(3, 4)
        x, y = loglog_points(degree_histogram(graph))
        assert len(x) == 1  # only degree 1 survives

    def test_values_are_logs(self):
        x, y = loglog_points({10: 100})
        assert x[0] == pytest.approx(1.0)
        assert y[0] == pytest.approx(2.0)


class TestFit:
    def test_exact_line_recovered(self):
        # frequency = 1000 * degree^-2 exactly.
        degrees = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        frequencies = 1000.0 * degrees**-2
        fit = fit_power_law_points(np.log10(degrees), np.log10(frequencies))
        assert fit.slope == pytest.approx(-2.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.intercept == pytest.approx(3.0, abs=1e-9)

    def test_ba_graph_heavy_tail(self):
        fit = fit_power_law(zipf_like_graph())
        assert fit.slope < -1.0
        assert fit.r_squared > 0.5

    def test_too_few_degrees_raises(self):
        graph = nx.complete_graph(3)  # all nodes degree 2
        with pytest.raises(ValueError):
            fit_power_law(graph)

    def test_fit_points_requires_two(self):
        with pytest.raises(ValueError):
            fit_power_law_points(np.array([1.0]), np.array([1.0]))

    def test_flat_distribution_r_squared_one_slope_zero(self):
        x = np.log10(np.array([1.0, 2.0, 4.0]))
        y = np.log10(np.array([5.0, 5.0, 5.0]))
        fit = fit_power_law_points(x, y)
        assert fit.slope == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)


class TestCcdf:
    def test_monotone_decreasing(self):
        degrees = degree_sequence(zipf_like_graph())
        values, probabilities = ccdf(degrees)
        assert all(
            probabilities[i] >= probabilities[i + 1]
            for i in range(len(probabilities) - 1)
        )

    def test_starts_at_one(self):
        values, probabilities = ccdf([1, 2, 3])
        assert probabilities[0] == pytest.approx(1.0)

    def test_last_value_fraction(self):
        values, probabilities = ccdf([1, 1, 1, 5])
        assert probabilities[-1] == pytest.approx(0.25)


class TestHubFraction:
    def test_star_hub_owns_half(self):
        # Star with n spokes: center has degree n of total 2n.
        share = hub_fraction(nx.star_graph(99), top_fraction=0.01)
        assert share == pytest.approx(0.5)

    def test_regular_graph_no_hubs(self):
        share = hub_fraction(nx.cycle_graph(100), top_fraction=0.01)
        assert share == pytest.approx(0.01)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            hub_fraction(nx.path_graph(3), top_fraction=0.0)

    def test_empty_graph(self):
        assert hub_fraction(nx.Graph(), 0.5) == 0.0
