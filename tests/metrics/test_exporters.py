"""Exporters: Prometheus text, JSONL snapshots + validator, summary."""

import json

import pytest

from repro.metrics import (
    JSONL_SCHEMA,
    JsonlMetricsWriter,
    MetricsRegistry,
    prometheus_text,
    registry_samples,
    render_metrics_summary,
    validate_metrics_jsonl,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("pages_total", "pages paid", labels=("policy",))
    c.inc(7, policy="bfs")
    c.inc(3, policy="dfs")
    reg.gauge("coverage", "live coverage").set(0.625)
    h = reg.histogram("pages_per_query", "pages", buckets=(1.0, 5.0))
    h.observe(1)
    h.observe(9)
    return reg


class TestPrometheusText:
    def test_format(self, registry):
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# HELP pages_total pages paid" in lines
        assert "# TYPE pages_total counter" in lines
        assert 'pages_total{policy="bfs"} 7' in lines
        assert 'pages_total{policy="dfs"} 3' in lines
        assert "# TYPE coverage gauge" in lines
        assert "coverage 0.625" in lines
        # Histogram: cumulative buckets, +Inf, _sum, _count.
        assert 'pages_per_query_bucket{le="1"} 1' in lines
        assert 'pages_per_query_bucket{le="5"} 1' in lines
        assert 'pages_per_query_bucket{le="+Inf"} 2' in lines
        assert "pages_per_query_sum 10" in lines
        assert "pages_per_query_count 2" in lines
        assert text.endswith("\n")

    def test_integers_render_bare(self, registry):
        assert "7.0" not in prometheus_text(registry)

    def test_deterministic(self, registry):
        assert prometheus_text(registry) == prometheus_text(registry)

    def test_hostile_label_values_are_escaped(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "hits", labels=("policy",))
        counter.inc(1, policy='back\\slash')
        counter.inc(2, policy='quo"te')
        counter.inc(3, policy='new\nline')
        text = prometheus_text(reg)
        assert 'hits_total{policy="back\\\\slash"} 1' in text
        assert 'hits_total{policy="quo\\"te"} 2' in text
        assert 'hits_total{policy="new\\nline"} 3' in text
        # The exposition stays one sample per line: no raw newline leaks.
        for line in text.splitlines():
            assert line.startswith(("#", "hits_total{"))

    def test_hostile_label_values_round_trip(self):
        """Escaped values parse back to the originals."""
        import re

        hostile = ['back\\slash', 'quo"te', 'new\nline', 'all\\"\n']
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "hits", labels=("policy",))
        for index, value in enumerate(hostile):
            counter.inc(index + 1, policy=value)

        def unescape(value):
            out, i = [], 0
            while i < len(value):
                if value[i] == "\\" and i + 1 < len(value):
                    out.append(
                        {"n": "\n", '"': '"', "\\": "\\"}[value[i + 1]]
                    )
                    i += 2
                else:
                    out.append(value[i])
                    i += 1
            return "".join(out)

        parsed = {}
        for line in prometheus_text(reg).splitlines():
            match = re.match(r'hits_total\{policy="(.*)"\} (\d+)', line)
            if match:
                parsed[unescape(match.group(1))] = int(match.group(2))
        assert parsed == {
            value: index + 1 for index, value in enumerate(hostile)
        }


class TestRegistrySamples:
    def test_shapes(self, registry):
        samples = {s["name"]: s for s in registry_samples(registry)}
        assert samples["coverage"]["value"] == 0.625
        hist = samples["pages_per_query"]
        assert hist["count"] == 2
        assert hist["sum"] == 10
        assert hist["buckets"][-1] == ["+Inf", 2]

    def test_json_safe(self, registry):
        json.dumps(registry_samples(registry))  # must not raise


class TestJsonlWriter:
    def test_write_and_validate(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonlMetricsWriter(path) as writer:
            writer.write_snapshot(registry, step=10, label="bfs")
            writer.write_snapshot(registry, step=20, label="bfs")
            assert writer.snapshots_written == 2
        assert validate_metrics_jsonl(path) == 2
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == JSONL_SCHEMA
        assert first["step"] == 10
        assert first["label"] == "bfs"

    def test_append_across_writers(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        for _ in range(2):
            with JsonlMetricsWriter(path) as writer:
                writer.write_snapshot(registry)
        assert validate_metrics_jsonl(path) == 2


class TestValidator:
    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="line 1"):
            validate_metrics_jsonl(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "other/9", "samples": []}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            validate_metrics_jsonl(path)

    def test_rejects_sample_missing_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        line = {"schema": JSONL_SCHEMA, "samples": [{"name": "x"}]}
        path.write_text(json.dumps(line) + "\n")
        with pytest.raises(ValueError, match="missing"):
            validate_metrics_jsonl(path)

    def test_rejects_valueless_counter(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        sample = {"name": "x", "kind": "counter", "labels": {}}
        line = {"schema": JSONL_SCHEMA, "samples": [sample]}
        path.write_text(json.dumps(line) + "\n")
        with pytest.raises(ValueError, match="needs value"):
            validate_metrics_jsonl(path)

    def test_skips_blank_lines(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonlMetricsWriter(path) as writer:
            writer.write_snapshot(registry)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert validate_metrics_jsonl(path) == 1


class TestSummary:
    def test_mentions_every_series(self, registry):
        text = render_metrics_summary(registry)
        assert "pages_total" in text
        assert 'policy="bfs"' in text
        assert "coverage" in text
        assert "n=2" in text

    def test_empty_registry(self):
        assert render_metrics_summary(MetricsRegistry()) == "no metrics recorded"
