"""Telemetry end to end: engines, the durable runtime, the grid runner."""

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.experiments.harness import run_policy_suite, sample_seed_values
from repro.metrics import MetricsRegistry, TelemetrySink, prometheus_text
from repro.policies import BreadthFirstSelector, GreedyLinkSelector
from repro.runtime.crawler import RuntimeCrawler
from repro.runtime.events import EventBus
from repro.server import SimulatedWebDatabase

import random


def seeded_crawl(table, bus=None, seed=7, **crawl_kwargs):
    server = SimulatedWebDatabase(table, page_size=10)
    engine = CrawlerEngine(server, GreedyLinkSelector(), seed=seed, bus=bus)
    seeds = sample_seed_values(table, 1, random.Random(seed), min_frequency=2)
    result = engine.crawl(seeds, **crawl_kwargs)
    return server, result


class TestEngineTelemetry:
    def test_registry_matches_crawl_result(self, small_ebay):
        bus = EventBus()
        sink = bus.attach(TelemetrySink(truth_size=len(small_ebay)))
        server, result = seeded_crawl(small_ebay, bus=bus, max_rounds=80)
        sink.sample_server(server)
        policy = result.policy
        assert sink.queries_issued.value(policy=policy) == result.queries_issued
        assert sink.records_new.value(policy=policy) == result.records_harvested
        assert sink.rounds_gauge.value() == result.communication_rounds
        assert sink.coverage.value() == pytest.approx(result.coverage)
        assert (
            sink.stops.value(policy=policy, stopped_by=result.stopped_by) == 1
        )
        assert sink.pages_per_query.count(policy=policy) == result.queries_issued

    def test_instrumentation_does_not_change_the_crawl(self, small_ebay):
        bus = EventBus()
        bus.attach(TelemetrySink())
        _, instrumented = seeded_crawl(small_ebay, bus=bus, max_rounds=60)
        _, bare = seeded_crawl(small_ebay, bus=None, max_rounds=60)
        assert instrumented.records_harvested == bare.records_harvested
        assert instrumented.communication_rounds == bare.communication_rounds
        assert instrumented.history.final_rounds == bare.history.final_rounds
        assert instrumented.history.final_records == bare.history.final_records


class TestCheckpointContinuity:
    def test_resumed_crawl_reports_continuous_totals(self, small_ebay, tmp_path):
        seed = 11
        server = SimulatedWebDatabase(small_ebay, page_size=10)
        telemetry = TelemetrySink(truth_size=len(small_ebay))
        engine = CrawlerEngine(
            server, BreadthFirstSelector(), seed=seed, bus=EventBus()
        )
        runtime = RuntimeCrawler(
            engine, checkpoint_dir=tmp_path, telemetry=telemetry
        )
        seeds = sample_seed_values(
            small_ebay, 1, random.Random(seed), min_frequency=2
        )
        first = runtime.crawl(seeds, max_rounds=120, stop_after_steps=8)
        runtime.close()
        assert first.stopped_by == "suspended"
        queries_before = telemetry.queries_issued.value(policy=first.policy)
        assert queries_before == 8

        resumed_telemetry = TelemetrySink(truth_size=len(small_ebay))
        resumed = RuntimeCrawler.resume(
            tmp_path,
            SimulatedWebDatabase(small_ebay, page_size=10),
            BreadthFirstSelector(),
            bus=EventBus(),
            telemetry=resumed_telemetry,
        )
        final = resumed.run()
        resumed.close()
        # Continuous totals: the resumed registry starts from the
        # suspension snapshot, not from zero.
        assert (
            resumed_telemetry.queries_issued.value(policy=final.policy)
            == final.queries_issued
        )
        assert (
            resumed_telemetry.records_new.value(policy=final.policy)
            == final.records_harvested
        )
        assert final.queries_issued > queries_before

    def test_checkpoint_without_metrics_still_resumes(self, small_ebay, tmp_path):
        seed = 11
        engine = CrawlerEngine(
            SimulatedWebDatabase(small_ebay, page_size=10),
            BreadthFirstSelector(),
            seed=seed,
        )
        runtime = RuntimeCrawler(engine, checkpoint_dir=tmp_path)
        seeds = sample_seed_values(
            small_ebay, 1, random.Random(seed), min_frequency=2
        )
        runtime.crawl(seeds, max_rounds=60, stop_after_steps=4)
        runtime.close()
        telemetry = TelemetrySink()  # checkpoint carries no metrics
        resumed = RuntimeCrawler.resume(
            tmp_path,
            SimulatedWebDatabase(small_ebay, page_size=10),
            BreadthFirstSelector(),
            telemetry=telemetry,
        )
        result = resumed.run(max_rounds=80)
        resumed.close()
        assert result.communication_rounds <= 80
        # Counters cover only the post-resume run, but exist and move.
        assert telemetry.queries_issued.value(policy=result.policy) > 0


class TestParallelMerge:
    def test_parallel_merge_identical_to_sequential(self, small_ebay):
        policies = {
            "bfs": BreadthFirstSelector,
            "greedy-link": GreedyLinkSelector,
        }

        def run(workers):
            registry = MetricsRegistry()
            runs = run_policy_suite(
                small_ebay,
                policies,
                n_seeds=2,
                rng_seed=5,
                workers=workers,
                metrics=registry,
                max_rounds=40,
            )
            return runs, registry

        runs_seq, reg_seq = run(1)
        runs_par, reg_par = run(3)
        assert reg_seq.state_dict() == reg_par.state_dict()
        assert prometheus_text(reg_seq) == prometheus_text(reg_par)
        for label, run_seq in runs_seq.items():
            seq = [r.records_harvested for r in run_seq.results]
            par = [r.records_harvested for r in runs_par[label].results]
            assert seq == par
        # The merged registry actually saw every task's pages.
        pages = reg_seq.get("crawl_pages_fetched_total")
        assert pages is not None and pages.total > 0
        # Worker-side wall-time tracking is off, keeping merges stable.
        assert reg_seq.get("crawl_step_seconds").count(policy="bfs") == 0

    def test_metrics_off_by_default(self, small_ebay):
        runs = run_policy_suite(
            small_ebay,
            {"bfs": BreadthFirstSelector},
            n_seeds=1,
            rng_seed=5,
            workers=1,
            max_rounds=20,
        )
        assert "bfs" in runs  # no registry, no error
