"""ProgressReporter: heartbeat lines and JSONL snapshots off the bus."""

import io

import pytest

from repro.core import Query
from repro.metrics import JsonlMetricsWriter, ProgressReporter, TelemetrySink
from repro.metrics.exporters import validate_metrics_jsonl
from repro.runtime.events import CrawlStopped, EventBus, RecordsHarvested

QUERY = Query.equality("title", "x")


def step_event(step, records=10, rounds=5):
    return RecordsHarvested(
        query=QUERY,
        step=step,
        new_records=2,
        pages_fetched=1,
        records_total=records,
        rounds=rounds,
    )


class TestHeartbeat:
    def test_every_n_steps(self):
        stream = io.StringIO()
        bus = EventBus()
        reporter = bus.attach(ProgressReporter(every=2, stream=stream))
        for step in range(1, 6):
            bus.emit(step_event(step), policy="bfs")
        text = stream.getvalue()
        assert reporter.beats == 2  # steps 2 and 4
        assert "[bfs] step 2" in text
        assert "step 3" not in text
        assert "records 10" in text

    def test_coverage_with_truth_size(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(ProgressReporter(every=1, stream=stream, truth_size=40))
        bus.emit(step_event(1, records=10), policy="bfs")
        assert "(25.0%)" in stream.getvalue()

    def test_telemetry_enrichment(self):
        stream = io.StringIO()
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        bus.attach(ProgressReporter(every=1, stream=stream, telemetry=telemetry))
        bus.emit(step_event(1), policy="bfs")
        assert "rolling" in stream.getvalue()

    def test_final_line_on_stop(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(ProgressReporter(every=0, stream=stream))
        bus.emit(step_event(1), policy="bfs")
        bus.emit(
            CrawlStopped(stopped_by="max-rounds", rounds=7, queries=3, records=12),
            policy="bfs",
        )
        text = stream.getvalue()
        assert "stopped by max-rounds" in text
        assert "step 1" not in text  # every=0 disables periodic lines

    def test_negative_every_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(every=-1)


class TestJsonlStreaming:
    def test_snapshot_per_beat_plus_final(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        writer = JsonlMetricsWriter(path)
        bus.attach(
            ProgressReporter(every=2, telemetry=telemetry, writer=writer)
        )
        for step in range(1, 5):
            bus.emit(step_event(step), policy="bfs")
        bus.emit(CrawlStopped(stopped_by="frontier-exhausted"), policy="bfs")
        writer.close()
        assert validate_metrics_jsonl(path) == 3  # beats at 2, 4 + final

    def test_no_writer_no_files(self, tmp_path):
        bus = EventBus()
        bus.attach(ProgressReporter(every=1))
        bus.emit(step_event(1), policy="bfs")  # silent: no stream, no writer
        assert list(tmp_path.iterdir()) == []
