"""ProgressReporter: heartbeat lines and JSONL snapshots off the bus."""

import io

import pytest

from repro.core import Query
from repro.metrics import JsonlMetricsWriter, ProgressReporter, TelemetrySink
from repro.metrics.exporters import validate_metrics_jsonl
from repro.runtime.events import CrawlStopped, EventBus, RecordsHarvested

QUERY = Query.equality("title", "x")


def step_event(step, records=10, rounds=5):
    return RecordsHarvested(
        query=QUERY,
        step=step,
        new_records=2,
        pages_fetched=1,
        records_total=records,
        rounds=rounds,
    )


class TestHeartbeat:
    def test_every_n_steps(self):
        stream = io.StringIO()
        bus = EventBus()
        reporter = bus.attach(ProgressReporter(every=2, stream=stream))
        for step in range(1, 6):
            bus.emit(step_event(step), policy="bfs")
        text = stream.getvalue()
        assert reporter.beats == 2  # steps 2 and 4
        assert "[bfs] step 2" in text
        assert "step 3" not in text
        assert "records 10" in text

    def test_coverage_with_truth_size(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(ProgressReporter(every=1, stream=stream, truth_size=40))
        bus.emit(step_event(1, records=10), policy="bfs")
        assert "(25.0%)" in stream.getvalue()

    def test_telemetry_enrichment(self):
        stream = io.StringIO()
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        bus.attach(ProgressReporter(every=1, stream=stream, telemetry=telemetry))
        bus.emit(step_event(1), policy="bfs")
        assert "rolling" in stream.getvalue()

    def test_final_line_on_stop(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(ProgressReporter(every=0, stream=stream))
        bus.emit(step_event(1), policy="bfs")
        bus.emit(
            CrawlStopped(stopped_by="max-rounds", rounds=7, queries=3, records=12),
            policy="bfs",
        )
        text = stream.getvalue()
        assert "stopped by max-rounds" in text
        assert "step 1" not in text  # every=0 disables periodic lines

    def test_negative_every_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(every=-1)


class TestJsonlStreaming:
    def test_snapshot_per_beat_plus_final(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        writer = JsonlMetricsWriter(path)
        bus.attach(
            ProgressReporter(every=2, telemetry=telemetry, writer=writer)
        )
        for step in range(1, 5):
            bus.emit(step_event(step), policy="bfs")
        bus.emit(CrawlStopped(stopped_by="frontier-exhausted"), policy="bfs")
        writer.close()
        assert validate_metrics_jsonl(path) == 3  # beats at 2, 4 + final

    def test_no_writer_no_files(self, tmp_path):
        bus = EventBus()
        bus.attach(ProgressReporter(every=1))
        bus.emit(step_event(1), policy="bfs")  # silent: no stream, no writer
        assert list(tmp_path.iterdir()) == []

    def test_close_flushes_missed_final_snapshot(self, tmp_path):
        """Crawl dies between heartbeats with no CrawlStopped: the JSONL
        stream must still end with a snapshot of the last step."""
        import json

        path = tmp_path / "metrics.jsonl"
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        writer = JsonlMetricsWriter(path)
        reporter = bus.attach(
            ProgressReporter(every=2, telemetry=telemetry, writer=writer)
        )
        for step in range(1, 6):  # last beat at 4; step 5 unsnapshotted
            bus.emit(step_event(step), policy="bfs")
        reporter.close()
        writer.close()
        assert validate_metrics_jsonl(path) == 3  # beats at 2, 4 + closing
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["step"] == 5

    def test_close_is_idempotent_and_skips_duplicates(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        writer = JsonlMetricsWriter(path)
        reporter = bus.attach(
            ProgressReporter(every=2, telemetry=telemetry, writer=writer)
        )
        bus.emit(step_event(2), policy="bfs")  # beat covers the last step
        reporter.close()
        reporter.close()
        writer.close()
        assert validate_metrics_jsonl(path) == 1  # no duplicate snapshot

    def test_close_after_stop_is_a_noop(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        writer = JsonlMetricsWriter(path)
        reporter = bus.attach(
            ProgressReporter(every=2, telemetry=telemetry, writer=writer)
        )
        bus.emit(step_event(1), policy="bfs")
        bus.emit(CrawlStopped(stopped_by="max-rounds"), policy="bfs")
        reporter.close()
        writer.close()
        assert validate_metrics_jsonl(path) == 1  # the final snapshot only


class TestElapsedAcrossResume:
    def fake_clock(self, start=100.0):
        state = {"now": start}

        def clock():
            return state["now"]

        return state, clock

    def test_elapsed_accumulates_into_gauge(self):
        state, clock = self.fake_clock()
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        bus.attach(
            ProgressReporter(every=1, telemetry=telemetry, clock=clock)
        )
        state["now"] += 30.0
        bus.emit(step_event(1), policy="bfs")
        assert telemetry.elapsed_gauge.value() == 30.0

    def test_resumed_reporter_continues_from_offset(self):
        """A resumed crawl's registry restores the elapsed gauge; the
        fresh reporter must add to it instead of starting from zero."""
        state, clock = self.fake_clock()
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        stream = io.StringIO()
        bus.attach(
            ProgressReporter(
                every=1, stream=stream, telemetry=telemetry, clock=clock
            )
        )
        # Simulate the resume sequence: sink attached first, then the
        # checkpointed registry state (elapsed included) loaded onto it.
        telemetry.registry.load_state(
            _registry_state_with_elapsed(telemetry, 120.0)
        )
        state["now"] += 5.0
        bus.emit(step_event(1), policy="bfs")
        assert telemetry.elapsed_gauge.value() == 125.0
        assert "125.0s" in stream.getvalue()

    def test_fresh_crawl_starts_from_zero(self):
        state, clock = self.fake_clock()
        bus = EventBus()
        telemetry = bus.attach(TelemetrySink())
        stream = io.StringIO()
        bus.attach(
            ProgressReporter(
                every=1, stream=stream, telemetry=telemetry, clock=clock
            )
        )
        state["now"] += 2.0
        bus.emit(step_event(1), policy="bfs")
        assert "2.0s" in stream.getvalue()


def _registry_state_with_elapsed(telemetry, seconds):
    """Checkpoint-shaped registry state carrying a prior elapsed total."""
    telemetry.elapsed_gauge.set(seconds)
    state = telemetry.registry.state_dict()
    telemetry.elapsed_gauge.set(0.0)  # back to the pre-restore value
    return state
