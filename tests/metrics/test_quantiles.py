"""The shared nearest-rank quantile helper (loadtest + heartbeat)."""

from __future__ import annotations

import io
import itertools

from repro.metrics import nearest_rank, percentiles
from repro.metrics.progress import ProgressReporter
from repro.net.loadtest import _percentile
from repro.runtime.events import RecordsHarvested


class TestNearestRank:
    def test_pinned_against_known_sample(self):
        ordered = [float(v) for v in range(1, 101)]  # 1..100
        assert nearest_rank(ordered, 0.50) == 50.0
        assert nearest_rank(ordered, 0.95) == 95.0
        assert nearest_rank(ordered, 0.99) == 99.0
        assert nearest_rank(ordered, 1.00) == 100.0
        assert nearest_rank(ordered, 0.0) == 1.0

    def test_small_samples(self):
        assert nearest_rank([], 0.5) == 0.0
        assert nearest_rank([3.0], 0.5) == 3.0
        assert nearest_rank([1.0, 2.0], 0.5) == 1.0
        assert nearest_rank([1.0, 2.0], 0.95) == 2.0

    def test_returns_observed_values_only(self):
        ordered = [1.0, 10.0, 100.0]
        for q in (0.1, 0.5, 0.9, 0.99):
            assert nearest_rank(ordered, q) in ordered

    def test_monotone_in_q(self):
        ordered = sorted([5.0, 1.0, 9.0, 2.0, 7.0])
        values = [nearest_rank(ordered, q / 100) for q in range(101)]
        assert values == sorted(values)

    def test_loadtest_alias_is_the_shared_helper(self):
        # tests and the loadtest report import _percentile by name; it
        # must stay the one shared estimator.
        assert _percentile is nearest_rank


class TestPercentiles:
    def test_sorts_once_and_reads_many(self):
        samples = [3.0, 1.0, 2.0]
        assert percentiles(samples, (0.5, 1.0)) == {0.5: 2.0, 1.0: 3.0}

    def test_default_quantiles(self):
        result = percentiles(range(1, 101))
        assert result == {0.50: 50, 0.95: 95, 0.99: 99}


class TestHeartbeatStepLatency:
    def test_heartbeat_reports_step_percentiles(self):
        # A fake clock: step k completes at second k, so inter-step
        # deltas are exactly 1.0s and the percentiles are pinned.
        ticks = itertools.count()
        stream = io.StringIO()
        reporter = ProgressReporter(
            every=4, stream=stream, clock=lambda: float(next(ticks))
        )
        for step in range(1, 5):
            reporter.handle(
                RecordsHarvested(
                    step=step, records_total=step, rounds=step,
                    policy="gl",
                )
            )
        line = stream.getvalue()
        assert "step p50 1000.0ms p95 1000.0ms" in line

    def test_no_percentiles_before_second_step(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            every=1, stream=stream, clock=lambda: 0.0
        )
        reporter.handle(
            RecordsHarvested(step=1, records_total=1, rounds=1, policy="gl")
        )
        assert "step p50" not in stream.getvalue()
