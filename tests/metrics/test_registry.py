"""Unit tests for the metric primitives and the registry."""

import pytest

from repro.metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("jobs_total", labels=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(5, kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 5
        assert c.total == 8

    def test_unlabelled(self):
        c = Counter("plain_total")
        c.inc()
        assert c.value() == 1

    def test_cannot_decrease(self):
        c = Counter("jobs_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_wrong_labels_raise(self):
        c = Counter("jobs_total", labels=("kind",))
        with pytest.raises(MetricError):
            c.inc(color="red")
        with pytest.raises(MetricError):
            c.value()

    def test_series_sorted_by_label_values(self):
        c = Counter("jobs_total", labels=("kind",))
        for kind in ("zeta", "alpha", "mid"):
            c.inc(kind=kind)
        assert [key for key, _ in c.series()] == [
            ("alpha",), ("mid",), ("zeta",)
        ]

    def test_invalid_name(self):
        with pytest.raises(MetricError):
            Counter("bad name")
        with pytest.raises(MetricError):
            Counter("")


class TestGauge:
    def test_set_last_write_wins(self):
        g = Gauge("depth")
        g.set(4)
        g.set(2)
        assert g.value() == 2

    def test_inc(self):
        g = Gauge("depth")
        g.inc(3)
        g.inc(-1)
        assert g.value() == 2


class TestHistogram:
    def test_le_semantics(self):
        h = Histogram("latency", buckets=(1.0, 5.0))
        h.observe(1.0)   # at the bound -> counted in le=1
        h.observe(3.0)   # -> le=5
        h.observe(100.0)  # -> +Inf only
        assert h.cumulative_buckets() == [(1.0, 1), (5.0, 2), (float("inf"), 3)]
        assert h.count() == 3
        assert h.sum() == pytest.approx(104.0)
        assert h.mean() == pytest.approx(104.0 / 3)

    def test_empty_series(self):
        h = Histogram("latency", buckets=(1.0,))
        assert h.count() == 0
        assert h.mean() == 0.0
        assert h.cumulative_buckets() == [(1.0, 0), (float("inf"), 0)]

    def test_buckets_must_increase(self):
        with pytest.raises(MetricError):
            Histogram("latency", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("latency", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("latency", buckets=())


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", labels=("kind",))
        b = reg.counter("jobs_total", labels=("kind",))
        assert a is b
        assert len(reg) == 1
        assert "jobs_total" in reg
        assert reg.get("jobs_total") is a

    def test_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricError):
            reg.gauge("x_total")

    def test_label_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("x_total", labels=("b",))

    def test_histogram_bucket_conflict(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_iteration_in_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("zzz_total")
        reg.gauge("aaa")
        assert [m.name for m in reg] == ["zzz_total", "aaa"]


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("pages_total", "pages", labels=("policy",))
    c.inc(7, policy="bfs")
    c.inc(3, policy="dfs")
    g = reg.gauge("coverage")
    g.set(0.5)
    h = reg.histogram("pages_per_query", buckets=(1.0, 2.0, 5.0))
    for value in (1, 1, 3, 9):
        h.observe(value)
    return reg


class TestStateRoundtrip:
    def test_state_dict_roundtrip(self):
        reg = populated_registry()
        restored = MetricsRegistry()
        restored.load_state(reg.state_dict())
        assert restored.state_dict() == reg.state_dict()

    def test_state_is_json_safe(self):
        import json

        state = populated_registry().state_dict()
        assert json.loads(json.dumps(state)) == state

    def test_histogram_bucket_mismatch_on_load(self):
        reg = populated_registry()
        other = MetricsRegistry()
        other.histogram("pages_per_query", buckets=(10.0,))
        with pytest.raises(MetricError):
            other.load_state(reg.state_dict())


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_add(self):
        a = populated_registry()
        b = populated_registry()
        b.get("coverage").set(0.9)
        a.merge(b)
        assert a.get("pages_total").value(policy="bfs") == 14
        assert a.get("coverage").value() == 0.9
        assert a.get("pages_per_query").count() == 8

    def test_merge_accepts_snapshot_dict(self):
        a = MetricsRegistry()
        a.merge(populated_registry().state_dict())
        assert a.get("pages_total").value(policy="dfs") == 3

    def test_merge_into_empty_equals_source(self):
        source = populated_registry()
        target = MetricsRegistry()
        target.merge(source)
        assert target.state_dict() == source.state_dict()

    def test_merge_order_independent_totals(self):
        # Fixed merge order gives byte-identical snapshots; but totals
        # are order-independent regardless.
        parts = [populated_registry() for _ in range(3)]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge(part)
        assert (
            forward.get("pages_total").total
            == backward.get("pages_total").total
            == 30
        )
