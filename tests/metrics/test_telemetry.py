"""TelemetrySink: events in, registry values out."""

import pytest

from repro.core import Query
from repro.metrics import MetricsRegistry, TelemetrySink
from repro.runtime.events import (
    CheckpointWritten,
    CrawlStopped,
    EventBus,
    ExperimentSuiteCompleted,
    ExperimentTaskCompleted,
    PageFetched,
    QueryAborted,
    QueryFailed,
    QueryIssued,
    QueryRejected,
    RecordsHarvested,
    RetryAttempted,
)

QUERY = Query.equality("title", "x")


def make_bus_and_sink(**kwargs):
    bus = EventBus()
    sink = bus.attach(TelemetrySink(**kwargs))
    return bus, sink


class TestEventCounters:
    def test_query_lifecycle_counters(self):
        bus, sink = make_bus_and_sink()
        bus.emit(QueryIssued(query=QUERY), policy="bfs")
        bus.emit(QueryRejected(query=QUERY), policy="bfs")
        bus.emit(QueryFailed(query=QUERY, pages_fetched=1), policy="bfs")
        bus.emit(
            QueryAborted(query=QUERY, pages_fetched=2, pages_saved=3),
            policy="bfs",
        )
        assert sink.queries_issued.value(policy="bfs") == 1
        assert sink.queries_rejected.value(policy="bfs") == 1
        assert sink.queries_failed.value(policy="bfs") == 1
        assert sink.queries_aborted.value(policy="bfs") == 1
        assert sink.rounds_saved.value(policy="bfs") == 3

    def test_page_and_record_counters(self):
        bus, sink = make_bus_and_sink()
        bus.emit(
            PageFetched(query=QUERY, page_number=1, records=10, new_records=4),
            policy="bfs",
        )
        bus.emit(
            PageFetched(query=QUERY, page_number=2, records=10, new_records=10),
            policy="bfs",
        )
        assert sink.pages_fetched.value(policy="bfs") == 2
        assert sink.records_new.value(policy="bfs") == 14
        assert sink.records_duplicate.value(policy="bfs") == 6

    def test_retry_and_backoff(self):
        bus, sink = make_bus_and_sink()
        bus.emit(
            RetryAttempted(query=QUERY, attempt=1, backoff_rounds=4),
            policy="bfs",
        )
        assert sink.retries.value(policy="bfs") == 1
        assert sink.backoff_rounds.value(policy="bfs") == 4

    def test_checkpoints_split_by_snapshot(self):
        bus, sink = make_bus_and_sink()
        bus.emit(CheckpointWritten(step=1, snapshot=True), policy="bfs")
        bus.emit(CheckpointWritten(step=2, snapshot=False), policy="bfs")
        assert sink.checkpoints.value(policy="bfs", snapshot="full") == 1
        assert sink.checkpoints.value(policy="bfs", snapshot="marker") == 1

    def test_stop_reason(self):
        bus, sink = make_bus_and_sink()
        bus.emit(
            CrawlStopped(stopped_by="max-rounds", rounds=9, records=40),
            policy="bfs",
        )
        assert sink.stops.value(policy="bfs", stopped_by="max-rounds") == 1
        assert sink.records_gauge.value() == 40
        assert sink.rounds_gauge.value() == 9

    def test_experiment_rollups(self):
        bus, sink = make_bus_and_sink()
        bus.emit(ExperimentTaskCompleted(label="bfs", seconds=1.5))
        bus.emit(ExperimentTaskCompleted(label="bfs", seconds=0.5))
        bus.emit(ExperimentSuiteCompleted(tasks=2, wall_seconds=1.25))
        assert sink.tasks_completed.value(label="bfs") == 2
        assert sink.task_seconds.value(label="bfs") == pytest.approx(2.0)
        assert sink.suite_wall_seconds.value() == pytest.approx(1.25)


def step_event(step, new, pages, total, rounds):
    return RecordsHarvested(
        query=QUERY,
        step=step,
        new_records=new,
        pages_fetched=pages,
        records_total=total,
        rounds=rounds,
    )


class TestStepDerivedSignals:
    def test_coverage_needs_truth_size(self):
        bus, sink = make_bus_and_sink(truth_size=200)
        bus.emit(step_event(1, new=50, pages=5, total=50, rounds=5), policy="g")
        assert sink.coverage.value() == pytest.approx(0.25)
        assert sink.steps_gauge.value() == 1

        bus2, sink2 = make_bus_and_sink()  # no truth size
        bus2.emit(step_event(1, 50, 5, 50, 5), policy="g")
        assert sink2.coverage.value() == 0.0

    def test_cumulative_vs_rolling_harvest_rate(self):
        bus, sink = make_bus_and_sink(rolling_window=2)
        # PageFetched feeds the cumulative rate's denominator.
        for new in (10, 10, 0, 0):
            bus.emit(
                PageFetched(query=QUERY, records=10, new_records=new),
                policy="g",
            )
        bus.emit(step_event(1, 20, 2, 20, 2), policy="g")
        bus.emit(step_event(2, 0, 1, 20, 3), policy="g")
        bus.emit(step_event(3, 0, 1, 20, 4), policy="g")
        # Cumulative: 20 new over 4 pages; rolling window (last 2
        # queries): 0 new over 2 pages.
        assert sink.harvest_rate.value(policy="g") == pytest.approx(5.0)
        assert sink.harvest_rate_rolling.value(policy="g") == 0.0

    def test_pages_per_query_histogram(self):
        bus, sink = make_bus_and_sink()
        bus.emit(step_event(1, 5, 3, 5, 3), policy="g")
        assert sink.pages_per_query.count(policy="g") == 1
        assert sink.pages_per_query.sum(policy="g") == 3

    def test_wall_time_tracking_toggle(self):
        ticks = iter([1.0, 2.0, 2.5])
        bus, sink = make_bus_and_sink(clock=lambda: next(ticks))
        bus.emit(step_event(1, 1, 1, 1, 1), policy="g")
        bus.emit(step_event(2, 1, 1, 2, 2), policy="g")
        assert sink.step_seconds.count(policy="g") == 1
        assert sink.step_seconds.sum(policy="g") == pytest.approx(1.0)

        bus2, sink2 = make_bus_and_sink(track_wall_time=False)
        bus2.emit(step_event(1, 1, 1, 1, 1), policy="g")
        bus2.emit(step_event(2, 1, 1, 2, 2), policy="g")
        assert sink2.step_seconds.count(policy="g") == 0

    def test_rolling_window_validation(self):
        with pytest.raises(ValueError):
            TelemetrySink(rolling_window=0)


class TestSampleServer:
    def test_reads_cache_gauges(self, books_server):
        sink = TelemetrySink()
        orbit = Query.equality("publisher", "orbit")
        books_server.submit(orbit)
        books_server.submit(orbit)
        sink.sample_server(books_server)
        hits = sink.cache_hits.value()
        misses = sink.cache_misses.value()
        assert hits + misses > 0
        assert sink.cache_hit_ratio.value() == pytest.approx(
            hits / (hits + misses)
        )
        assert sink.rounds_gauge.value() == books_server.rounds

    def test_tolerates_logless_server(self):
        sink = TelemetrySink()
        sink.sample_server(object())  # no .log: silently a no-op
        assert sink.cache_hits.value() == 0

    def test_shared_registry(self):
        reg = MetricsRegistry()
        a = TelemetrySink(registry=reg)
        b = TelemetrySink(registry=reg)
        assert a.registry is b.registry is reg


class TestSampleSelector:
    class FakeSelector:
        name = "greedy-link"

        def __init__(self, stats):
            self._stats = stats

        def frontier_stats(self):
            return self._stats

    def test_folds_frontier_counters(self):
        sink = TelemetrySink()
        sink.sample_selector(
            self.FakeSelector(
                {"pending": 42, "dirty_total": 7, "rescored_total": 9}
            )
        )
        assert sink.frontier_rescored.value(policy="greedy-link") == 9
        assert sink.frontier_dirty.value(policy="greedy-link") == 7
        assert sink.frontier_pending.value() == 42

    def test_explicit_policy_label_wins(self):
        sink = TelemetrySink()
        sink.sample_selector(
            self.FakeSelector({"dirty_total": 1, "rescored_total": 1}),
            policy="gl-tuned",
        )
        assert sink.frontier_rescored.value(policy="gl-tuned") == 1
        assert sink.frontier_rescored.value(policy="greedy-link") == 0

    def test_counters_accumulate_across_crawls(self):
        """One sink, many grid tasks: lifetime totals must sum."""
        sink = TelemetrySink()
        for _ in range(3):
            sink.sample_selector(
                self.FakeSelector({"dirty_total": 2, "rescored_total": 5})
            )
        assert sink.frontier_rescored.value(policy="greedy-link") == 15
        assert sink.frontier_dirty.value(policy="greedy-link") == 6

    def test_noop_without_frontier_stats(self):
        sink = TelemetrySink()
        sink.sample_selector(object())  # e.g. MMMI: no interned frontier
        sink.sample_selector(self.FakeSelector(None))  # stats disabled
        assert sink.frontier_rescored.value(policy="?") == 0

    def test_prometheus_round_trip(self):
        """The new counters must survive the text exposition format."""
        from repro.metrics.exporters import prometheus_text

        sink = TelemetrySink()
        sink.sample_selector(
            self.FakeSelector(
                {"pending": 4, "dirty_total": 3, "rescored_total": 8}
            )
        )
        sink.grid_shm_bytes.set(267256.0)
        text = prometheus_text(sink.registry)
        assert "# TYPE frontier_rescored_total counter" in text
        assert 'frontier_rescored_total{policy="greedy-link"} 8' in text
        assert 'frontier_dirty_total{policy="greedy-link"} 3' in text
        assert "# TYPE frontier_pending gauge" in text
        assert "frontier_pending 4" in text
        assert "# TYPE grid_shm_bytes gauge" in text
        assert "grid_shm_bytes 267256" in text
