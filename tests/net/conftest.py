"""Shared fixtures for the network lane: one live service per session."""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.metrics import MetricsRegistry
from repro.net import ServerThread, SourceService
from repro.server import SimulatedWebDatabase


@pytest.fixture(scope="session")
def imdb_table():
    return load_dataset("imdb", 800, seed=1)


@pytest.fixture()
def service(imdb_table, books):
    """A fresh service per test (sources carry per-crawl round state)."""
    return SourceService(
        {
            "imdb": SimulatedWebDatabase(imdb_table, page_size=10),
            "books": SimulatedWebDatabase(books, page_size=2),
        },
        registry=MetricsRegistry(),
    )


@pytest.fixture()
def served(service):
    """(url, service) with a live asyncio server on a background thread."""
    with ServerThread(service) as url:
        yield url, service
