"""The rendered-page cache: byte identity, round accounting, ETag/304.

The cache may only ever change *speed*, never the wire: every test
here compares a cached service against an uncached one (or a cold
request against a warm one) and demands byte equality — plus the
paper's cost-model invariant that a cache hit or a 304 charges the
source's communication log exactly like a fresh render.
"""

from __future__ import annotations

import pytest

from repro.datasets import dataset_names, load_dataset
from repro.metrics import MetricsRegistry
from repro.net.cache import (
    CachedPage,
    PageRenderCache,
    etag_matches,
    make_etag,
)
from repro.net.server import SourceService
from repro.server import SimulatedWebDatabase


def _query_target(name, attribute, value, page=1, format="json"):
    from urllib.parse import urlencode

    params = [("a", attribute), ("v", value), ("page", str(page)),
              ("format", format)]
    return f"/sources/{name}/query?{urlencode(params)}"


def _probe_value(table):
    """Any (attribute, value) pair with at least one match."""
    queriable = set(table.schema.queriable)
    for pair in table.distinct_values():
        if pair.attribute in queriable:
            return pair.attribute, pair.value
    raise AssertionError("dataset has no queriable values")


class TestEtagMatching:
    def test_strong_match(self):
        assert etag_matches('"abc"', '"abc"')

    def test_no_match(self):
        assert not etag_matches('"abc"', '"def"')

    def test_star_matches_anything(self):
        assert etag_matches("*", '"whatever"')

    def test_list_of_candidates(self):
        assert etag_matches('"a", "b", "c"', '"b"')

    def test_weak_candidate_matches(self):
        assert etag_matches('W/"abc"', '"abc"')

    def test_empty_header_never_matches(self):
        assert not etag_matches("", '"abc"')

    def test_make_etag_is_quoted_and_content_addressed(self):
        one, two = make_etag(b"body"), make_etag(b"body")
        assert one == two
        assert one.startswith('"') and one.endswith('"')
        assert make_etag(b"other") != one


class TestPageRenderCacheLRU:
    def test_put_get_roundtrip(self):
        cache = PageRenderCache(4)
        entry = CachedPage.build(200, "application/json", b"{}", records=0)
        cache.put(("k",), entry)
        assert cache.get(("k",)) is entry
        assert cache.stats() == (1, 0, 0, 1)

    def test_miss_counts(self):
        cache = PageRenderCache(4)
        assert cache.get(("absent",)) is None
        assert cache.stats() == (0, 1, 0, 0)

    def test_eviction_is_lru(self):
        cache = PageRenderCache(2)
        entry = CachedPage.build(200, "t", b"x", records=0)
        cache.put(("a",), entry)
        cache.put(("b",), entry)
        cache.get(("a",))          # refresh a → b is now oldest
        cache.put(("c",), entry)   # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PageRenderCache(0)

    def test_registry_counters(self):
        registry = MetricsRegistry()
        cache = PageRenderCache(4, registry=registry)
        entry = CachedPage.build(200, "t", b"x", records=0)
        cache.put(("a",), entry)
        cache.get(("a",))
        cache.get(("missing",))
        counter = registry.get("net_server_page_cache_total")
        assert counter.value(result="hit") == 1
        assert counter.value(result="miss") == 1
        assert registry.get("net_server_page_cache_entries").value() == 1


class TestCachedBytesIdentical:
    """Cached vs uncached responses are byte-equal, every dataset."""

    @pytest.mark.parametrize("dataset", sorted(dataset_names()))
    @pytest.mark.parametrize("format", ["json", "xml"])
    def test_cached_equals_uncached(self, dataset, format):
        table = load_dataset(dataset, 300, seed=1)
        cached = SourceService(
            {dataset: SimulatedWebDatabase(table, page_size=10)}
        )
        uncached = SourceService(
            {dataset: SimulatedWebDatabase(table, page_size=10)},
            page_cache_size=0,
        )
        assert uncached.page_cache is None
        attribute, value = _probe_value(table)
        target = _query_target(dataset, attribute, value, format=format)
        cold = cached.handle("GET", target, {}, "t")
        warm = cached.handle("GET", target, {}, "t")
        plain = uncached.handle("GET", target, {}, "t")
        assert cold.status == warm.status == plain.status == 200
        assert cold.body == warm.body == plain.body
        assert cold.content_type == warm.content_type == plain.content_type
        # The warm request was a genuine hit, not a re-render.
        assert cached.page_cache.stats()[0] == 1

    def test_hit_charges_the_round(self, service):
        source = service.sources["imdb"]
        attribute, value = _probe_value(source.table)
        target = _query_target("imdb", attribute, value)
        before = source.rounds
        service.handle("GET", target, {}, "t")
        service.handle("GET", target, {}, "t")
        assert source.rounds == before + 2

    def test_different_pages_are_different_entries(self, service):
        source = service.sources["imdb"]
        attribute, value = _probe_value(source.table)
        one = service.handle(
            "GET", _query_target("imdb", attribute, value, page=1), {}, "t"
        )
        # Asking for a different page must not hit page 1's entry.
        other = service.handle(
            "GET", _query_target("imdb", attribute, value, page=2), {}, "t"
        )
        assert service.page_cache.hits == 0
        assert one.body != other.body

    def test_unsupported_query_not_cached_and_no_round(self, service):
        source = service.sources["imdb"]
        target = "/sources/imdb/query?a=no_such_attribute&v=x"
        before = source.rounds
        first = service.handle("GET", target, {}, "t")
        second = service.handle("GET", target, {}, "t")
        assert first.status == second.status == 400
        assert source.rounds == before
        assert len(service.page_cache) == 0

    def test_out_of_range_page_cached_with_zero_record_rounds(self, service):
        source = service.sources["imdb"]
        attribute, value = _probe_value(source.table)
        target = _query_target("imdb", attribute, value, page=99)
        before = source.rounds
        first = service.handle("GET", target, {}, "t")
        second = service.handle("GET", target, {}, "t")
        assert first.status == second.status == 404
        assert first.body == second.body
        # Both asks cost a round, exactly like the in-process lane.
        assert source.rounds == before + 2
        assert service.page_cache.hits == 1


class TestEtagRoundTrip:
    def test_200_then_304(self, service):
        source = service.sources["imdb"]
        attribute, value = _probe_value(source.table)
        target = _query_target("imdb", attribute, value)
        first = service.handle("GET", target, {}, "t")
        assert first.status == 200
        etag = dict(first.headers)["ETag"]
        before = source.rounds
        revalidated = service.handle(
            "GET", target, {"if-none-match": etag}, "t"
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert dict(revalidated.headers)["ETag"] == etag
        # The 304 still increments the communication log.
        assert source.rounds == before + 1

    def test_stale_validator_gets_the_full_body(self, service):
        source = service.sources["imdb"]
        attribute, value = _probe_value(source.table)
        target = _query_target("imdb", attribute, value)
        first = service.handle("GET", target, {}, "t")
        stale = service.handle(
            "GET", target, {"if-none-match": '"not-the-etag"'}, "t"
        )
        assert stale.status == 200
        assert stale.body == first.body

    def test_etag_still_served_with_cache_disabled(self, imdb_table):
        uncached = SourceService(
            {"imdb": SimulatedWebDatabase(imdb_table, page_size=10)},
            page_cache_size=0,
        )
        attribute, value = _probe_value(imdb_table)
        target = _query_target("imdb", attribute, value)
        first = uncached.handle("GET", target, {}, "t")
        etag = dict(first.headers)["ETag"]
        revalidated = uncached.handle(
            "GET", target, {"if-none-match": etag}, "t"
        )
        assert revalidated.status == 304

    def test_client_revalidates_transparently(self, served):
        """RemoteWebDatabase sends If-None-Match and reuses the body."""
        from repro.core.query import Query
        from repro.net import RemoteWebDatabase

        url, service = served
        registry = MetricsRegistry()
        attribute, value = _probe_value(service.sources["imdb"].table)
        with RemoteWebDatabase(
            url, source="imdb", registry=registry, pipeline_depth=0
        ) as client:
            query = Query.equality(attribute, value)
            first = client.submit(query)
            second = client.submit(query)
            assert [r.record_id for r in first.records] == [
                r.record_id for r in second.records
            ]
            assert client.rounds == 2
            responses = registry.get("net_client_responses_total")
            assert responses.value(status="304") == 1
            etags = registry.get("net_client_etag_total")
            assert etags.value(outcome="reused") == 1

    def test_keep_alive_interleaves_cached_and_uncached(self, served):
        """One raw keep-alive connection, 200s and 304s interleaved.

        Every response — full bodies, cached bodies, empty 304s — must
        carry a correct ``Content-Length``, or the framing of the next
        pipelined response on the same connection breaks.
        """
        import socket

        url, service = served
        host, port = url.replace("http://", "").split(":")
        attribute, value = _probe_value(service.sources["imdb"].table)
        target = _query_target("imdb", attribute, value)

        def request(sock_file, sock, extra=""):
            sock.sendall(
                (
                    f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
                    f"Connection: keep-alive\r\n{extra}\r\n"
                ).encode()
            )
            status = int(sock_file.readline().split(None, 2)[1])
            headers = {}
            while True:
                line = sock_file.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, val = line.decode().partition(":")
                headers[name.strip().lower()] = val.strip()
            length = int(headers["content-length"])
            body = sock_file.read(length)
            assert len(body) == length
            return status, headers, body

        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock_file = sock.makefile("rb")
            s1, h1, b1 = request(sock_file, sock)            # miss → 200
            s2, h2, b2 = request(sock_file, sock)            # hit → 200
            etag = h1["etag"]
            s3, h3, b3 = request(
                sock_file, sock, f"If-None-Match: {etag}\r\n"
            )                                                # hit → 304
            s4, _h4, b4 = request(sock_file, sock)           # hit → 200
            assert (s1, s2, s3, s4) == (200, 200, 304, 200)
            assert b1 == b2 == b4
            assert b3 == b"" and h3["content-length"] == "0"

    @pytest.mark.parametrize("depth", [0, 1, 4])
    def test_pipeline_depths_interleave_cached_and_uncached(
        self, served, depth
    ):
        """Cached repeats and fresh queries interleave on one pool."""
        from repro.core.query import Query
        from repro.net import RemoteWebDatabase

        url, service = served
        table = service.sources["imdb"].table
        queriable = set(table.schema.queriable)
        values = [
            pair for pair in table.distinct_values()
            if pair.attribute in queriable
        ][:4]
        with RemoteWebDatabase(
            url, source="imdb", pipeline_depth=depth
        ) as client:
            first_pass = {}
            for pair in values:
                query = Query.equality(pair.attribute, pair.value)
                page = client.submit(query)
                first_pass[pair] = [r.record_id for r in page.records]
            # Second pass interleaves guaranteed cache hits (repeats)
            # with guaranteed misses (page 2+ via fresh pagination).
            for pair in values:
                query = Query.equality(pair.attribute, pair.value)
                again = client.submit(query)
                assert [
                    r.record_id for r in again.records
                ] == first_pass[pair]
            assert client.rounds == 2 * len(values)

    def test_client_etag_cache_can_be_disabled(self, served):
        from repro.core.query import Query
        from repro.net import RemoteWebDatabase

        url, service = served
        registry = MetricsRegistry()
        attribute, value = _probe_value(service.sources["imdb"].table)
        with RemoteWebDatabase(
            url,
            source="imdb",
            registry=registry,
            pipeline_depth=0,
            etag_cache_size=0,
        ) as client:
            query = Query.equality(attribute, value)
            client.submit(query)
            client.submit(query)
            responses = registry.get("net_client_responses_total")
            assert responses.value(status="304") == 0
