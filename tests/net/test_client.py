"""Tests for RemoteWebDatabase: surface parity, pipelining, politeness."""

import pytest

from repro.core import Query
from repro.core.errors import PaginationError, UnsupportedQueryError
from repro.metrics import MetricsRegistry
from repro.net import RemoteSourceError, RemoteWebDatabase, ServerThread, SourceService
from repro.server import (
    PermanentServerFailure,
    RateLimiter,
    SimulatedWebDatabase,
)


@pytest.fixture()
def remote(served):
    url, _service = served
    with RemoteWebDatabase(url, source="books") as client:
        yield client


class TestSurfaceParity:
    def test_interface_and_page_size(self, remote, books):
        local = SimulatedWebDatabase(books, page_size=2)
        assert remote.page_size == local.page_size
        assert remote.interface == local.interface
        assert remote.truth_size() == len(books)

    def test_pages_match_in_process(self, remote, books):
        local = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        for page_number in (1, 2):
            assert remote.submit(query, page_number) == local.submit(
                query, page_number
            )

    def test_xml_format_matches_too(self, served, books):
        url, _service = served
        local = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        with RemoteWebDatabase(url, source="books", format="xml") as client:
            assert client.submit(query) == local.submit(query)

    def test_unsupported_query_raises_without_a_round(self, remote):
        with pytest.raises(UnsupportedQueryError):
            remote.submit(Query.equality("price", "10"))
        assert remote.rounds == 0

    def test_page_out_of_range_charges_the_round(self, remote):
        with pytest.raises(PaginationError):
            remote.submit(Query.equality("publisher", "orbit"), 99)
        assert remote.rounds == 1

    def test_source_required_when_many_mounted(self, served):
        url, _service = served
        with pytest.raises(RemoteSourceError, match="2 sources"):
            RemoteWebDatabase(url)

    def test_unknown_source_rejected(self, served):
        url, _service = served
        with pytest.raises(RemoteSourceError):
            RemoteWebDatabase(url, source="ghost")

    def test_runtime_state_roundtrip(self, remote):
        remote.submit(Query.equality("publisher", "orbit"))
        state = remote.runtime_state()
        assert state == {"rounds": 1}
        remote.load_runtime_state({"rounds": 41})
        assert remote.rounds == 41


class TestRoundAccounting:
    def test_rounds_count_consumed_pages_only(self, served):
        url, service = served
        with RemoteWebDatabase(
            url, source="books", pipeline_depth=3
        ) as client:
            query = Query.equality("publisher", "orbit")
            page = client.submit(query)  # schedules prefetch of page 2
            assert page.num_pages == 2
            # Switch to a different query without consuming page 2.
            client.submit(Query.equality("publisher", "mitp"))
            assert client.rounds == 2
        # The server saw the speculative fetch; the client's log did not.
        assert service.sources["books"].rounds == 3

    def test_pipelined_walk_matches_serial_rounds(self, served, books):
        url, _service = served
        local = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        expected = []
        page_number = 1
        while True:
            page = local.submit(query, page_number)
            expected.append(page)
            if not page.has_next:
                break
            page_number += 1
        with RemoteWebDatabase(
            url, source="books", pipeline_depth=2
        ) as client:
            got = [client.submit(query, n + 1) for n in range(len(expected))]
            assert got == expected
            assert client.rounds == local.rounds

    def test_wall_times_recorded_per_round(self, remote):
        remote.submit(Query.equality("publisher", "orbit"))
        remote.submit(Query.equality("publisher", "orbit"), 2)
        assert len(remote.log.wall_times) == 2
        assert remote.log.total_wall_time > 0.0


class TestPoliteness:
    def test_retry_after_honored_then_succeeds(self, books):
        limiter = RateLimiter(max_requests=2, window_seconds=0.2)
        service = SourceService(
            {"books": SimulatedWebDatabase(books, page_size=2)},
            rate_limiter=limiter,
        )
        registry = MetricsRegistry()
        with ServerThread(service) as url:
            with RemoteWebDatabase(
                url, source="books", pipeline_depth=0, registry=registry
            ) as client:
                query = Query.equality("publisher", "orbit")
                assert client.submit(query, 1).page_number == 1
                assert client.submit(query, 2).page_number == 2
                # Third request trips the limiter; the client sleeps out
                # the (sub-second) window and retries to success.
                assert client.submit(query, 1).page_number == 1
        assert registry.get("net_client_retries_total").total >= 1

    def test_retries_exhausted_is_permanent_failure(self, books):
        limiter = RateLimiter(max_requests=1, window_seconds=30.0)
        service = SourceService(
            {"books": SimulatedWebDatabase(books, page_size=2)},
            rate_limiter=limiter,
        )
        with ServerThread(service) as url:
            with RemoteWebDatabase(
                url,
                source="books",
                pipeline_depth=0,
                max_retries=1,
                retry_after_cap=0.05,
            ) as client:
                query = Query.equality("publisher", "orbit")
                client.submit(query, 1)
                with pytest.raises(PermanentServerFailure):
                    client.submit(query, 2)

    def test_dead_server_is_permanent_failure(self, books):
        service = SourceService(
            {"books": SimulatedWebDatabase(books, page_size=2)}
        )
        thread = ServerThread(service)
        url = thread.start()
        client = RemoteWebDatabase(
            url,
            source="books",
            max_retries=1,
            backoff_base=0.01,
            timeout=2.0,
        )
        thread.stop()  # the service goes away mid-crawl
        try:
            with pytest.raises(PermanentServerFailure):
                client.submit(Query.equality("publisher", "orbit"))
        finally:
            client.close()


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_submit(self, served):
        url, _service = served
        client = RemoteWebDatabase(url, source="books")
        client.submit(Query.equality("publisher", "orbit"))
        client.close()
        client.close()
        with pytest.raises(RemoteSourceError):
            client.submit(Query.equality("publisher", "orbit"))

    def test_connections_are_reused(self, served):
        url, _service = served
        with RemoteWebDatabase(
            url, source="books", pipeline_depth=0
        ) as client:
            for page in (1, 2, 1, 2):
                client.submit(Query.equality("publisher", "orbit"), page)
            # Meta + truth_size + 4 pages over at most 1 pooled conn.
            assert client._pool.opened <= 2

    def test_bad_url_rejected_early(self):
        with pytest.raises(ValueError):
            RemoteWebDatabase("ftp://example.org")
