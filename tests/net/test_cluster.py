"""The multi-core serving cluster: identity across worker counts.

The bar mirrors the network lane's original acceptance test: a crawl
against a 4-worker cluster must be bit-identical — records, rounds,
seeds, per-step history — to the same crawl against 1 worker and to
the in-process lane, and the merged accounting must not betray the
worker count.
"""

from __future__ import annotations

import random

import pytest

from repro.core.query import Query
from repro.crawler.engine import CrawlerEngine
from repro.datasets import load_dataset
from repro.experiments.harness import sample_seed_values
from repro.net import RemoteWebDatabase
from repro.net.cluster import (
    ClusterSnapshot,
    SourceCluster,
    SourceRecipe,
    reuseport_supported,
)
from repro.policies import GreedyLinkSelector
from repro.server import SimulatedWebDatabase
from repro.server.limits import RateLimiterSpec, merge_runtime_states

needs_reuseport = pytest.mark.skipif(
    not reuseport_supported(), reason="SO_REUSEPORT unavailable"
)


@pytest.fixture(scope="module")
def small_table():
    return load_dataset("imdb", 400, seed=1)


def make_sources(table):
    return {"imdb": SimulatedWebDatabase(table, page_size=10)}


def crawl_remote(url, seed=1, target=0.5):
    with RemoteWebDatabase(url, source="imdb") as server:
        engine = CrawlerEngine(server, GreedyLinkSelector(), seed=seed)
        seeds = server.truth_seeds(1, seed=seed, min_frequency=2)
        result = engine.crawl(seeds, target_coverage=target)
        return result, sorted(engine.local_db.record_ids()), seeds


class TestRecipeRoundTrip:
    def test_shared_memory_recipe(self, small_table):
        source = SimulatedWebDatabase(small_table, page_size=10)
        recipe = SourceRecipe.from_source("imdb", source)
        try:
            rebuilt = recipe.build()
            assert rebuilt.page_size == 10
            assert rebuilt.table.name == small_table.name
            assert len(rebuilt.table) == len(small_table)
        finally:
            if recipe.handle is not None:
                recipe.handle.unlink()

    def test_pickle_fallback_recipe(self, small_table):
        source = SimulatedWebDatabase(small_table, page_size=7)
        recipe = SourceRecipe.from_source(
            "imdb", source, use_shared_memory=False
        )
        assert recipe.handle is None
        rebuilt = recipe.build()
        assert rebuilt.page_size == 7
        assert len(rebuilt.table) == len(small_table)


class TestMergeRuntimeStates:
    def test_merge_is_order_stable_and_additive(self):
        one = {
            "windows": {"a": [1.0, 3.0]},
            "violations": {"a": 1},
            "banned_until": {"a": 10.0},
            "denials": 2,
            "bans_issued": 1,
        }
        two = {
            "windows": {"a": [2.0], "b": [5.0]},
            "violations": {"b": 4},
            "banned_until": {"a": 12.0},
            "denials": 3,
            "bans_issued": 0,
        }
        merged = merge_runtime_states([one, two])
        assert merged["windows"] == {"a": [1.0, 2.0, 3.0], "b": [5.0]}
        assert merged["violations"] == {"a": 1, "b": 4}
        assert merged["banned_until"] == {"a": 12.0}  # latest ban wins
        assert merged["denials"] == 5
        assert merged["bans_issued"] == 1


class TestThreadLane:
    def test_serves_and_accounts(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table), workers=2, mode="thread"
        )
        with cluster as url:
            result, ids, _seeds = crawl_remote(url)
            snapshot = cluster.snapshot()
            assert snapshot.rounds["imdb"] == result.communication_rounds
            assert snapshot.requests_served > 0
        final = cluster.final_snapshot
        assert final is not None
        assert final.rounds["imdb"] >= result.communication_rounds

    def test_workers_one_is_legal(self, small_table):
        with SourceCluster(
            make_sources(small_table), workers=1, mode="thread"
        ) as url:
            _result, ids, _seeds = crawl_remote(url)
            assert ids


@needs_reuseport
class TestProcessLane:
    def test_crawl_identical_across_worker_counts(self, small_table):
        """workers=1, workers=4, and in-process: bit-identical crawls."""
        local_server = SimulatedWebDatabase(small_table, page_size=10)
        engine = CrawlerEngine(local_server, GreedyLinkSelector(), seed=1)
        seeds = sample_seed_values(
            small_table, 1, random.Random(1), min_frequency=2
        )
        local_result = engine.crawl(seeds, target_coverage=0.5)
        local_ids = sorted(engine.local_db.record_ids())

        outcomes = {}
        accountings = {}
        for workers in (1, 4):
            cluster = SourceCluster(
                make_sources(small_table), workers=workers, mode="process"
            )
            with cluster as url:
                result, ids, remote_seeds = crawl_remote(url)
            outcomes[workers] = (result, ids, remote_seeds)
            accountings[workers] = cluster.final_snapshot.accounting()

        for workers, (result, ids, remote_seeds) in outcomes.items():
            assert remote_seeds == seeds, workers
            assert ids == local_ids, workers
            assert (
                result.communication_rounds
                == local_result.communication_rounds
            ), workers
            assert result.history == local_result.history, workers
        # The merged accounting is placement-invariant: byte-identical
        # no matter how many workers served the connections.
        assert accountings[1] == accountings[4]

    def test_snapshot_merges_worker_registries(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table), workers=2, mode="process"
        )
        with cluster as url:
            _result, _ids, _seeds = crawl_remote(url)
            snapshot = cluster.snapshot()
            assert len(snapshot.payloads) == 2
            registry = snapshot.merged_registry()
            requests = registry.get("net_server_requests_total")
            assert requests.total > 0

    def test_rate_limiter_spec_reaches_workers(self, small_table):
        spec = RateLimiterSpec(max_requests=2, window_seconds=0.05)
        cluster = SourceCluster(
            make_sources(small_table),
            workers=2,
            mode="process",
            rate_limiter=spec,
        )
        with cluster as url:
            # Hammer fast enough to trip some worker's limiter; the
            # client sleeps out Retry-After, so this still completes.
            with RemoteWebDatabase(url, source="imdb") as client:
                values = client.truth_sample(6, seed=2)
                for pair in values:
                    client.submit(Query.equality(pair.attribute, pair.value))
        limiter = cluster.final_snapshot.limiter_state()
        assert limiter is not None
        assert limiter["denials"] >= 0  # state merged without error

    def test_pickle_fallback_mode_serves(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table),
            workers=2,
            mode="process",
            use_shared_memory=False,
        )
        with cluster as url:
            _result, ids, _seeds = crawl_remote(url)
            assert ids


class TestSnapshotAccounting:
    def test_accounting_excludes_placement_dependent_facts(self):
        payload = {
            "registry": {"metrics": []},
            "rounds": {"imdb": 7},
            "limiter": None,
            "cache": (5, 2, 0, 2),
            "requests_served": 9,
        }
        snapshot = ClusterSnapshot([payload])
        accounting = snapshot.accounting()
        assert accounting["rounds"] == {"imdb": 7}
        assert "cache" not in accounting
        assert "requests_served" not in accounting
        # cache stats stay reachable, just not in the invariant report
        assert snapshot.cache_stats == (5, 2, 0, 2)

    def test_rounds_sum_across_workers(self):
        payloads = [
            {
                "registry": {"metrics": []},
                "rounds": {"imdb": 3, "books": 1},
                "limiter": None,
                "cache": None,
                "requests_served": 4,
            },
            {
                "registry": {"metrics": []},
                "rounds": {"imdb": 2},
                "limiter": None,
                "cache": None,
                "requests_served": 2,
            },
        ]
        snapshot = ClusterSnapshot(payloads)
        assert snapshot.rounds == {"books": 1, "imdb": 5}
        assert snapshot.requests_served == 6
        assert snapshot.cache_stats is None


class TestClusterValidation:
    def test_workers_must_be_positive(self, small_table):
        with pytest.raises(ValueError):
            SourceCluster(make_sources(small_table), workers=0)

    def test_unknown_mode_rejected(self, small_table):
        with pytest.raises(ValueError):
            SourceCluster(make_sources(small_table), mode="fibers")

    def test_snapshot_requires_running_cluster(self, small_table):
        cluster = SourceCluster(make_sources(small_table), mode="thread")
        with pytest.raises(RuntimeError):
            cluster.snapshot()
