"""The ops/debug surface and cross-lane trace propagation, end to end.

Covers the ``/debug/*`` endpoints on a single service, server-side span
recording on the HTTP query path, the cluster's merged debug plane
(including the ``/metrics`` merged-scrape regression), and the stitched
client+server trace with its byte-identity-across-workers guarantee.
"""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.datasets import load_dataset
from repro.net import RemoteWebDatabase
from repro.net.cluster import SourceCluster, reuseport_supported
from repro.obs import CrawlTraceContext, ServerSpanTracer, stitch_traces
from repro.policies import GreedyLinkSelector
from repro.runtime.events import EventBus
from repro.server import SimulatedWebDatabase
from repro.trace import TraceSink, load_trace, validate_trace_jsonl

needs_reuseport = pytest.mark.skipif(
    not reuseport_supported(), reason="SO_REUSEPORT unavailable"
)

QUERY = "/sources/books/query?a=publisher&v=orbit"


def get(service, target, headers=None, client="t"):
    return service.handle("GET", target, headers or {}, client)


def body_json(response):
    return json.loads(response.body.decode("utf-8"))


def http_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def http_text(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def scraped_rounds(text, source="imdb"):
    match = re.search(
        rf'net_server_rounds_total{{source="{source}"}} (\d+)', text
    )
    return None if match is None else int(match.group(1))


@pytest.fixture(scope="module")
def small_table():
    return load_dataset("imdb", 400, seed=1)


def make_sources(table):
    return {"imdb": SimulatedWebDatabase(table, page_size=10)}


def crawl_remote_traced(url, client_trace=None, seed=1, target=0.4):
    """A remote crawl with X-Repro-Trace propagation switched on."""
    bus = EventBus()
    sink = None
    if client_trace is not None:
        sink = bus.attach(TraceSink(client_trace, include_timings=False))
    context = bus.attach(CrawlTraceContext(trace_id="greedy-link-s1"))
    with RemoteWebDatabase(
        url, source="imdb", trace_context=context
    ) as server:
        engine = CrawlerEngine(
            server, GreedyLinkSelector(), seed=seed, bus=bus
        )
        seeds = server.truth_seeds(1, seed=seed, min_frequency=2)
        result = engine.crawl(seeds, target_coverage=target)
    if sink is not None:
        sink.close()
    return result


class TestSingleServiceDebug:
    def test_health_defaults_to_single(self, service):
        payload = body_json(get(service, "/debug/health"))
        assert payload == {"ok": True, "mode": "single", "workers": 1}

    def test_status_reports_local_state(self, service):
        get(service, QUERY)
        payload = body_json(get(service, "/debug/status"))
        assert payload["ok"] is True
        assert payload["merged"] is False
        assert payload["mode"] == "single"
        assert payload["rounds"]["total"] == 1
        assert payload["rounds"]["per_source"]["books"] == 1
        assert payload["requests_handled"] >= 1
        assert payload["uptime_s"] >= 0
        assert set(payload["cache"]) == {
            "hits", "misses", "evictions", "entries"
        }
        assert payload["spans"] == {"tracing": False}

    def test_spans_without_tracer(self, service):
        payload = body_json(get(service, "/debug/spans"))
        assert payload == {
            "tracing": False, "count": 0, "dropped": 0, "recent": []
        }

    def test_spans_with_tracer(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        get(service, QUERY, headers={"x-repro-trace": "t;s1/q0/p1;0"})
        payload = body_json(get(service, "/debug/spans?n=10"))
        assert payload["tracing"] is True
        assert payload["count"] == 1
        (entry,) = payload["recent"]
        assert entry["id"] == "s1/q0/p1/srv"
        assert entry["source"] == "books"
        assert entry["status"] == 200
        # A bad n degrades to the default instead of erroring.
        assert body_json(get(service, "/debug/spans?n=bogus"))["count"] == 1


class TestServerSpansOnQueryPath:
    def test_traced_request_records_phases(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        response = get(
            service, QUERY, headers={"x-repro-trace": "t;s2/q1/p1;0"}
        )
        assert response.status == 200
        (group,) = service.tracer.payload()
        assert group["ctx"] == "s2/q1/p1"
        assert group["source"] == "books"
        assert group["status"] == 200
        names = [phase[0] for phase in group["phases"]]
        assert names == ["parse", "cache", "render", "serialize"]

    def test_cache_hit_and_miss_identical_skeletons(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        get(service, QUERY, headers={"x-repro-trace": "t;s1/q0/p1;0"})
        get(service, QUERY, headers={"x-repro-trace": "t;s1/q0/p1;1"})
        miss, hit = service.tracer.payload()
        miss_phases = [(p[0], p[1]) for p in miss["phases"]]
        hit_phases = [(p[0], p[1]) for p in hit["phases"]]
        # Hit/miss placement is a worker-local accident; the canonical
        # skeleton — names AND attrs — must not betray it.
        assert miss_phases == hit_phases

    def test_unsupported_query_records_400(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        response = get(
            service,
            "/sources/books/query?a=price&v=10",
            headers={"x-repro-trace": "t;s1/q0/p1;0"},
        )
        assert response.status == 400
        (group,) = service.tracer.payload()
        assert group["status"] == 400
        # The pipeline stopped inside render (submit rejected the
        # query), so only the completed phases appear.
        assert [p[0] for p in group["phases"]] == ["parse", "cache"]

    def test_page_out_of_range_records_404(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        response = get(
            service,
            QUERY + "&page=99",
            headers={"x-repro-trace": "t;s1/q0/p99;0"},
        )
        assert response.status == 404
        (group,) = service.tracer.payload()
        assert group["status"] == 404
        render = [p for p in group["phases"] if p[0] == "render"]
        assert render and render[0][1]["records"] == 0

    def test_untraced_and_malformed_headers_record_nothing(self, service):
        service.tracer = ServerSpanTracer(include_timings=False)
        get(service, QUERY)
        get(service, QUERY, headers={"x-repro-trace": "garbage"})
        assert service.tracer.payload() == []

    def test_tracing_never_changes_the_response(self, service, books):
        plain = get(service, QUERY + "&page=2")
        service.tracer = ServerSpanTracer(include_timings=False)
        traced = get(
            service,
            QUERY + "&page=2",
            headers={"x-repro-trace": "t;s1/q0/p2;0"},
        )
        assert traced.status == plain.status
        assert traced.body == plain.body


class TestThreadClusterDebug:
    def test_debug_endpoints_and_merged_rounds(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table), workers=2, mode="thread"
        )
        with cluster as url:
            result = crawl_remote_traced(url)
            health = http_json(f"{url}/debug/health")
            assert health == {"ok": True, "mode": "thread", "workers": 2}
            status = http_json(f"{url}/debug/status")
            assert status["rounds"]["total"] == result.communication_rounds
            rounds = scraped_rounds(http_text(f"{url}/metrics"))
            assert rounds == result.communication_rounds

    def test_stitched_trace_end_to_end(self, small_table, tmp_path):
        server_trace = tmp_path / "server.jsonl"
        client_trace = tmp_path / "client.jsonl"
        cluster = SourceCluster(
            make_sources(small_table),
            workers=2,
            mode="thread",
            trace_spans=True,
            trace_timings=False,
            trace_path=str(server_trace),
        )
        with cluster as url:
            crawl_remote_traced(url, client_trace=client_trace)
        assert validate_trace_jsonl(server_trace) > 0
        stitched = tmp_path / "stitched.jsonl"
        stats = stitch_traces(client_trace, server_trace, stitched)
        assert validate_trace_jsonl(stitched) == stats["total_spans"]
        trace = load_trace(stitched)
        fetches = [s for s in trace.spans if s["name"] == "fetch"]
        requests = [s for s in trace.spans if s["name"] == "request"]
        assert fetches
        # Every client fetch span gained its server-side child...
        fetch_ids = {s["id"] for s in fetches}
        assert {s["parent"] for s in requests} == fetch_ids
        assert stats["stitched_groups"] == len(fetches)
        # ...and the analyzer sees the stitched lanes.
        from repro.trace import lane_breakdown

        lanes = lane_breakdown(trace)
        assert lanes is not None
        assert lanes["requests"] == len(requests)
        assert lanes["fetches"] == len(fetches)


@needs_reuseport
class TestProcessClusterDebug:
    def test_metrics_scrape_is_merged_across_workers(self, small_table):
        """Regression: a scrape must not see one worker's registry.

        The crawl's traffic rides one persistent connection (pinned to
        whichever worker accepted it); the scrape opens a fresh
        connection that the kernel may hand to the *other* worker.
        Only the merged registry makes the scraped totals equal the
        crawl's accounting no matter where either connection landed.
        """
        cluster = SourceCluster(
            make_sources(small_table), workers=2, mode="process"
        )
        with cluster as url:
            result = crawl_remote_traced(url)
            for _ in range(4):  # several fresh connections, any worker
                rounds = scraped_rounds(http_text(f"{url}/metrics"))
                assert rounds == result.communication_rounds
            snapshot = cluster.snapshot()
            assert sum(snapshot.rounds.values()) == rounds

    def test_status_merged_and_health_local(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table), workers=2, mode="process"
        )
        with cluster as url:
            result = crawl_remote_traced(url)
            status = http_json(f"{url}/debug/status")
            assert status["merged"] is True
            assert status["mode"] == "process"
            assert status["workers"] == 2
            assert status["rounds"]["total"] == result.communication_rounds
            assert status["requests_handled"] > 0
            health = http_json(f"{url}/debug/health")
            assert health == {"ok": True, "mode": "process", "workers": 2}
            spans = http_json(f"{url}/debug/spans")
            assert spans["tracing"] is False
            assert spans["recent"] == []

    def test_server_trace_byte_identical_across_worker_counts(
        self, small_table, tmp_path
    ):
        contents = {}
        for workers in (1, 2):
            path = tmp_path / f"server-{workers}.jsonl"
            cluster = SourceCluster(
                make_sources(small_table),
                workers=workers,
                mode="process",
                trace_spans=True,
                trace_timings=False,
                trace_path=str(path),
            )
            with cluster as url:
                crawl_remote_traced(url)
            assert validate_trace_jsonl(path) > 0
            contents[workers] = path.read_bytes()
        assert contents[1] == contents[2]

    def test_merged_spans_endpoint(self, small_table):
        cluster = SourceCluster(
            make_sources(small_table),
            workers=2,
            mode="process",
            trace_spans=True,
            trace_timings=False,
        )
        with cluster as url:
            result = crawl_remote_traced(url)
            spans = http_json(f"{url}/debug/spans?n=500")
            assert spans["tracing"] is True
            assert spans["count"] == result.communication_rounds
            assert spans["recent"]
            assert all(
                entry["id"].split("/")[-1].startswith("srv")
                for entry in spans["recent"]
            )
