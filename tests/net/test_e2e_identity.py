"""End-to-end pin: a crawl over HTTP is byte-identical to in-process.

This is the acceptance bar for the network lane — the remote crawl must
discover the *same record set* in the *same number of communication
rounds*, so every result in the paper reproduction can be produced over
a real network boundary without renumbering anything.
"""

import random

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.experiments.harness import sample_seed_values
from repro.net import RemoteWebDatabase
from repro.policies import GreedyFrequencySelector, GreedyLinkSelector
from repro.server import SimulatedWebDatabase


def crawl_local(table, selector, seed=1, target=0.6):
    server = SimulatedWebDatabase(table, page_size=10)
    engine = CrawlerEngine(server, selector, seed=seed)
    seeds = sample_seed_values(table, 1, random.Random(seed), min_frequency=2)
    result = engine.crawl(seeds, target_coverage=target)
    return result, sorted(engine.local_db.record_ids()), seeds


def crawl_remote(url, selector, seed=1, target=0.6, **client_kwargs):
    with RemoteWebDatabase(url, source="imdb", **client_kwargs) as server:
        engine = CrawlerEngine(server, selector, seed=seed)
        seeds = server.truth_seeds(1, seed=seed, min_frequency=2)
        result = engine.crawl(seeds, target_coverage=target)
        return result, sorted(engine.local_db.record_ids()), seeds


class TestGreedyLinkIdentity:
    def test_record_set_and_rounds_identical(self, served, imdb_table):
        url, _service = served
        local_result, local_ids, local_seeds = crawl_local(
            imdb_table, GreedyLinkSelector()
        )
        remote_result, remote_ids, remote_seeds = crawl_remote(
            url, GreedyLinkSelector()
        )
        assert remote_seeds == local_seeds
        assert remote_ids == local_ids
        assert (
            remote_result.communication_rounds
            == local_result.communication_rounds
        )
        assert remote_result.queries_issued == local_result.queries_issued
        assert (
            remote_result.records_harvested == local_result.records_harvested
        )
        assert remote_result.stopped_by == local_result.stopped_by
        assert remote_result.history == local_result.history

    @pytest.mark.parametrize("depth", [0, 1, 4])
    def test_identity_holds_at_any_pipeline_depth(
        self, served, imdb_table, depth
    ):
        url, _service = served
        local_result, local_ids, _seeds = crawl_local(
            imdb_table, GreedyLinkSelector()
        )
        remote_result, remote_ids, _seeds = crawl_remote(
            url, GreedyLinkSelector(), pipeline_depth=depth
        )
        assert remote_ids == local_ids
        assert (
            remote_result.communication_rounds
            == local_result.communication_rounds
        )

    def test_xml_wire_format_identical_too(self, served, imdb_table):
        url, _service = served
        local_result, local_ids, _seeds = crawl_local(
            imdb_table, GreedyLinkSelector()
        )
        remote_result, remote_ids, _seeds = crawl_remote(
            url, GreedyLinkSelector(), format="xml"
        )
        assert remote_ids == local_ids
        assert (
            remote_result.communication_rounds
            == local_result.communication_rounds
        )


class TestFieldOrderSensitiveDataset:
    """ebay's field order is not alphabetical, unlike imdb's.

    A serializer that sorts record fields passes every imdb identity
    test and still diverges on ebay: extraction order changes value
    first-seen order, which changes GL tie-breaks mid-crawl (the
    totals can even re-converge, hiding it).  Regression test for the
    ``sort_keys=True`` bug in ``render_page_json``.
    """

    @pytest.mark.parametrize("wire_format", ["json", "xml"])
    def test_ebay_step_histories_identical(self, wire_format):
        from repro.datasets import load_dataset
        from repro.net import ServerThread, SourceService

        table = load_dataset("ebay", 600, seed=3)
        local_server = SimulatedWebDatabase(table, page_size=10)
        engine = CrawlerEngine(local_server, GreedyLinkSelector(), seed=3)
        seeds = sample_seed_values(table, 1, random.Random(3), min_frequency=2)
        local_result = engine.crawl(seeds, target_coverage=0.5)
        local_ids = sorted(engine.local_db.record_ids())

        service = SourceService(
            {"ebay": SimulatedWebDatabase(table, page_size=10)}
        )
        with ServerThread(service) as url:
            with RemoteWebDatabase(
                url, source="ebay", format=wire_format
            ) as remote:
                engine2 = CrawlerEngine(remote, GreedyLinkSelector(), seed=3)
                remote_seeds = remote.truth_seeds(1, seed=3, min_frequency=2)
                remote_result = engine2.crawl(remote_seeds, target_coverage=0.5)
                remote_ids = sorted(engine2.local_db.record_ids())

        assert remote_seeds == seeds
        assert remote_ids == local_ids
        # The full per-step history, not just the endpoint: the bug
        # this pins produced identical totals with swapped steps.
        assert remote_result.history == local_result.history


class TestOtherPolicies:
    def test_greedy_frequency_identity(self, served, imdb_table):
        url, _service = served
        local_result, local_ids, _seeds = crawl_local(
            imdb_table, GreedyFrequencySelector(), target=0.5
        )
        remote_result, remote_ids, _seeds = crawl_remote(
            url, GreedyFrequencySelector(), target=0.5
        )
        assert remote_ids == local_ids
        assert (
            remote_result.communication_rounds
            == local_result.communication_rounds
        )
