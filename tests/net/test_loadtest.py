"""Tests for the load-test harness and its regression-gate output."""

import json

import pytest

from repro.metrics import MetricsRegistry
from repro.net import run_loadtest, write_bench
from repro.net.loadtest import LoadTestError, _percentile


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(n) for n in range(1, 101)]
        assert _percentile(samples, 0.50) == 50.0
        assert _percentile(samples, 0.95) == 95.0
        assert _percentile(samples, 0.99) == 99.0
        assert _percentile(samples, 1.0) == 100.0

    def test_small_and_empty(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.99) == 3.0


class TestHarness:
    def test_fifty_sessions_report(self, served):
        url, service = served
        registry = MetricsRegistry()
        report = run_loadtest(
            url,
            "imdb",
            sessions=50,
            queries_per_session=2,
            value_pool=32,
            registry=registry,
        )
        assert report.sessions == 50
        assert report.requests >= 100  # ≥1 page per query
        assert report.errors == 0
        assert report.wall_seconds > 0
        assert report.requests_per_sec > 0
        assert 0 < report.latency_p50 <= report.latency_p95
        assert report.latency_p95 <= report.latency_p99 <= report.latency_max
        assert len(report.samples) == report.requests
        # Latency percentiles land in the registry for scraping.
        gauge = registry.get("net_loadtest_latency_seconds")
        assert gauge.value(quantile="0.95") == report.latency_p95
        # The service really served that traffic (the serial
        # calibration leg adds a few rounds on top).
        assert service.sources["imdb"].rounds >= report.requests

    def test_sessions_are_isolated_clients(self, served):
        url, _service = served
        report = run_loadtest(
            url, "imdb", sessions=8, queries_per_session=1, value_pool=8
        )
        assert report.requests >= 8

    def test_defaults_to_first_source(self, served):
        url, _service = served
        report = run_loadtest(url, sessions=2, queries_per_session=1)
        assert report.source == "books"

    def test_validation(self, served):
        url, _service = served
        with pytest.raises(LoadTestError):
            run_loadtest(url, sessions=0)
        with pytest.raises(LoadTestError):
            run_loadtest("nonsense://x")


class TestBenchOutput:
    def test_gate_compatible_shape(self, served, tmp_path):
        url, _service = served
        report = run_loadtest(
            url, "imdb", sessions=10, queries_per_session=1, value_pool=8
        )
        path = tmp_path / "BENCH_net.json"
        payload = write_bench(report, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["scale"] == 1.0
        policy = on_disk["policies"]["loadtest"]
        assert policy["speedup"] == report.concurrency_speedup
        assert policy["latency_p99"] == report.latency_p99

    def test_regression_script_accepts_it(self, served, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        url, _service = served
        report = run_loadtest(
            url, "imdb", sessions=10, queries_per_session=1, value_pool=8
        )
        path = tmp_path / "BENCH_net.json"
        write_bench(report, path)
        script = (
            Path(__file__).resolve().parents[2]
            / "scripts"
            / "check_bench_regression.py"
        )
        # A file gates cleanly against itself: shape is compatible.
        done = subprocess.run(
            [sys.executable, str(script), str(path), str(path)],
            capture_output=True,
            text=True,
        )
        assert done.returncode == 0, done.stdout + done.stderr
