"""Unit tests for the wire protocol: query encoding, JSON pages, descriptors."""

import pytest
from urllib.parse import parse_qs, urlsplit

from repro.core import ConjunctiveQuery, Query, Record, Schema
from repro.core.values import AttributeValue
from repro.net.protocol import (
    ProtocolError,
    SourceDescriptor,
    decode_query_params,
    encode_query_params,
    error_json,
    page_from_json,
    page_to_json,
    parse_error,
    parse_page_json,
    query_url,
    render_page_json,
)
from repro.server import SimulatedWebDatabase, paginate

schema = Schema.of("title", author={"multivalued": True})


def roundtrip_query(query):
    params = encode_query_params(query)
    # Through a real URL, like the server sees it.
    url = query_url("http://h/sources/s/query", query)
    parsed = parse_qs(urlsplit(url).query, keep_blank_values=True)
    parsed.pop("page"), parsed.pop("format")
    assert decode_query_params(parsed) == query
    # And straight from the pair list.
    direct = {}
    for name, value in params:
        direct.setdefault(name, []).append(value)
    return decode_query_params(direct)


class TestQueryParams:
    def test_equality_roundtrip(self):
        query = Query.equality("author", "knuth")
        assert roundtrip_query(query) == query

    def test_keyword_roundtrip(self):
        query = Query.keyword("deep web")
        assert roundtrip_query(query) == query

    def test_conjunctive_roundtrip(self):
        query = ConjunctiveQuery.of(
            AttributeValue("author", "knuth"),
            AttributeValue("title", "art of programming"),
        )
        assert roundtrip_query(query) == query

    def test_url_characters_survive(self):
        query = Query.equality("title", "a&b =? #100% +x/y")
        assert roundtrip_query(query) == query

    def test_kw_with_pairs_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query_params({"kw": ["x"], "a": ["t"], "v": ["y"]})

    def test_mismatched_pairs_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query_params({"a": ["t", "u"], "v": ["y"]})

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            decode_query_params({})


def sample_page(report_total=True):
    matches = [
        Record.build(3, schema, title="alpha", author=["x", "y"]),
        Record.build(7, schema, title="beta"),
    ]
    return paginate(
        Query.equality("author", "x"), matches, 1, 10, report_total=report_total
    )


class TestJsonPages:
    def test_roundtrip(self):
        page = sample_page()
        assert parse_page_json(render_page_json(page)) == page

    def test_roundtrip_without_total(self):
        page = sample_page(report_total=False)
        parsed = parse_page_json(render_page_json(page))
        assert parsed == page
        assert parsed.total_matches is None

    def test_deterministic_bytes(self):
        assert render_page_json(sample_page()) == render_page_json(sample_page())

    def test_field_order_survives_the_wire(self):
        # Field order is part of the lane-identity contract: extraction
        # sees values in field order, and GL tie-breaks on first-seen
        # order, so the serializer must NOT alphabetize record fields
        # (``sort_keys=True`` once did, and ebay crawls diverged).
        page = sample_page()
        parsed = parse_page_json(render_page_json(page))
        for original, roundtripped in zip(page.records, parsed.records):
            assert list(original.fields) == list(roundtripped.fields)
        records_section = render_page_json(page).split('"records"', 1)[1]
        assert records_section.index('"title"') < records_section.index(
            '"author"'
        )

    def test_schema_tag_enforced(self):
        payload = page_to_json(sample_page())
        payload["schema"] = "other/9"
        with pytest.raises(ProtocolError):
            page_from_json(payload)

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            parse_page_json("not json at all")
        with pytest.raises(ProtocolError):
            parse_page_json("[1,2,3]")


class TestDescriptor:
    def test_roundtrip_via_json(self, books):
        source = SimulatedWebDatabase(books, page_size=2)
        descriptor = SourceDescriptor.for_source("books", source)
        assert SourceDescriptor.from_json(descriptor.to_json()) == descriptor

    def test_rebuilt_interface_validates_like_the_server(self, books):
        source = SimulatedWebDatabase(books, page_size=2)
        rebuilt = SourceDescriptor.for_source("books", source).build_interface()
        good = Query.equality("author", "knuth")
        bad = Query.equality("price", "10")  # not queriable
        source.interface.validate(good)
        rebuilt.validate(good)
        for interface in (source.interface, rebuilt):
            with pytest.raises(Exception):
                interface.validate(bad)

    def test_bad_payload_rejected(self):
        with pytest.raises(ProtocolError):
            SourceDescriptor.from_json({"name": "x"})


class TestErrors:
    def test_roundtrip(self):
        body = error_json("rate-limited", "slow down", retryAfter=1.5)
        code, message = parse_error(body.encode("utf-8"))
        assert code == "rate-limited"
        assert message == "slow down"

    def test_non_json_degrades(self):
        code, message = parse_error(b"<html>oops</html>")
        assert code == "internal"
        assert "oops" in message
