"""Tests for the HTTP front end: routing, wire formats, limits, transport."""

import json
import threading
import urllib.request
from urllib.error import HTTPError
from urllib.parse import urlencode

import pytest

from repro.core import Query
from repro.metrics import MetricsRegistry
from repro.net import ServerThread, SourceService
from repro.net.protocol import parse_page_json
from repro.net.server import ThreadedSourceServer
from repro.server import RateLimiter, SimulatedWebDatabase, parse_page


def get(service, target, headers=None, client="t"):
    return service.handle("GET", target, headers or {}, client)


def body_json(response):
    return json.loads(response.body.decode("utf-8"))


class TestRouting:
    def test_index_lists_sources(self, service):
        response = get(service, "/")
        assert response.status == 200
        assert body_json(response)["sources"] == ["books", "imdb"]

    def test_healthz(self, service):
        assert body_json(get(service, "/healthz")) == {"ok": True}

    def test_unknown_route_404(self, service):
        response = get(service, "/nope")
        assert response.status == 404
        assert body_json(response)["error"] == "not-found"

    def test_unknown_source_404(self, service):
        assert get(service, "/sources/ghost/query?a=x&v=y").status == 404

    def test_method_not_allowed(self, service):
        response = service.handle("POST", "/healthz", {}, "t")
        assert response.status == 405

    def test_meta_descriptor(self, service):
        payload = body_json(get(service, "/sources/books/meta"))
        assert payload["name"] == "books"
        assert payload["pageSize"] == 2
        assert "price" not in payload["interface"]["queriable"]

    def test_handle_never_raises(self, imdb_table):
        class Broken(SimulatedWebDatabase):
            def submit(self, query, page_number=1):
                raise RuntimeError("boom")

        service = SourceService({"b": Broken(imdb_table)})
        response = get(service, "/sources/b/query?a=genre&v=drama")
        assert response.status == 500
        assert body_json(response)["error"] == "internal"


class TestQueryRoute:
    def test_json_page_matches_in_process(self, service, books):
        source = SimulatedWebDatabase(books, page_size=2)
        expected = source.submit(Query.equality("publisher", "orbit"), 2)
        response = get(
            service,
            "/sources/books/query?" + urlencode(
                [("a", "publisher"), ("v", "orbit"), ("page", "2")]
            ),
        )
        assert response.status == 200
        assert parse_page_json(response.body.decode("utf-8")) == expected

    def test_xml_page_matches_in_process(self, service, books):
        source = SimulatedWebDatabase(books, page_size=2)
        expected = source.submit(Query.equality("publisher", "orbit"))
        response = get(
            service,
            "/sources/books/query?a=publisher&v=orbit&format=xml",
        )
        assert response.status == 200
        assert response.content_type.startswith("application/xml")
        assert parse_page(response.body.decode("utf-8")) == expected

    def test_unsupported_query_400_costs_no_round(self, service):
        before = service.sources["books"].rounds
        response = get(service, "/sources/books/query?a=price&v=10")
        assert response.status == 400
        assert body_json(response)["error"] == "unsupported-query"
        assert service.sources["books"].rounds == before

    def test_page_out_of_range_404_costs_a_round(self, service):
        before = service.sources["books"].rounds
        response = get(
            service, "/sources/books/query?a=publisher&v=orbit&page=99"
        )
        assert response.status == 404
        assert body_json(response)["error"] == "page-out-of-range"
        assert service.sources["books"].rounds == before + 1

    def test_bad_params_400(self, service):
        assert get(service, "/sources/books/query").status == 400
        assert get(
            service, "/sources/books/query?a=publisher&v=orbit&page=x"
        ).status == 400
        assert get(
            service, "/sources/books/query?a=publisher&v=orbit&format=csv"
        ).status == 400

    def test_rounds_accumulate(self, service):
        get(service, "/sources/books/query?a=publisher&v=orbit")
        get(service, "/sources/books/query?a=publisher&v=orbit&page=2")
        assert service.sources["books"].rounds == 2


class TestRateLimiting:
    def fake_clock(self):
        state = {"now": 0.0}

        def clock():
            return state["now"]

        return state, clock

    def make_service(self, books, **limiter_kwargs):
        state, clock = self.fake_clock()
        limiter = RateLimiter(clock=clock, **limiter_kwargs)
        service = SourceService(
            {"books": SimulatedWebDatabase(books, page_size=2)},
            rate_limiter=limiter,
        )
        return service, state

    def test_429_with_retry_after(self, books):
        service, state = self.make_service(
            books, max_requests=2, window_seconds=10.0
        )
        target = "/sources/books/query?a=publisher&v=orbit"
        assert get(service, target).status == 200
        state["now"] = 1.0
        assert get(service, target).status == 200
        state["now"] = 4.0
        denied = get(service, target)
        assert denied.status == 429
        payload = body_json(denied)
        assert payload["error"] == "rate-limited"
        # The exact reset: the oldest admitted request (t=0) leaves the
        # 10s window at t=10, so 6 seconds from now (t=4).
        assert payload["retryAfter"] == pytest.approx(6.0)
        assert ("Retry-After", "6") in denied.headers

    def test_clients_are_independent(self, books):
        service, _state = self.make_service(
            books, max_requests=1, window_seconds=10.0
        )
        target = "/sources/books/query?a=publisher&v=orbit"
        assert get(service, target, client="a").status == 200
        assert get(service, target, client="b").status == 200
        assert get(service, target, client="a").status == 429

    def test_x_client_id_overrides_peer(self, books):
        service, _state = self.make_service(
            books, max_requests=1, window_seconds=10.0
        )
        target = "/sources/books/query?a=publisher&v=orbit"
        headers = {"x-client-id": "same"}
        assert get(service, target, headers, client="a").status == 200
        assert get(service, target, headers, client="b").status == 429

    def test_metadata_routes_not_limited(self, books):
        service, _state = self.make_service(
            books, max_requests=1, window_seconds=10.0
        )
        get(service, "/sources/books/query?a=publisher&v=orbit")
        assert get(service, "/sources/books/meta").status == 200
        assert get(service, "/healthz").status == 200


class TestTruthRoutes:
    def test_size(self, service, books):
        payload = body_json(get(service, "/sources/books/truth/size"))
        assert payload["size"] == len(books)

    def test_seeds_mirror_sample_seed_values(self, service, books):
        import random

        from repro.experiments.harness import sample_seed_values

        expected = sample_seed_values(
            books, 2, random.Random(7), min_frequency=2
        )
        payload = body_json(
            get(service, "/sources/books/truth/seeds?n=2&seed=7&min_frequency=2")
        )
        assert payload["values"] == [[v.attribute, v.value] for v in expected]

    def test_sample_is_deterministic_and_queriable(self, service, books):
        a = body_json(get(service, "/sources/books/truth/sample?n=5&seed=3"))
        b = body_json(get(service, "/sources/books/truth/sample?n=5&seed=3"))
        assert a == b
        assert all(attr != "price" for attr, _value in a["values"])

    def test_sealed_when_truth_not_exposed(self, books):
        service = SourceService(
            {"books": SimulatedWebDatabase(books, page_size=2)},
            expose_truth=False,
        )
        assert get(service, "/sources/books/truth/size").status == 404
        # The crawl surface stays open.
        assert get(service, "/sources/books/meta").status == 200


class TestMetricsRoute:
    def test_prometheus_text_with_rounds(self, service):
        get(service, "/sources/books/query?a=publisher&v=orbit")
        response = get(service, "/metrics")
        assert response.status == 200
        text = response.body.decode("utf-8")
        assert "net_server_requests_total" in text
        assert 'net_server_rounds_total{source="books"} 1' in text


class TestAsyncTransport:
    def test_keep_alive_serves_many_requests_per_connection(self, served):
        url, service = served
        import http.client

        host = url.split("//")[1]
        connection = http.client.HTTPConnection(host, timeout=10)
        try:
            for page in (1, 2, 1):
                connection.request(
                    "GET",
                    f"/sources/books/query?a=publisher&v=orbit&page={page}",
                )
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
        assert service.sources["books"].rounds == 3

    def test_404_and_parallel_clients(self, served):
        url, _service = served

        def fetch(path):
            try:
                with urllib.request.urlopen(url + path, timeout=10) as r:
                    return r.status
            except HTTPError as error:
                return error.code

        results = []
        threads = [
            threading.Thread(
                target=lambda p=path: results.append(fetch(p))
            )
            for path in ["/healthz", "/sources", "/ghost", "/healthz"]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == [200, 200, 200, 404]

    def test_clean_shutdown_releases_port(self, service):
        thread = ServerThread(service)
        url = thread.start()
        host, port = url.split("//")[1].split(":")
        thread.stop()
        # The port must be rebindable immediately (no leaked listener).
        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            probe.bind((host, int(port)))
        finally:
            probe.close()


class TestThreadedFallback:
    def test_same_handler_same_answers(self, service, books):
        from repro.core import Query

        expected = SimulatedWebDatabase(books, page_size=2).submit(
            Query.equality("publisher", "orbit")
        )
        server = ThreadedSourceServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                server.url + "/sources/books/query?a=publisher&v=orbit",
                timeout=10,
            ) as response:
                assert response.status == 200
                page = parse_page_json(response.read().decode("utf-8"))
            assert page == expected
        finally:
            server.shutdown()
            thread.join(timeout=5)
