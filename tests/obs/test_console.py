"""The ``repro top`` console: frames, metric tailing, refresh loop."""

from __future__ import annotations

import io
import json

from repro.obs import render_frame, run_top, tail_metrics
from repro.obs.console import CLEAR

STATUS = {
    "ok": True,
    "mode": "process",
    "workers": 4,
    "uptime_s": 12.5,
    "requests_handled": 120,
    "rounds": {"total": 100, "per_source": {"imdb": 70, "books": 30}},
    "cache": {"hits": 30, "misses": 10, "evictions": 1, "entries": 9},
    "limiter": {"denials": 3, "bans_issued": 1},
    "spans": {"tracing": True, "groups": 42, "dropped": 0},
    "merged": True,
}


class TestRenderFrame:
    def test_static_frame(self):
        frame = render_frame(STATUS)
        assert "process x4 merged" in frame
        assert "requests 120" in frame
        assert "rounds   100" in frame
        assert "hit 75.0%" in frame
        assert "denials 3" in frame
        assert "42 recorded" in frame
        assert "imdb" in frame and "books" in frame

    def test_rate_from_consecutive_snapshots(self):
        prev = dict(STATUS, rounds={"total": 80, "per_source": {}})
        frame = render_frame(STATUS, prev=prev, elapsed=2.0)
        assert "(10.0/s)" in frame

    def test_minimal_status_renders(self):
        frame = render_frame({"mode": "single", "workers": 1})
        assert "single x1" in frame
        assert "cache" not in frame
        assert "limiter" not in frame

    def test_crawl_metrics_folded_in(self):
        metrics = {
            "frontier_pending": 17.0,
            "fleet_sources_active": 5.0,
        }
        frame = render_frame(STATUS, metrics=metrics)
        assert "frontier 17 pending" in frame
        assert "fleet_sources_active" in frame


class TestTailMetrics:
    def test_reads_last_valid_snapshot(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        lines = [
            json.dumps({
                "schema": "repro-metrics/1", "step": 1, "label": "a",
                "samples": [{"name": "frontier_pending", "kind": "gauge",
                             "labels": {}, "value": 4}],
            }),
            json.dumps({
                "schema": "repro-metrics/1", "step": 2, "label": "a",
                "samples": [
                    {"name": "frontier_pending", "kind": "gauge",
                     "labels": {}, "value": 9},
                    {"name": "rounds", "kind": "counter",
                     "labels": {"policy": "gl"}, "value": 3},
                    {"name": "latency", "kind": "histogram", "labels": {},
                     "value": {"buckets": [], "sum": 1.0, "count": 7}},
                ],
            }),
            '{"partial":',  # racing writer mid-line
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        flat = tail_metrics(path)
        assert flat["frontier_pending"] == 9.0
        assert flat["rounds{policy=gl}"] == 3.0
        assert flat["latency"] == 7.0  # histograms contribute their count

    def test_missing_file_degrades_to_empty(self, tmp_path):
        assert tail_metrics(tmp_path / "nope.jsonl") == {}

    def test_garbage_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        assert tail_metrics(path) == {}


class TestRunTop:
    def test_fixed_iterations_with_injected_fetch(self):
        statuses = iter([STATUS, dict(STATUS, requests_handled=150)])
        out = io.StringIO()
        frames = run_top(
            "h", 1, interval=0.0, iterations=2,
            fetch=lambda: next(statuses), out=out, clear=False,
        )
        assert frames == 2
        text = out.getvalue()
        assert text.count("repro top") == 2
        assert CLEAR not in text
        assert "requests 150" in text

    def test_clear_between_live_frames(self):
        out = io.StringIO()
        run_top("h", 1, interval=0.0, iterations=2,
                fetch=lambda: STATUS, out=out, clear=True)
        assert out.getvalue().count(CLEAR) == 1  # not before the first

    def test_fetch_failure_reported_not_raised(self):
        def fetch():
            raise ConnectionRefusedError("no server")

        out = io.StringIO()
        frames = run_top("h", 1, interval=0.0, iterations=1,
                         fetch=fetch, out=out, clear=False)
        assert frames == 1
        assert "fetch failed" in out.getvalue()
