"""CrawlTraceContext: span-id mirroring and header construction."""

from __future__ import annotations

import pytest

from repro.obs import HEADER_NAME, CrawlTraceContext
from repro.runtime.events import QueryIssued, StepStarted


class TestTraceIdValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CrawlTraceContext(trace_id="")

    def test_semicolon_rejected(self):
        with pytest.raises(ValueError):
            CrawlTraceContext(trace_id="a;b")


class TestIdMirroring:
    def test_mirrors_trace_sink_assignment(self):
        ctx = CrawlTraceContext(trace_id="greedy-link-s0")
        assert ctx.fetch_parent(1) is None
        ctx.handle(StepStarted(step=1))
        assert ctx.fetch_parent(1) is None  # no query issued yet
        assert ctx.current_label() == "s1"
        ctx.handle(QueryIssued(query=None))
        assert ctx.fetch_parent(1) == "s1/q0/p1"
        assert ctx.current_label() == "s1/q0"
        ctx.handle(QueryIssued(query=None))
        assert ctx.fetch_parent(3) == "s1/q1/p3"

    def test_step_resets_query_counter(self):
        ctx = CrawlTraceContext()
        ctx.handle(StepStarted(step=1))
        ctx.handle(QueryIssued(query=None))
        ctx.handle(QueryIssued(query=None))
        ctx.handle(StepStarted(step=2))
        assert ctx.fetch_parent(1) is None
        ctx.handle(QueryIssued(query=None))
        assert ctx.fetch_parent(2) == "s2/q0/p2"

    def test_query_before_any_step_is_ignored(self):
        ctx = CrawlTraceContext()
        ctx.handle(QueryIssued(query=None))
        assert ctx.fetch_parent(1) is None
        assert ctx.current_label() is None

    def test_wants_phase_events(self):
        # StepStarted is only emitted when a phase-interested sink is
        # attached; the context must declare that interest itself.
        assert CrawlTraceContext.wants_phases is True


class TestWireHeader:
    def test_header_pair(self):
        ctx = CrawlTraceContext(trace_id="bfs-s3")
        assert ctx.wire_header(1) is None
        ctx.handle(StepStarted(step=4))
        ctx.handle(QueryIssued(query=None))
        assert ctx.wire_header(2) == (HEADER_NAME, "bfs-s3;s4/q0/p2;0")
        assert ctx.wire_header(2, attempt=2) == (
            HEADER_NAME,
            "bfs-s3;s4/q0/p2;2",
        )
