"""SamplingProfiler: span-labelled folded stacks off a live thread."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import SamplingProfiler


def spin_until(stop):
    while not stop.is_set():
        sum(range(200))


def wait_for_samples(profiler, count=5, timeout=5.0):
    deadline = time.monotonic() + timeout
    while profiler.sample_count < count and time.monotonic() < deadline:
        time.sleep(0.01)
    return profiler.sample_count


class TestSampling:
    def test_samples_target_thread_with_label(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_until, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(
            interval=0.001,
            label_provider=lambda: "s1/q0",
            target_thread=worker,
        )
        try:
            profiler.start()
            assert wait_for_samples(profiler) >= 5
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        folded = profiler.folded()
        assert folded
        assert all(line.startswith("s1/q0;") for line in folded)
        # Frames are basename:function; the spin loop must show up.
        assert any("test_profiler.py:spin_until" in line for line in folded)
        # Folded format: "frame;frame;... count".
        for line in folded:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack

    def test_missing_label_files_under_idle(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_until, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(interval=0.001, target_thread=worker)
        try:
            profiler.start()
            wait_for_samples(profiler)
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        assert profiler.folded()
        assert all(line.startswith("idle;") for line in profiler.folded())

    def test_raising_label_provider_degrades_to_idle(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_until, args=(stop,))
        worker.start()

        def boom():
            raise RuntimeError("label unavailable")

        profiler = SamplingProfiler(
            interval=0.001, label_provider=boom, target_thread=worker
        )
        try:
            profiler.start()
            wait_for_samples(profiler)
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        assert all(line.startswith("idle;") for line in profiler.folded())

    def test_write_folded(self, tmp_path):
        stop = threading.Event()
        worker = threading.Thread(target=spin_until, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(interval=0.001, target_thread=worker)
        try:
            with profiler:
                wait_for_samples(profiler)
        finally:
            stop.set()
            worker.join()
        path = tmp_path / "profile.folded"
        written = profiler.write_folded(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == written
        assert lines == sorted(lines)  # deterministic ordering


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.05)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.05)
        profiler.start()
        profiler.stop()
        profiler.stop()
