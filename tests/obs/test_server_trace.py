"""Server-side span groups: recording, merging, placement invariance."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    ServerSpanTracer,
    merge_groups,
    parse_trace_header,
    write_server_trace,
)
from repro.obs.server_trace import (
    SERVER_PHASES,
    group_public,
    group_root_id,
    group_span_lines,
)
from repro.trace import load_trace, validate_trace_jsonl


def record_group(
    tracer,
    ctx="s1/q0/p1",
    trace="t",
    status=200,
    attempt=0,
    records=3,
):
    rec = tracer.begin(f"{trace};{ctx};{attempt}")
    rec.source = "imdb"
    for phase in ("limiter", "parse", "cache"):
        rec.start(phase)
        rec.end()
    rec.start("render")
    rec.end(records=records, bytes=100)
    rec.start("serialize")
    rec.end()
    tracer.commit(rec, status)


class TestParseTraceHeader:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "t",
            "t;notactx",
            "t;s1/q0;0",  # not a fetch-span context
            ";s1/q0/p1;0",  # empty trace id
            "t;s1/q0/p1x;0",
        ],
    )
    def test_malformed_means_no_tracing(self, value):
        assert parse_trace_header(value) is None

    def test_parses_full_header(self):
        assert parse_trace_header("greedy-s0;s3/q2/p4;1") == (
            "greedy-s0",
            "s3/q2/p4",
            3,
            2,
            4,
            1,
        )

    def test_attempt_defaults_to_zero(self):
        assert parse_trace_header("t;s1/q0/p1") == ("t", "s1/q0/p1", 1, 0, 1, 0)
        assert parse_trace_header("t;s1/q0/p1;x")[5] == 0
        assert parse_trace_header("t;s1/q0/p1;-3")[5] == 0


class TestTracer:
    def test_begin_returns_none_without_header(self):
        tracer = ServerSpanTracer()
        assert tracer.begin(None) is None
        assert tracer.begin("garbage") is None

    def test_commit_records_group(self):
        tracer = ServerSpanTracer(include_timings=False)
        record_group(tracer, status=200)
        (group,) = tracer.payload()
        assert group["trace"] == "t"
        assert group["ctx"] == "s1/q0/p1"
        assert (group["step"], group["q"], group["page"]) == (1, 0, 1)
        assert group["source"] == "imdb"
        assert group["status"] == 200
        assert [p[0] for p in group["phases"]] == list(SERVER_PHASES)
        assert tracer.stats() == {"groups": 1, "dropped": 0}

    def test_max_groups_drops_beyond_bound(self):
        tracer = ServerSpanTracer(include_timings=False, max_groups=2)
        for page in (1, 2, 3):
            record_group(tracer, ctx=f"s1/q0/p{page}")
        assert tracer.stats() == {"groups": 2, "dropped": 1}

    def test_tail_returns_most_recent(self):
        tracer = ServerSpanTracer(include_timings=False)
        for page in (1, 2, 3):
            record_group(tracer, ctx=f"s1/q0/p{page}")
        tail = tracer.tail(2)
        assert [g["page"] for g in tail] == [2, 3]

    def test_timed_recorder_measures_phases(self):
        tracer = ServerSpanTracer(include_timings=True)
        record_group(tracer)
        (group,) = tracer.payload()
        assert all(p[2] >= 0.0 for p in group["phases"])


class TestMergeAndRootIds:
    def test_merge_sorts_by_context_not_arrival(self):
        a = ServerSpanTracer(include_timings=False)
        b = ServerSpanTracer(include_timings=False)
        record_group(a, ctx="s2/q0/p1")
        record_group(b, ctx="s1/q0/p2")
        record_group(b, ctx="s1/q0/p1")
        merged = merge_groups([a.payload(), b.payload()])
        assert [(g["step"], g["page"]) for g in merged] == [
            (1, 1),
            (1, 2),
            (2, 1),
        ]

    def test_retry_attempts_stay_distinct(self):
        tracer = ServerSpanTracer(include_timings=False)
        record_group(tracer, attempt=0)
        record_group(tracer, attempt=1)
        groups = merge_groups([tracer.payload()])
        assert group_root_id(groups[0]) == "s1/q0/p1/srv"
        assert group_root_id(groups[1]) == "s1/q0/p1/srv1"
        lines = group_span_lines(groups[1], 0, timed=False)
        root = json.loads(lines[0])
        assert root["attrs"]["attempt"] == 1


class TestWriteServerTrace:
    def test_output_validates_as_repro_trace(self, tmp_path):
        tracer = ServerSpanTracer(include_timings=False)
        record_group(tracer, ctx="s1/q0/p1")
        record_group(tracer, ctx="s1/q0/p2")
        path = tmp_path / "server.jsonl"
        spans = write_server_trace(path, tracer.payload(),
                                   include_timings=False)
        assert spans == 2 * (1 + len(SERVER_PHASES))
        assert validate_trace_jsonl(path) == spans
        trace = load_trace(path)
        assert trace.header["side"] == "server"
        assert trace.header["trace"] == "t"

    def test_bytes_identical_across_worker_placements(self, tmp_path):
        """The core placement-invariance claim, minus the sockets."""
        contexts = [f"s{s}/q{q}/p{p}"
                    for s in (1, 2) for q in (0, 1) for p in (1, 2)]
        # Placement A: all groups on one worker, arrival order as-is.
        one = ServerSpanTracer(include_timings=False)
        for ctx in contexts:
            record_group(one, ctx=ctx)
        # Placement B: groups scattered over three workers, reversed.
        shards = [ServerSpanTracer(include_timings=False) for _ in range(3)]
        for index, ctx in enumerate(reversed(contexts)):
            record_group(shards[index % 3], ctx=ctx)
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        write_server_trace(path_a, merge_groups([one.payload()]),
                           include_timings=False)
        write_server_trace(
            path_b,
            merge_groups([shard.payload() for shard in shards]),
            include_timings=False,
        )
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_multiple_trace_ids_become_task_segments(self, tmp_path):
        tracer = ServerSpanTracer(include_timings=False)
        record_group(tracer, trace="crawl-a")
        record_group(tracer, trace="crawl-b")
        path = tmp_path / "server.jsonl"
        write_server_trace(path, tracer.payload(), include_timings=False)
        trace = load_trace(path)
        assert "trace" not in trace.header
        assert [task.label for task in trace.tasks] == ["crawl-a", "crawl-b"]

    def test_timed_output_also_validates(self, tmp_path):
        tracer = ServerSpanTracer(include_timings=True)
        record_group(tracer)
        path = tmp_path / "timed.jsonl"
        write_server_trace(path, tracer.payload(), include_timings=True)
        trace = load_trace(path)
        assert all("t" in span for span in trace.spans)


class TestGroupPublic:
    def test_console_view_shape(self):
        tracer = ServerSpanTracer(include_timings=False)
        record_group(tracer, status=404)
        public = group_public(tracer.payload()[0])
        assert public["id"] == "s1/q0/p1/srv"
        assert public["status"] == 404
        assert public["phases"] == list(SERVER_PHASES)
        assert public["wall_s"] == 0.0
