"""Stitching client + server traces: structure, bytes, and safety."""

from __future__ import annotations

import pytest

from repro.obs import ServerSpanTracer, stitch_traces, write_server_trace
from repro.trace import load_trace, validate_trace_jsonl

CLIENT_LINES = [
    '{"schema":"repro-trace/1","policy":"greedy-link"}',
    '{"id":"s1","parent":null,"name":"step","step":1,"seq":0,"attrs":{}}',
    '{"id":"s1/q0","parent":"s1","name":"submit","step":1,"seq":1,'
    '"attrs":{}}',
    '{"id":"s1/q0/p1","parent":"s1/q0","name":"fetch","step":1,"seq":2,'
    '"attrs":{"page":1},"t":{"ws":1500e-9,"cs":1000e-9}}',
    '{"id":"s1/q0/p2","parent":"s1/q0","name":"fetch","step":1,"seq":3,'
    '"attrs":{"page":2}}',
]


def write_client(tmp_path, lines=CLIENT_LINES):
    path = tmp_path / "client.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def write_server(tmp_path, contexts, trace="t", name="server.jsonl"):
    tracer = ServerSpanTracer(include_timings=False)
    for ctx in contexts:
        rec = tracer.begin(f"{trace};{ctx};0")
        rec.source = "imdb"
        rec.start("parse")
        rec.end()
        rec.start("render")
        rec.end(records=2, bytes=64)
        tracer.commit(rec, 200)
    path = tmp_path / name
    write_server_trace(path, tracer.payload(), include_timings=False)
    return path


class TestStitch:
    def test_joins_groups_under_fetch_spans(self, tmp_path):
        client = write_client(tmp_path)
        server = write_server(tmp_path, ["s1/q0/p1", "s1/q0/p2"])
        out = tmp_path / "stitched.jsonl"
        stats = stitch_traces(client, server, out)
        assert stats == {
            "client_spans": 4,
            "server_groups": 2,
            "stitched_groups": 2,
            "orphan_groups": 0,
            "total_spans": 10,
        }
        assert validate_trace_jsonl(out) == 10
        trace = load_trace(out)
        assert trace.header["stitched"] is True
        spans = trace.spans
        by_id = {span["id"]: span for span in spans}
        # Server roots re-parented onto the client fetch spans.
        assert by_id["s1/q0/p1/srv"]["parent"] == "s1/q0/p1"
        assert by_id["s1/q0/p2/srv"]["parent"] == "s1/q0/p2"
        # Each group's spans sit immediately after its fetch span.
        ids = [span["id"] for span in spans]
        assert ids.index("s1/q0/p1/srv") == ids.index("s1/q0/p1") + 1
        # seq renumbered over the combined stream.
        assert [span["seq"] for span in spans] == list(range(10))

    def test_timed_fields_pass_through_bit_exact(self, tmp_path):
        client = write_client(tmp_path)
        server = write_server(tmp_path, ["s1/q0/p1"])
        out = tmp_path / "stitched.jsonl"
        stitch_traces(client, server, out)
        # The client fetch span's int-ns "t" literal must survive
        # unmodified — the stitcher may never round-trip it as float.
        assert '"t":{"ws":1500e-9,"cs":1000e-9}' in out.read_text(
            encoding="utf-8"
        )

    def test_orphan_groups_dropped_and_counted(self, tmp_path):
        client = write_client(tmp_path)
        server = write_server(
            tmp_path, ["s1/q0/p1", "s1/q0/p2", "s1/q0/p3"]
        )
        out = tmp_path / "stitched.jsonl"
        stats = stitch_traces(client, server, out)
        assert stats["stitched_groups"] == 2
        assert stats["orphan_groups"] == 1
        assert validate_trace_jsonl(out) > 0
        assert "s1/q0/p3/srv" not in out.read_text(encoding="utf-8")

    def test_idempotent_bytes(self, tmp_path):
        client = write_client(tmp_path)
        server = write_server(tmp_path, ["s1/q0/p1", "s1/q0/p2"])
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        stitch_traces(client, server, out_a)
        stitch_traces(client, server, out_b)
        assert out_a.read_bytes() == out_b.read_bytes()


class TestStitchErrors:
    def test_server_file_must_be_server_side(self, tmp_path):
        client = write_client(tmp_path)
        with pytest.raises(ValueError, match="server-side"):
            stitch_traces(client, client, tmp_path / "out.jsonl")

    def test_client_task_segments_rejected(self, tmp_path):
        lines = [CLIENT_LINES[0], '{"task":"gl","seed_index":0}',
                 *CLIENT_LINES[1:]]
        client = write_client(tmp_path, lines)
        server = write_server(tmp_path, ["s1/q0/p1"])
        with pytest.raises(ValueError, match="task segments"):
            stitch_traces(client, server, tmp_path / "out.jsonl")

    def test_multi_trace_server_file_rejected(self, tmp_path):
        client = write_client(tmp_path)
        tracer = ServerSpanTracer(include_timings=False)
        for trace_id in ("a", "b"):
            rec = tracer.begin(f"{trace_id};s1/q0/p1;0")
            rec.source = "imdb"
            rec.mark("render", records=0, bytes=0)
            tracer.commit(rec, 200)
        server = tmp_path / "multi.jsonl"
        write_server_trace(server, tracer.payload(), include_timings=False)
        with pytest.raises(ValueError, match="task segments"):
            stitch_traces(client, server, tmp_path / "out.jsonl")

    def test_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"nope"}\n', encoding="utf-8")
        server = write_server(tmp_path, ["s1/q0/p1"])
        with pytest.raises(ValueError, match="schema"):
            stitch_traces(bad, server, tmp_path / "out.jsonl")
