"""Tests for the adaptive per-attribute selector."""

import random

import pytest

from repro.core import AttributeValue, CrawlError, Query
from repro.crawler import CrawlerContext, CrawlerEngine, LocalDatabase, QueryOutcome
from repro.policies import AdaptiveAttributeSelector, RandomSelector
from repro.server import QueryInterface, SimulatedWebDatabase
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


def bind(selector, seed=0):
    context = CrawlerContext(
        local_db=LocalDatabase(),
        interface=QueryInterface(frozenset({"venue", "title"})),
        page_size=10,
        rng=random.Random(seed),
    )
    selector.bind(context)
    return selector, context


def outcome_for(attribute, value, pages, new):
    outcome = QueryOutcome(query=Query.equality(attribute, value))
    outcome.pages_fetched = pages
    outcome.new_records = [make_record(i, x=f"r{i}") for i in range(new)]
    return outcome


class TestValidation:
    def test_epsilon_bounds(self):
        with pytest.raises(CrawlError):
            AdaptiveAttributeSelector(epsilon=1.5)


class TestBandit:
    def test_optimistic_start_tries_every_attribute(self):
        selector, _context = bind(AdaptiveAttributeSelector(epsilon=0.0))
        selector.add_candidate(AV("venue", "v1"))
        selector.add_candidate(AV("title", "t1"))
        rates = selector.attribute_rates()
        assert rates["venue"] == rates["title"] == 10.0

    def test_exploits_productive_attribute(self):
        selector, _context = bind(AdaptiveAttributeSelector(epsilon=0.0))
        for i in range(5):
            selector.add_candidate(AV("venue", f"v{i}"))
            selector.add_candidate(AV("title", f"t{i}"))
        # Feed contrasting evidence: venue queries are 9 new/page,
        # title queries 0.5 new/page.
        selector.observe_outcome(outcome_for("venue", "v0", pages=2, new=18))
        selector.observe_outcome(outcome_for("title", "t0", pages=2, new=1))
        picks = [selector.next_query().attribute for _ in range(4)]
        assert all(attribute == "venue" for attribute in picks)

    def test_falls_back_when_best_attribute_drained(self):
        selector, _context = bind(AdaptiveAttributeSelector(epsilon=0.0))
        selector.add_candidate(AV("venue", "v0"))
        selector.add_candidate(AV("title", "t0"))
        selector.observe_outcome(outcome_for("venue", "v0", pages=1, new=9))
        selector.observe_outcome(outcome_for("title", "t0", pages=1, new=0))
        assert selector.next_query() == AV("venue", "v0")
        # Venue frontier now empty: the title candidate must still surface.
        assert selector.next_query() == AV("title", "t0")
        assert selector.next_query() is None

    def test_exploration_hits_other_attributes(self):
        selector, context = bind(AdaptiveAttributeSelector(epsilon=1.0), seed=9)
        for i in range(20):
            selector.add_candidate(AV("venue", f"v{i}"))
            selector.add_candidate(AV("title", f"t{i}"))
        selector.observe_outcome(outcome_for("venue", "v0", pages=1, new=9))
        selector.observe_outcome(outcome_for("title", "t0", pages=1, new=0))
        picks = {selector.next_query().attribute for _ in range(15)}
        assert picks == {"venue", "title"}


class TestEndToEnd:
    def test_competitive_with_random_on_dblp(self):
        from repro.datasets import generate_dblp

        table = generate_dblp(1500, seed=6)
        seed_value = table.get(table.record_ids()[3]).attribute_values()[1]
        costs = {}
        for label, factory in (
            ("adaptive", lambda: AdaptiveAttributeSelector(epsilon=0.1)),
            ("random", RandomSelector),
        ):
            server = SimulatedWebDatabase(table, page_size=10)
            engine = CrawlerEngine(server, factory(), seed=4)
            result = engine.crawl([seed_value], target_coverage=0.8)
            costs[label] = result.communication_rounds
        assert costs["adaptive"] <= costs["random"]
