"""Unit tests for the domain-knowledge (DM) selector."""

import math
import random

import pytest

from repro.core import AttributeValue, CrawlError, Query, RelationalTable, Schema
from repro.crawler import CrawlerContext, CrawlerEngine, LocalDatabase, QueryOutcome
from repro.domain import build_domain_table
from repro.policies import DomainKnowledgeSelector
from repro.server import QueryInterface, SimulatedWebDatabase
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


schema = Schema.of("a", "b")


def sample_table(rows):
    table = RelationalTable(schema, name="sample")
    table.insert_rows(rows)
    return table


@pytest.fixture
def domain_table():
    # Sample of 4 records: a=x in 3, a=y in 1, b values singletons.
    return build_domain_table(
        sample_table(
            [
                {"a": "x", "b": "p"},
                {"a": "x", "b": "q"},
                {"a": "x", "b": "r"},
                {"a": "y", "b": "s"},
            ]
        )
    )


def bind(selector):
    context = CrawlerContext(
        local_db=LocalDatabase(),
        interface=QueryInterface(frozenset({"a", "b"})),
        page_size=10,
        rng=random.Random(0),
    )
    selector.bind(context)
    return selector, context


class TestValidation:
    def test_bad_initial_hit_rate(self, domain_table):
        with pytest.raises(CrawlError):
            DomainKnowledgeSelector(domain_table, initial_hit_rate=1.5)


class TestQdtSeeding:
    def test_can_start_with_empty_local_db(self, domain_table):
        selector, _context = bind(DomainKnowledgeSelector(domain_table))
        # Most probable domain value first.
        assert selector.next_query() == AV("a", "x")

    def test_qdt_served_once(self, domain_table):
        selector, _context = bind(DomainKnowledgeSelector(domain_table))
        seen = set()
        while True:
            value = selector.next_query()
            if value is None:
                break
            assert value not in seen
            seen.add(value)
        assert seen == set(domain_table.values())


class TestHitRate:
    def test_initial_prior(self, domain_table):
        selector, _context = bind(
            DomainKnowledgeSelector(domain_table, initial_hit_rate=0.7)
        )
        assert selector.hit_rate == pytest.approx(0.7)

    def test_tracks_discovered_values(self, domain_table):
        selector, _context = bind(DomainKnowledgeSelector(domain_table))
        selector.add_candidate(AV("a", "x"))      # in DT
        selector.add_candidate(AV("a", "ghost"))  # not in DT
        assert selector.hit_rate == pytest.approx(0.5)

    def test_out_of_scope_attributes_ignored(self, domain_table):
        selector, _context = bind(DomainKnowledgeSelector(domain_table))
        selector.add_candidate(AV("zzz", "whatever"))
        assert selector.hit_rate == 1.0  # untouched prior


class TestEstimators:
    def test_size_estimate_tracks_coverage(self, domain_table):
        selector, context = bind(DomainKnowledgeSelector(domain_table))
        # Two local records; issued query a=x matched 3 of 4 DM records.
        context.local_db.add(make_record(1, a="x", b="p"))
        context.local_db.add(make_record(2, a="x", b="q"))
        outcome = QueryOutcome(query=Query.equality("a", "x"))
        selector.observe_outcome(outcome)
        # P(Lq, DM) = 3/4 -> S = 2 / 0.75 ≈ 2.67.
        assert selector.estimated_database_size() == pytest.approx(2 / 0.75)

    def test_estimated_matches_eq42(self, domain_table):
        selector, context = bind(
            DomainKnowledgeSelector(domain_table, smoothing=False)
        )
        context.local_db.add(make_record(1, a="x", b="p"))
        selector.observe_outcome(QueryOutcome(query=Query.equality("a", "x")))
        # num̂(y) = |DBlocal| * P(y,DM) / P(Lq,DM) = 1 * 0.25 / 0.75.
        assert selector.estimated_matches(AV("a", "y")) == pytest.approx(
            0.25 / 0.75
        )

    def test_infinite_before_any_dm_coverage(self, domain_table):
        selector, _context = bind(DomainKnowledgeSelector(domain_table))
        assert selector.estimated_matches(AV("a", "x")) == math.inf
        assert selector.estimated_database_size() == math.inf

    def test_harvest_rate_definition(self, domain_table):
        selector, context = bind(
            DomainKnowledgeSelector(domain_table, smoothing=False)
        )
        for i in range(8):
            context.local_db.add(make_record(i, a="x", b=f"b{i}"))
        selector.observe_outcome(QueryOutcome(query=Query.equality("a", "x")))
        # S = 8/0.75; est(y) = S * 0.25 = 8/3; local(y) = 0;
        # HR = est / ceil(est/10) = est (single page).
        estimate = selector.estimated_matches(AV("a", "y"))
        assert selector.harvest_rate_qdb(AV("a", "y")) == pytest.approx(estimate)

    def test_harvest_rate_clamped_to_page_size(self, domain_table):
        selector, context = bind(DomainKnowledgeSelector(domain_table))
        assert selector.harvest_rate_qdb(AV("a", "x")) <= context.page_size


class TestSmoothing:
    def test_delta_dm_grows_on_unknown_values(self, domain_table):
        selector, context = bind(DomainKnowledgeSelector(domain_table, smoothing=True))
        before = selector.smoothed_probability(AV("a", "x"))
        outcome = QueryOutcome(query=Query.equality("a", "x"))
        # This record carries value b=new not present in DM -> joins ΔDM.
        record = make_record(10, a="x", b="new")
        context.local_db.add(record)
        outcome.new_records = [record]
        selector.observe_outcome(outcome)
        after = selector.smoothed_probability(AV("a", "x"))
        # x occurs in the ΔDM record too: (1+3)/(1+4) > 3/4... actually
        # 4/5 > 3/4, and the unseen value now has mass.
        assert after == pytest.approx(4 / 5)
        assert selector.smoothed_probability(AV("b", "new")) == pytest.approx(1 / 5)
        assert before == pytest.approx(3 / 4)

    def test_smoothing_off_keeps_raw_probabilities(self, domain_table):
        selector, context = bind(
            DomainKnowledgeSelector(domain_table, smoothing=False)
        )
        record = make_record(10, a="x", b="new")
        context.local_db.add(record)
        outcome = QueryOutcome(query=Query.equality("a", "x"))
        outcome.new_records = [record]
        selector.observe_outcome(outcome)
        assert selector.smoothed_probability(AV("a", "x")) == pytest.approx(3 / 4)
        assert selector.smoothed_probability(AV("b", "new")) == 0.0


class TestIntermediateScore:
    def test_monotone_with_exact_hr_under_eq41(self, domain_table):
        """Lazy key ordering agrees with Eq. 4.1's fraction-new ordering."""
        selector, context = bind(
            DomainKnowledgeSelector(domain_table, smoothing=False)
        )
        for i in range(6):
            context.local_db.add(make_record(i, a="x", b=f"b{i}"))
        context.local_db.add(make_record(20, a="y", b="s"))
        selector.observe_outcome(QueryOutcome(query=Query.equality("a", "x")))
        x, y = AV("a", "x"), AV("a", "y")
        # Eq 4.1 fraction-new = 1 - local/(S*P): smaller intermediate
        # (local/P) means larger fraction-new.
        inter_x, inter_y = (
            selector.intermediate_score(x),
            selector.intermediate_score(y),
        )
        size = selector.estimated_database_size()
        fraction_new_x = 1 - inter_x / size
        fraction_new_y = 1 - inter_y / size
        assert (inter_x < inter_y) == (fraction_new_x > fraction_new_y)


class TestEndToEnd:
    def test_dm_crawl_beats_gl_on_island_store(self, dvd_store, dvd_domain_table):
        from repro.policies import GreedyLinkSelector
        from repro.server import ResultLimitPolicy

        seed_value = next(
            value
            for value in dvd_store.distinct_values("actor")
            if dvd_store.frequency(value) >= 3
        )
        budget = len(dvd_store) // 2

        def run(selector):
            server = SimulatedWebDatabase(
                dvd_store,
                page_size=10,
                limit_policy=ResultLimitPolicy(limit=100, ordering="ranked"),
            )
            engine = CrawlerEngine(server, selector, seed=3)
            return engine.crawl([seed_value], max_rounds=budget).coverage

        dm = run(DomainKnowledgeSelector(dvd_domain_table))
        gl = run(GreedyLinkSelector())
        assert dm > gl
