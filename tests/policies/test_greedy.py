"""Unit tests for the greedy link-based (GL) selector."""

import random

import pytest

from repro.core import AttributeValue
from repro.crawler import CrawlerContext, CrawlerEngine, LocalDatabase, QueryOutcome
from repro.core import Query
from repro.policies import GreedyFrequencySelector, GreedyLinkSelector
from repro.server import QueryInterface, SimulatedWebDatabase
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


def bind(selector):
    context = CrawlerContext(
        local_db=LocalDatabase(),
        interface=QueryInterface(frozenset({"a", "b"})),
        page_size=10,
        rng=random.Random(0),
    )
    selector.bind(context)
    return selector, context


def outcome_with(records):
    outcome = QueryOutcome(query=Query.keyword("x"))
    outcome.new_records = list(records)
    outcome.candidate_values = [
        pair for record in records for pair in record.attribute_values()
    ]
    return outcome


class TestGreedyLink:
    def test_picks_highest_local_degree(self):
        selector, context = bind(GreedyLinkSelector())
        # "hub" co-occurs with three values; "leaf" with one.
        records = [
            make_record(1, a="hub", b="p"),
            make_record(2, a="hub", b="q"),
            make_record(3, a="hub", b="r"),
            make_record(4, a="leaf", b="s"),
        ]
        for record in records:
            context.local_db.add(record)
        for record in records:
            for pair in record.attribute_values():
                selector.add_candidate(pair)
        assert selector.next_query() == AV("a", "hub")

    def test_observe_outcome_refreshes_ranking(self):
        selector, context = bind(GreedyLinkSelector())
        first = make_record(1, a="x", b="p")
        context.local_db.add(first)
        for pair in first.attribute_values():
            selector.add_candidate(pair)
        # New results make "p" a hub; without refresh it would stay ranked
        # at its push-time degree and lose to x.
        growth = [make_record(2, a="y", b="p"), make_record(3, a="z", b="p")]
        for record in growth:
            context.local_db.add(record)
            for pair in record.attribute_values():
                selector.add_candidate(pair)
        selector.observe_outcome(outcome_with(growth))
        assert selector.next_query() == AV("b", "p")

    def test_name(self):
        assert GreedyLinkSelector().name == "greedy-link"

    def test_exhaustion(self):
        selector, _context = bind(GreedyLinkSelector())
        assert selector.next_query() is None


class TestGreedyFrequency:
    def test_picks_highest_frequency(self):
        selector, context = bind(GreedyFrequencySelector())
        records = [
            make_record(1, a="common", b="u1"),
            make_record(2, a="common", b="u2"),
            make_record(3, a="rare", b="u3"),
        ]
        for record in records:
            context.local_db.add(record)
            for pair in record.attribute_values():
                selector.add_candidate(pair)
        selector.observe_outcome(outcome_with(records))
        assert selector.next_query() == AV("a", "common")


class TestEndToEnd:
    def test_gl_beats_random_on_hub_structure(self, small_ebay):
        """The Figure 3 ordering on a small instance: GL <= random cost."""
        from repro.policies import RandomSelector

        seed_value = next(
            value
            for value in small_ebay.distinct_values("seller")
            if small_ebay.frequency(value) >= 3
        )
        costs = {}
        for name, factory in (
            ("gl", GreedyLinkSelector),
            ("random", RandomSelector),
        ):
            server = SimulatedWebDatabase(small_ebay, page_size=10)
            engine = CrawlerEngine(server, factory(), seed=5)
            result = engine.crawl([seed_value], target_coverage=0.8)
            costs[name] = result.communication_rounds
        assert costs["gl"] <= costs["random"]
