"""Unit tests for the GL→MMMI hybrid and saturation detection."""

import pytest

from repro.core import CrawlError, Query
from repro.crawler import CrawlerEngine, QueryOutcome
from repro.policies import GreedyMmmiSelector, SaturationDetector
from repro.server import SimulatedWebDatabase


def outcome(new, pages=1):
    result = QueryOutcome(query=Query.keyword("x"))
    result.pages_fetched = pages
    result.new_records = [object()] * new  # only the count matters
    return result


class TestSaturationDetector:
    def test_needs_full_window(self):
        detector = SaturationDetector(window=3, min_harvest_rate=1.0)
        detector.observe(outcome(0))
        detector.observe(outcome(0))
        assert not detector.saturated
        detector.observe(outcome(0))
        assert detector.saturated

    def test_high_rates_not_saturated(self):
        detector = SaturationDetector(window=2, min_harvest_rate=1.0)
        detector.observe(outcome(5))
        detector.observe(outcome(5))
        assert not detector.saturated

    def test_sliding_window_forgets(self):
        detector = SaturationDetector(window=2, min_harvest_rate=1.0)
        detector.observe(outcome(0))
        detector.observe(outcome(0))
        assert detector.saturated
        detector.observe(outcome(10))
        detector.observe(outcome(10))
        assert not detector.saturated

    def test_bad_window(self):
        with pytest.raises(CrawlError):
            SaturationDetector(window=0)


class TestHybridConstruction:
    def test_needs_some_trigger(self):
        with pytest.raises(CrawlError):
            GreedyMmmiSelector(switch_coverage=None, detector=None)

    def test_default_detectors_not_shared(self):
        a = GreedyMmmiSelector()
        b = GreedyMmmiSelector()
        assert a.detector is not b.detector

    def test_name(self):
        assert GreedyMmmiSelector().name == "greedy-link+mmmi"


class TestSwitching:
    def test_oracle_switch_fires(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        selector = GreedyMmmiSelector(switch_coverage=0.5, detector=None)
        engine = CrawlerEngine(server, selector, seed=0)
        engine.crawl([("publisher", "orbit")])
        assert selector.switched

    def test_no_switch_below_threshold(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        selector = GreedyMmmiSelector(switch_coverage=0.99, detector=None)
        engine = CrawlerEngine(server, selector, seed=0)
        engine.crawl([("publisher", "orbit")], max_queries=2)
        assert not selector.switched

    def test_detector_switch_without_oracle(self, books):
        # Harvest-rate trigger alone: window 1 with an unreachable rate
        # threshold saturates after the first query.
        selector = GreedyMmmiSelector(
            switch_coverage=None,
            detector=SaturationDetector(window=1, min_harvest_rate=10**6),
        )
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, selector, seed=0)
        engine.crawl([("publisher", "orbit")], max_queries=3)
        assert selector.switched

    def test_full_crawl_same_reachable_set_as_gl(self, books):
        from repro.policies import GreedyLinkSelector

        def harvest(selector):
            server = SimulatedWebDatabase(books, page_size=2)
            engine = CrawlerEngine(server, selector, seed=0)
            result = engine.crawl([("publisher", "orbit")])
            return result.records_harvested

        assert harvest(GreedyMmmiSelector(switch_coverage=0.5, detector=None)) == (
            harvest(GreedyLinkSelector())
        )
