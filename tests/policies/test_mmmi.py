"""Unit tests for the Min-Max Mutual-Information selector."""

import math
import random

import pytest

from repro.core import AttributeValue, CrawlError, Query
from repro.crawler import CrawlerContext, LocalDatabase
from repro.policies import MinMaxMutualInformationSelector
from repro.server import QueryInterface
from tests.conftest import make_record


def AV(attribute, value):
    return AttributeValue(attribute, value)


def bind(selector):
    context = CrawlerContext(
        local_db=LocalDatabase(track_cooccurrence=True),
        interface=QueryInterface(frozenset({"a", "b"})),
        page_size=10,
        rng=random.Random(0),
    )
    selector.bind(context)
    return selector, context


def load_correlated_world(context):
    """'paired' always co-occurs with the issued 'lead'; 'free' does not."""
    records = [
        make_record(1, a="lead", b="paired"),
        make_record(2, a="lead", b="paired"),
        make_record(3, a="lead", b="paired"),
        make_record(4, a="other", b="free"),
        make_record(5, a="other2", b="free"),
    ]
    for record in records:
        context.local_db.add(record)
    context.queried_values.add(AV("a", "lead"))
    context.lqueried.append(Query.equality("a", "lead"))
    return records


class TestValidation:
    def test_bad_batch_size(self):
        with pytest.raises(CrawlError):
            MinMaxMutualInformationSelector(batch_size=0)

    def test_bad_aggregate(self):
        with pytest.raises(CrawlError):
            MinMaxMutualInformationSelector(aggregate="median")

    def test_bad_popularity_weight(self):
        with pytest.raises(CrawlError):
            MinMaxMutualInformationSelector(popularity_weight=-1)


class TestDependencyScore:
    def test_correlated_value_scores_higher(self):
        selector, context = bind(MinMaxMutualInformationSelector())
        load_correlated_world(context)
        paired = selector.dependency_score(AV("b", "paired"))
        free = selector.dependency_score(AV("b", "free"))
        assert paired > 0
        assert free == -math.inf

    def test_max_aggregate_takes_worst(self):
        selector, context = bind(MinMaxMutualInformationSelector(aggregate="max"))
        load_correlated_world(context)
        # Add a second issued query weakly tied to "paired".
        context.local_db.add(make_record(6, a="lead2", b="paired"))
        context.local_db.add(make_record(7, a="lead2", b="zzz"))
        context.queried_values.add(AV("a", "lead2"))
        strong = context.local_db.pmi(AV("b", "paired"), AV("a", "lead"))
        weak = context.local_db.pmi(AV("b", "paired"), AV("a", "lead2"))
        score = selector.dependency_score(AV("b", "paired"))
        assert score == pytest.approx(max(strong, weak))

    def test_mean_aggregate(self):
        selector, context = bind(MinMaxMutualInformationSelector(aggregate="mean"))
        load_correlated_world(context)
        context.local_db.add(make_record(6, a="lead2", b="paired"))
        context.local_db.add(make_record(7, a="lead2", b="zzz"))
        context.queried_values.add(AV("a", "lead2"))
        strong = context.local_db.pmi(AV("b", "paired"), AV("a", "lead"))
        weak = context.local_db.pmi(AV("b", "paired"), AV("a", "lead2"))
        score = selector.dependency_score(AV("b", "paired"))
        assert score == pytest.approx((strong + weak) / 2)


class TestSelection:
    def test_prefers_independent_candidates(self):
        selector, context = bind(
            MinMaxMutualInformationSelector(popularity_weight=0.0)
        )
        load_correlated_world(context)
        selector.add_candidate(AV("b", "paired"))
        selector.add_candidate(AV("b", "free"))
        assert selector.next_query() == AV("b", "free")
        assert selector.next_query() == AV("b", "paired")
        assert selector.next_query() is None

    def test_popularity_weight_can_promote_popular_dependents(self):
        selector, context = bind(
            MinMaxMutualInformationSelector(popularity_weight=10.0)
        )
        load_correlated_world(context)
        # "paired" has degree 1 (lead) + ... vs "free" degree 2; under a
        # huge popularity weight the degree term dominates dependency.
        selector.add_candidate(AV("b", "paired"))
        selector.add_candidate(AV("b", "free"))
        first = selector.next_query()
        scores = {
            value: selector.selection_score(value)
            for value in (AV("b", "paired"), AV("b", "free"))
        }
        assert first == min(scores, key=scores.get)

    def test_skips_already_queried_candidates(self):
        selector, context = bind(MinMaxMutualInformationSelector())
        load_correlated_world(context)
        selector.add_candidate(AV("a", "lead"))  # already queried
        assert selector.next_query() is None

    def test_candidates_added_between_batches_surface(self):
        selector, context = bind(MinMaxMutualInformationSelector(batch_size=100))
        load_correlated_world(context)
        selector.add_candidate(AV("b", "free"))
        assert selector.next_query() == AV("b", "free")
        selector.add_candidate(AV("b", "paired"))
        assert selector.next_query() == AV("b", "paired")
