"""Tests for multi-attribute (clique) query selection."""

import pytest

from repro.core import AttributeValue, ConjunctiveQuery, CrawlError, Record
from repro.crawler import CrawlerEngine
from repro.datasets import car_interface, generate_cars
from repro.policies import (
    GreedyCliqueSelector,
    RandomCliqueSelector,
    record_combinations,
)
from repro.server import SimulatedWebDatabase


def AV(attribute, value):
    return AttributeValue(attribute, value)


class TestRecordCombinations:
    record = Record(
        1, {"make": ("toyota",), "model": ("corolla",), "year": ("2001",)}
    )

    def test_pairs(self):
        combos = record_combinations(self.record, ["make", "model", "year"], 2)
        assert len(combos) == 3
        assert all(len(c) == 2 for c in combos)

    def test_respects_queriable_filter(self):
        combos = record_combinations(self.record, ["make", "model"], 2)
        assert combos == [(AV("make", "toyota"), AV("model", "corolla"))]

    def test_arity_three(self):
        combos = record_combinations(self.record, ["make", "model", "year"], 3)
        assert len(combos) == 1

    def test_multivalued_attributes_expand(self):
        record = Record(2, {"a": ("x", "y"), "b": ("p",)})
        combos = record_combinations(record, ["a", "b"], 2)
        # (x,p) and (y,p); never (x,y) — same attribute.
        assert len(combos) == 2

    def test_arity_too_large_gives_nothing(self):
        assert record_combinations(self.record, ["make"], 2) == []


class TestValidation:
    def test_bad_arity(self):
        with pytest.raises(CrawlError):
            GreedyCliqueSelector(arity=0)


@pytest.fixture(scope="module")
def cars():
    return generate_cars(800, seed=2)


def crawl_cars(cars, selector, **kwargs):
    server = SimulatedWebDatabase(cars, page_size=10, interface=car_interface())
    engine = CrawlerEngine(server, selector, seed=3)
    first = cars.get(cars.record_ids()[0])
    selector.seed_combinations(
        record_combinations(first, cars.schema.queriable, 2)
    )
    return engine.crawl([], allow_empty_seeds=True, **kwargs)


class TestCrawling:
    def test_greedy_crawl_reaches_high_coverage(self, cars):
        result = crawl_cars(cars, GreedyCliqueSelector(), max_rounds=10_000)
        assert result.coverage > 0.85
        assert result.policy == "greedy-clique"

    def test_all_issued_queries_are_conjunctions(self, cars):
        server = SimulatedWebDatabase(
            cars, page_size=10, interface=car_interface(), keep_request_log=True
        )
        selector = GreedyCliqueSelector()
        engine = CrawlerEngine(server, selector, seed=3)
        first = cars.get(cars.record_ids()[0])
        selector.seed_combinations(
            record_combinations(first, cars.schema.queriable, 2)
        )
        engine.crawl([], allow_empty_seeds=True, max_queries=30)
        assert server.log.requests
        assert all(
            isinstance(entry.query, ConjunctiveQuery)
            for entry in server.log.requests
        )

    def test_no_conjunction_issued_twice(self, cars):
        server = SimulatedWebDatabase(
            cars, page_size=10, interface=car_interface(), keep_request_log=True
        )
        selector = GreedyCliqueSelector()
        engine = CrawlerEngine(server, selector, seed=3)
        first = cars.get(cars.record_ids()[0])
        selector.seed_combinations(
            record_combinations(first, cars.schema.queriable, 2)
        )
        engine.crawl([], allow_empty_seeds=True, max_queries=60)
        issued = [entry.query for entry in server.log.requests if entry.page_number == 1]
        assert len(issued) == len(set(issued))

    def test_greedy_cheaper_than_random(self, cars):
        greedy = crawl_cars(cars, GreedyCliqueSelector(), target_coverage=0.8)
        random_ = crawl_cars(cars, RandomCliqueSelector(), target_coverage=0.8)
        assert greedy.communication_rounds <= random_.communication_rounds

    def test_empty_seeds_without_flag_rejected(self, cars):
        server = SimulatedWebDatabase(cars, interface=car_interface())
        engine = CrawlerEngine(server, GreedyCliqueSelector(), seed=0)
        with pytest.raises(CrawlError):
            engine.crawl([])

    def test_explicit_arity_three(self, cars):
        server = SimulatedWebDatabase(
            cars, page_size=10, interface=car_interface(min_predicates=2)
        )
        selector = GreedyCliqueSelector(arity=3)
        engine = CrawlerEngine(server, selector, seed=3)
        first = cars.get(cars.record_ids()[0])
        selector.seed_combinations(
            record_combinations(first, cars.schema.queriable, 3)
        )
        result = engine.crawl([], allow_empty_seeds=True, max_queries=20)
        assert result.queries_issued > 0
