"""Unit tests for the naive (BFS/DFS/Random) selectors."""

import random

import pytest

from repro.core import AttributeValue
from repro.crawler import CrawlerContext, LocalDatabase
from repro.policies import (
    BreadthFirstSelector,
    DepthFirstSelector,
    RandomSelector,
)
from repro.server import QueryInterface


def AV(value):
    return AttributeValue("a", value)


def bind(selector, seed=0):
    context = CrawlerContext(
        local_db=LocalDatabase(),
        interface=QueryInterface(frozenset({"a"})),
        page_size=10,
        rng=random.Random(seed),
    )
    selector.bind(context)
    return selector


class TestNames:
    def test_labels(self):
        assert bind(BreadthFirstSelector()).name == "bfs"
        assert bind(DepthFirstSelector()).name == "dfs"
        assert bind(RandomSelector()).name == "random"


class TestOrdering:
    def test_bfs_fifo(self):
        selector = bind(BreadthFirstSelector())
        for value in ("x", "y", "z"):
            selector.add_candidate(AV(value))
        assert selector.next_query() == AV("x")
        selector.add_candidate(AV("w"))
        assert selector.next_query() == AV("y")

    def test_dfs_lifo(self):
        selector = bind(DepthFirstSelector())
        for value in ("x", "y"):
            selector.add_candidate(AV(value))
        assert selector.next_query() == AV("y")
        selector.add_candidate(AV("z"))
        assert selector.next_query() == AV("z")
        assert selector.next_query() == AV("x")

    def test_random_uses_context_rng(self):
        def run(seed):
            selector = bind(RandomSelector(), seed=seed)
            for i in range(10):
                selector.add_candidate(AV(f"v{i}"))
            return [selector.next_query() for _ in range(10)]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_exhaustion_returns_none(self):
        selector = bind(BreadthFirstSelector())
        selector.add_candidate(AV("x"))
        selector.next_query()
        assert selector.next_query() is None

    def test_duplicate_candidates_ignored(self):
        selector = bind(BreadthFirstSelector())
        selector.add_candidate(AV("x"))
        selector.add_candidate(AV("x"))
        assert selector.next_query() == AV("x")
        assert selector.next_query() is None


class TestBindRequired:
    def test_add_before_bind_raises(self):
        with pytest.raises(RuntimeError):
            BreadthFirstSelector().add_candidate(AV("x"))

    def test_next_before_bind_raises(self):
        with pytest.raises(RuntimeError):
            DepthFirstSelector().next_query()
