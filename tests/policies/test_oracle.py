"""Unit tests for the omniscient oracle selector."""

import pytest

from repro.crawler import CrawlerEngine
from repro.policies import BreadthFirstSelector, GreedyLinkSelector, OracleSelector
from repro.server import SimulatedWebDatabase


class TestPlan:
    def test_plan_covers_everything_coverable(self, books):
        selector = OracleSelector(books, page_size=2)
        covered = set()
        for value in selector.plan:
            covered.update(books.match_equality(value.attribute, value.value))
        assert covered == set(books.record_ids())

    def test_plan_restricted_to_queriable(self, books):
        selector = OracleSelector(books, page_size=2, queriable_only=True)
        assert all(v.attribute != "price" for v in selector.plan)

    def test_replays_in_order_then_exhausts(self, books):
        selector = OracleSelector(books, page_size=2)
        plan = selector.plan
        replayed = []
        while True:
            value = selector.next_query()
            if value is None:
                break
            replayed.append(value)
        assert replayed == plan

    def test_ignores_candidates(self, books):
        selector = OracleSelector(books, page_size=2)
        from repro.core import AttributeValue

        selector.add_candidate(AttributeValue("publisher", "orbit"))
        assert selector.plan == OracleSelector(books, page_size=2).plan


class TestCalibration:
    def test_oracle_full_coverage(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = CrawlerEngine(server, OracleSelector(books, page_size=2), seed=0)
        result = engine.crawl([("publisher", "orbit")])
        # Oracle reaches even the island record (it knows the whole graph).
        assert result.coverage == 1.0

    def test_oracle_cheaper_than_bfs(self, small_ebay):
        seed_value = next(
            value
            for value in small_ebay.distinct_values("seller")
            if small_ebay.frequency(value) >= 3
        )
        costs = {}
        for name, factory in (
            ("oracle", lambda: OracleSelector(small_ebay, page_size=10)),
            ("bfs", BreadthFirstSelector),
        ):
            server = SimulatedWebDatabase(small_ebay, page_size=10)
            engine = CrawlerEngine(server, factory(), seed=2)
            result = engine.crawl([seed_value], target_coverage=0.8)
            costs[name] = result.communication_rounds
        assert costs["oracle"] <= costs["bfs"]
