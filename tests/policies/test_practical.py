"""Tests for the practical crawler bundle (the paper's conclusion)."""

import pytest

from repro.policies import (
    DomainKnowledgeSelector,
    GreedyMmmiSelector,
    build_practical_crawler,
    build_practical_selector,
)
from repro.server import SimulatedWebDatabase


class TestSelectorChoice:
    def test_with_domain_table(self, dvd_domain_table):
        selector = build_practical_selector(dvd_domain_table)
        assert isinstance(selector, DomainKnowledgeSelector)
        assert selector.smoothing

    def test_without_domain_table(self):
        selector = build_practical_selector()
        assert isinstance(selector, GreedyMmmiSelector)
        # Must be oracle-free: switches on the harvest-rate detector.
        assert selector.detector is not None


class TestCrawler:
    def test_crawls_with_abortion_installed(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = build_practical_crawler(server, seed=0)
        result = engine.crawl([("publisher", "orbit")])
        assert result.records_harvested == 8

    def test_domain_crawl_without_seeds(self, dvd_store, dvd_domain_table):
        server = SimulatedWebDatabase(dvd_store, page_size=10)
        engine = build_practical_crawler(server, dvd_domain_table, seed=1)
        result = engine.crawl(
            [], allow_empty_seeds=True, max_rounds=len(dvd_store) // 3
        )
        assert result.records_harvested > 0
        assert result.policy == "domain-knowledge"

    def test_abortion_saves_rounds_on_saturated_source(self, small_ebay):
        """The practical bundle never pays more than the plain crawler."""
        from repro.crawler import CrawlerEngine
        from repro.policies import GreedyLinkSelector

        seed_value = next(
            v for v in small_ebay.distinct_values("seller")
            if small_ebay.frequency(v) >= 3
        )
        plain_server = SimulatedWebDatabase(small_ebay, page_size=10)
        plain = CrawlerEngine(plain_server, GreedyLinkSelector(), seed=2).crawl(
            [seed_value], target_coverage=0.95
        )
        practical_server = SimulatedWebDatabase(small_ebay, page_size=10)
        practical = build_practical_crawler(practical_server, seed=2).crawl(
            [seed_value], target_coverage=0.95
        )
        assert practical.coverage >= 0.95
        assert practical.communication_rounds <= plain.communication_rounds * 1.05

    def test_xml_mode(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        engine = build_practical_crawler(server, seed=0, use_xml=True)
        result = engine.crawl([("publisher", "orbit")])
        assert result.records_harvested == 8
