"""Differential tests: vectorized scoring must match the scalar path bit for bit.

The numpy kernels in :mod:`repro.policies.vectorized` are pure
accelerators — every selection decision they feed must be *identical*
to the pure-python loops they replace, or parallel/accelerated runs
stop being reproductions of the paper's sequential crawls.  These tests
pin that contract two ways:

- **Crawl-level**: full crawls with ``use_vectorized=True`` vs ``False``
  produce equal :class:`~repro.crawler.engine.CrawlResult`\\ s (same
  query sequence, same step history, same coverage).
- **Kernel-level**: the batch scorers and :func:`mmmi_best_ratios`
  reproduce the scalar arithmetic exactly — including the zero
  frequency, empty-queried-set, no-co-occurrence, and id-past-column
  edges where the guards (not the arithmetic) decide the answer.
"""

import math
import random

import pytest

from repro.core import AttributeValue, CrawlError
from repro.crawler import CrawlerEngine, LocalDatabase
from repro.policies import (
    GreedyFrequencySelector,
    GreedyLinkSelector,
    MinMaxMutualInformationSelector,
)
from repro.policies import vectorized
from repro.server import SimulatedWebDatabase
from tests.conftest import make_record

needs_numpy = pytest.mark.skipif(
    not vectorized.available(), reason="numpy kernels unavailable"
)


def AV(attribute, value):
    return AttributeValue(attribute, value)


def crawl_signature(table, selector, max_queries=45):
    """One deterministic crawl; the full result doubles as the signature."""
    server = SimulatedWebDatabase(table, page_size=10)
    engine = CrawlerEngine(server, selector, seed=11)
    seed_value = next(
        value
        for value in table.distinct_values("seller")
        if table.frequency(value) >= 3
    )
    result = engine.crawl([seed_value], max_queries=max_queries)
    return result, list(engine.context.lqueried)


@needs_numpy
class TestCrawlLevelIdentity:
    @pytest.mark.parametrize(
        "factory", [GreedyLinkSelector, GreedyFrequencySelector]
    )
    def test_priority_selectors_match_scalar(self, small_ebay, factory):
        fast, fast_q = crawl_signature(small_ebay, factory(use_vectorized=True))
        slow, slow_q = crawl_signature(small_ebay, factory(use_vectorized=False))
        assert fast_q == slow_q
        assert fast == slow

    def test_mmmi_matches_scalar(self, small_ebay):
        fast, fast_q = crawl_signature(
            small_ebay, MinMaxMutualInformationSelector(use_vectorized=True)
        )
        slow, slow_q = crawl_signature(
            small_ebay, MinMaxMutualInformationSelector(use_vectorized=False)
        )
        assert fast_q == slow_q
        assert fast == slow

    def test_mmmi_small_batch_matches_scalar(self, small_ebay):
        """Frequent recomputes stress the queried-major scatter path."""
        fast, _ = crawl_signature(
            small_ebay,
            MinMaxMutualInformationSelector(batch_size=5, use_vectorized=True),
        )
        slow, _ = crawl_signature(
            small_ebay,
            MinMaxMutualInformationSelector(batch_size=5, use_vectorized=False),
        )
        assert fast == slow


class TestVectorizedValidation:
    def test_mean_aggregate_rejects_forced_vectorized(self, small_ebay):
        """The kernel only reproduces ``max``; forcing it on ``mean`` fails."""
        selector = MinMaxMutualInformationSelector(
            aggregate="mean", use_vectorized=True
        )
        server = SimulatedWebDatabase(small_ebay, page_size=10)
        with pytest.raises(CrawlError):
            CrawlerEngine(server, selector, seed=11)

    def test_mean_aggregate_auto_stays_scalar(self, small_ebay):
        """``use_vectorized=None`` silently keeps mean on the scalar path."""
        result, _ = crawl_signature(
            small_ebay,
            MinMaxMutualInformationSelector(aggregate="mean"),
            max_queries=20,
        )
        assert result.queries_issued > 0


def correlated_local():
    """A tiny tracked database with known co-occurrence structure."""
    local = LocalDatabase(track_cooccurrence=True)
    records = [
        make_record(1, a="lead", b="paired", c="x"),
        make_record(2, a="lead", b="paired", c="y"),
        make_record(3, a="lead", b="paired", c="x"),
        make_record(4, a="lead2", b="paired", c="y"),
        make_record(5, a="lead2", b="zzz", c="x"),
        make_record(6, a="other", b="free", c="y"),
        make_record(7, a="other2", b="free", c="x"),
    ]
    for record in records:
        local.add(record)
    return local


@needs_numpy
class TestMMMIKernelEdges:
    def scalar_bits(self, local, queried_ids, cand_ids):
        """The scalar reference: exp of dependency_score_ids per candidate."""
        out = []
        for vid in cand_ids:
            score = local.dependency_score_ids(vid, set(queried_ids), use_max=True)
            out.append(0.0 if score == -math.inf else math.exp(score))
        return out

    def test_matches_scalar_log_bit_for_bit(self):
        local = correlated_local()
        queried = [
            local.value_id(AV("a", "lead")),
            local.value_id(AV("a", "lead2")),
        ]
        cands = [
            local.value_id(AV("b", "paired")),
            local.value_id(AV("b", "free")),
            local.value_id(AV("b", "zzz")),
            local.value_id(AV("c", "x")),
        ]
        best = vectorized.mmmi_best_ratios(local, queried, cands)
        for vid, ratio in zip(cands, best):
            scalar = local.dependency_score_ids(vid, set(queried), use_max=True)
            if ratio == 0.0:
                assert scalar == -math.inf
            else:
                # Same bits: the scalar path is log(joint*n/(fu*fv)) over
                # ints; the kernel maximizes the exact ratios first.
                assert math.log(ratio) == scalar

    def test_no_cooccurrence_scores_zero(self):
        local = correlated_local()
        queried = [local.value_id(AV("a", "lead"))]
        cands = [local.value_id(AV("b", "free"))]
        assert vectorized.mmmi_best_ratios(local, queried, cands) == [0.0]

    def test_empty_queried_set(self):
        local = correlated_local()
        cands = [local.value_id(AV("b", "paired"))]
        assert vectorized.mmmi_best_ratios(local, [], cands) == [0.0]

    def test_empty_candidates(self):
        local = correlated_local()
        queried = [local.value_id(AV("a", "lead"))]
        assert vectorized.mmmi_best_ratios(local, queried, []) == []

    def test_empty_database(self):
        local = LocalDatabase(track_cooccurrence=True)
        assert vectorized.mmmi_best_ratios(local, [0], [1]) == [0.0]

    def test_queried_id_past_column_end_is_skipped(self):
        local = correlated_local()
        queried = [local.value_id(AV("a", "lead")), 10_000]
        cands = [local.value_id(AV("b", "paired"))]
        with_garbage = vectorized.mmmi_best_ratios(local, queried, cands)
        clean = vectorized.mmmi_best_ratios(local, queried[:1], cands)
        assert with_garbage == clean

    def test_interned_but_unseen_query_is_harmless(self):
        """A vid interned without statistics behaves like frequency 0."""
        local = correlated_local()
        ghost = local.intern_value(AV("a", "never-harvested"))
        queried = [local.value_id(AV("a", "lead")), ghost]
        cands = [local.value_id(AV("b", "paired"))]
        assert vectorized.mmmi_best_ratios(local, queried, cands) == (
            vectorized.mmmi_best_ratios(local, queried[:1], cands)
        )


@needs_numpy
class TestColumnScorerEdges:
    @pytest.mark.parametrize(
        "make_scorer, scalar_name",
        [
            (vectorized.degree_batch_scorer, "degree_id"),
            (vectorized.frequency_batch_scorer, "frequency_id"),
        ],
    )
    def test_matches_scalar_loop(self, make_scorer, scalar_name):
        local = correlated_local()
        scorer = make_scorer(local)
        assert scorer is not None
        scalar = getattr(local, scalar_name)
        ids = list(range(len(local.interner)))
        random.Random(3).shuffle(ids)
        assert scorer(ids) == [float(scalar(vid)) for vid in ids]

    @pytest.mark.parametrize(
        "make_scorer",
        [vectorized.degree_batch_scorer, vectorized.frequency_batch_scorer],
    )
    def test_ids_past_column_end_score_zero(self, make_scorer):
        local = correlated_local()
        scorer = make_scorer(local)
        in_range = local.value_id(AV("b", "paired"))
        scores = scorer([in_range, 10_000])
        assert scores[1] == 0.0
        assert scores[0] == scorer([in_range])[0]

    @pytest.mark.parametrize(
        "make_scorer",
        [vectorized.degree_batch_scorer, vectorized.frequency_batch_scorer],
    )
    def test_empty_database_and_empty_batch(self, make_scorer):
        local = LocalDatabase(track_cooccurrence=True)
        scorer = make_scorer(local)
        assert scorer([]) == []
        assert scorer([0, 5]) == [0.0, 0.0]

    def test_scorer_sees_live_column_growth(self):
        """Columns may reallocate on add; the scorer must re-fetch."""
        local = LocalDatabase(track_cooccurrence=True)
        scorer = vectorized.frequency_batch_scorer(local)
        local.add(make_record(1, a="v"))
        vid = local.value_id(AV("a", "v"))
        assert scorer([vid]) == [1.0]
        for i in range(2, 200):
            local.add(make_record(i, a="v", b=f"pad{i}"))
        assert scorer([vid]) == [float(local.frequency_id(vid))]
