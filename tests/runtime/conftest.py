"""Shared scaffold for the durable-runtime tests.

One deliberately hostile source configuration is reused across the
crash/resume tests: a :class:`FlakyServer` (10% transient failures)
over a 400-record ebay table, with retries and *charged* exponential
backoff.  That way the engine RNG, the retry-jitter RNG, and the
server's failure RNG all advance during a crawl — and all participate
in the bit-identical-resume assertions.
"""

from __future__ import annotations

import random

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.datasets.ebay import generate_ebay
from repro.domain import build_domain_table
from repro.experiments.harness import sample_seed_values
from repro.policies import (
    DomainKnowledgeSelector,
    GreedyLinkSelector,
    MinMaxMutualInformationSelector,
)
from repro.server.flaky import ExponentialBackoff, FlakyServer
from repro.server.webdb import SimulatedWebDatabase

ENGINE_SEED = 5
SERVER_SEED = 7
SEEDS_SEED = 3
FAILURE_RATE = 0.1
MAX_RETRIES = 3
MAX_QUERIES = 50
CHECKPOINT_EVERY = 10


def make_backoff() -> ExponentialBackoff:
    """Charged backoff: every simulated wait costs communication rounds."""
    return ExponentialBackoff.charging(10.0)


def make_flaky_server(table) -> FlakyServer:
    return FlakyServer(
        SimulatedWebDatabase(table),
        failure_rate=FAILURE_RATE,
        seed=SERVER_SEED,
    )


def make_engine(table, selector, bus=None) -> CrawlerEngine:
    return CrawlerEngine(
        make_flaky_server(table),
        selector,
        seed=ENGINE_SEED,
        max_retries=MAX_RETRIES,
        backoff=make_backoff(),
        bus=bus,
    )


def seed_values(table):
    return sample_seed_values(table, 1, random.Random(SEEDS_SEED), min_frequency=2)


#: The three headline policies the acceptance criteria name (GL, MMMI, DM).
FLAKY_POLICIES = {
    "greedy-link": lambda deps: GreedyLinkSelector(),
    "mmmi": lambda deps: MinMaxMutualInformationSelector(batch_size=5),
    "dm": lambda deps: DomainKnowledgeSelector(deps["domain_table"]),
}


@pytest.fixture(scope="session")
def flaky_table():
    return generate_ebay(n_records=400, seed=1)


@pytest.fixture(scope="session")
def ebay_domain_table():
    """A DM domain table built from a disjoint ebay sample."""
    return build_domain_table(generate_ebay(n_records=300, seed=9))
