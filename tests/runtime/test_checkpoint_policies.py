"""Mid-crawl checkpoint round-trips for every selector type.

The contract under test: capture a checkpoint K steps into a crawl,
restore it onto a freshly constructed engine (same config, new objects),
and both crawls must finish with bit-identical results.  The checkpoint
payload is forced through JSON on the way, so nothing non-serializable
can hide in a state dict.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.datasets import car_interface, generate_cars
from repro.datasets.ebay import generate_ebay
from repro.domain import build_domain_table
from repro.experiments.harness import sample_seed_values
from repro.policies import (
    AdaptiveAttributeSelector,
    BreadthFirstSelector,
    DepthFirstSelector,
    DomainKnowledgeSelector,
    GreedyCliqueSelector,
    GreedyFrequencySelector,
    GreedyLinkSelector,
    GreedyMmmiSelector,
    MinMaxMutualInformationSelector,
    OracleSelector,
    RandomCliqueSelector,
    RandomSelector,
    record_combinations,
)
from repro.runtime.checkpoint import CheckpointError, CrawlCheckpoint
from repro.server.webdb import SimulatedWebDatabase

STEPS_BEFORE_CHECKPOINT = 8
STEPS_TO_FINISH = 40

SELECTORS = {
    "bfs": lambda ctx: BreadthFirstSelector(),
    "dfs": lambda ctx: DepthFirstSelector(),
    "random": lambda ctx: RandomSelector(),
    "greedy-link": lambda ctx: GreedyLinkSelector(),
    "greedy-frequency": lambda ctx: GreedyFrequencySelector(),
    "mmmi": lambda ctx: MinMaxMutualInformationSelector(batch_size=5),
    "dm": lambda ctx: DomainKnowledgeSelector(ctx["domain_table"]),
    "hybrid": lambda ctx: GreedyMmmiSelector(switch_coverage=0.5, batch_size=5),
    "adaptive": lambda ctx: AdaptiveAttributeSelector(epsilon=0.3),
    "oracle": lambda ctx: OracleSelector(ctx["table"], page_size=10),
    "clique-greedy": lambda ctx: GreedyCliqueSelector(),
    "clique-random": lambda ctx: RandomCliqueSelector(),
}

CLIQUE_POLICIES = ("clique-greedy", "clique-random")


@pytest.fixture(scope="module")
def ebay_table():
    return generate_ebay(n_records=400, seed=1)


@pytest.fixture(scope="module")
def cars_table():
    return generate_cars(500, seed=2)


@pytest.fixture(scope="module")
def domain_table():
    return build_domain_table(generate_ebay(n_records=300, seed=9))


def build_engine(policy, ebay_table, cars_table, domain_table):
    """A fresh (engine, seeds, allow_empty) triple for one policy."""
    if policy in CLIQUE_POLICIES:
        table = cars_table
        server = SimulatedWebDatabase(
            table, page_size=10, interface=car_interface()
        )
    else:
        table = ebay_table
        server = SimulatedWebDatabase(table, page_size=10)
    selector = SELECTORS[policy]({"table": table, "domain_table": domain_table})
    engine = CrawlerEngine(server, selector, seed=11)
    if policy in CLIQUE_POLICIES:
        first = table.get(table.record_ids()[0])
        selector.seed_combinations(
            record_combinations(first, table.schema.queriable, 2)
        )
        return engine, [], True
    seeds = sample_seed_values(table, 1, random.Random(3), min_frequency=2)
    return engine, seeds, False


def run_steps(engine, count):
    for _ in range(count):
        if engine.step() is None:
            break


@pytest.mark.parametrize("policy", sorted(SELECTORS))
def test_mid_crawl_checkpoint_round_trip(
    policy, ebay_table, cars_table, domain_table
):
    original, seeds, allow_empty = build_engine(
        policy, ebay_table, cars_table, domain_table
    )
    original.prepare(seeds, allow_empty_seeds=allow_empty)
    run_steps(original, STEPS_BEFORE_CHECKPOINT)

    checkpoint = CrawlCheckpoint.capture(original)
    # Force the payload through real JSON: state dicts must be pure data.
    checkpoint = CrawlCheckpoint.from_payload(
        json.loads(json.dumps(checkpoint.to_payload()))
    )
    assert checkpoint.step == original.steps

    restored, _, _ = build_engine(policy, ebay_table, cars_table, domain_table)
    checkpoint.restore_into(restored)
    assert restored.steps == original.steps
    assert len(restored.local_db) == len(original.local_db)
    assert restored.selector.pending_count() == original.selector.pending_count()
    assert restored.server.rounds == original.server.rounds

    run_steps(original, STEPS_TO_FINISH)
    run_steps(restored, STEPS_TO_FINISH)
    assert restored.result("done") == original.result("done")


def test_load_state_rejects_flag_mismatch(ebay_table):
    from repro.core.errors import CrawlError

    engine = CrawlerEngine(SimulatedWebDatabase(ebay_table),
                           GreedyLinkSelector(), seed=11, keep_outcomes=True)
    engine.prepare(sample_seed_values(ebay_table, 1, random.Random(3)))
    run_steps(engine, 3)
    state = engine.state_dict()
    other = CrawlerEngine(
        SimulatedWebDatabase(ebay_table), GreedyLinkSelector(), seed=11
    )
    with pytest.raises(CrawlError):
        other.load_state(state)


def test_capture_requires_runtime_state(ebay_table):
    class Bare:
        pass

    engine = CrawlerEngine(SimulatedWebDatabase(ebay_table),
                           GreedyLinkSelector(), seed=11)
    engine.server = Bare()
    with pytest.raises(CheckpointError):
        CrawlCheckpoint.capture(engine)


def test_checkpoint_file_round_trip(tmp_path, ebay_table):
    engine = CrawlerEngine(SimulatedWebDatabase(ebay_table),
                           GreedyLinkSelector(), seed=11)
    engine.prepare(sample_seed_values(ebay_table, 1, random.Random(3)))
    run_steps(engine, 5)
    checkpoint = CrawlCheckpoint.capture(
        engine, limits={"max_queries": 40}, checkpoint_every=7,
        setup={"policy": "greedy-link"},
    )
    path = tmp_path / "checkpoint.json"
    checkpoint.save(path)
    again = CrawlCheckpoint.load(path)
    assert again.step == checkpoint.step
    assert again.limits == {"max_queries": 40}
    assert again.checkpoint_every == 7
    assert again.setup == {"policy": "greedy-link"}
    assert again.engine == checkpoint.engine
