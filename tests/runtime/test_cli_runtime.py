"""End-to-end CLI tests for ``repro crawl --checkpoint-dir`` and ``repro resume``."""

from __future__ import annotations

import io as stdio

import pytest

from repro.cli import main


def run_cli(*argv):
    out = stdio.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


CRAWL_ARGS = (
    "crawl",
    "--dataset", "ebay",
    "--records", "400",
    "--policy", "greedy-link",
    "--seed", "5",
    "--max-queries", "60",
)


def report_line(text):
    """The one-line crawl report (records/rounds/queries/stopped-by)."""
    for line in text.splitlines():
        if line.startswith("greedy-link:"):
            return line
    raise AssertionError(f"no report line in: {text!r}")


class TestDurableCrawlCli:
    def test_checkpoint_suspend_resume_round_trip(self, tmp_path):
        checkpoint_dir = tmp_path / "ck"
        code, text = run_cli(
            *CRAWL_ARGS,
            "--checkpoint-dir", str(checkpoint_dir),
            "--checkpoint-every", "10",
            "--stop-after-steps", "17",
        )
        assert code == 0
        assert "stopped by suspended" in text
        assert "repro resume" in text
        assert (checkpoint_dir / "checkpoint.json").exists()
        assert (checkpoint_dir / "journal.jsonl").exists()

        code, resumed = run_cli("resume", str(checkpoint_dir))
        assert code == 0
        assert "resumed from step" in resumed

        # Ground truth: the same crawl uninterrupted.
        code, straight = run_cli(*CRAWL_ARGS)
        assert code == 0
        assert report_line(resumed) == report_line(straight)

    def test_durable_crawl_prints_metrics(self, tmp_path):
        code, text = run_cli(
            *CRAWL_ARGS, "--checkpoint-dir", str(tmp_path / "ck")
        )
        assert code == 0
        assert "Event-bus crawl metrics" in text
        assert "pages/query" in text
        assert "checkpoints written" in text

    def test_practical_policy_refuses_checkpointing(self, tmp_path):
        code, text = run_cli(
            "crawl",
            "--dataset", "ebay",
            "--records", "200",
            "--policy", "practical",
            "--checkpoint-dir", str(tmp_path / "ck"),
        )
        assert code == 2
        assert "practical" in text

    def test_resume_history_csv(self, tmp_path):
        checkpoint_dir = tmp_path / "ck"
        run_cli(
            *CRAWL_ARGS,
            "--checkpoint-dir", str(checkpoint_dir),
            "--stop-after-steps", "5",
        )
        history = tmp_path / "history.csv"
        code, _text = run_cli(
            "resume", str(checkpoint_dir), "--history", str(history)
        )
        assert code == 0
        assert history.exists()
        assert "rounds" in history.read_text().splitlines()[0]

    def test_resume_without_setup_recipe_is_refused(self, tmp_path, books):
        from repro.crawler.engine import CrawlerEngine
        from repro.policies import GreedyLinkSelector
        from repro.runtime.crawler import RuntimeCrawler
        from repro.server.webdb import SimulatedWebDatabase

        runtime = RuntimeCrawler(
            CrawlerEngine(
                SimulatedWebDatabase(books, page_size=2),
                GreedyLinkSelector(),
                seed=0,
            ),
            checkpoint_dir=tmp_path / "api-ck",
        )
        runtime.crawl([("publisher", "orbit")], stop_after_steps=2)
        runtime.close()
        code, text = run_cli("resume", str(tmp_path / "api-ck"))
        assert code == 2
        assert "no setup recipe" in text
