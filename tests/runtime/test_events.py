"""Unit tests for the event bus, sinks, and metrics aggregation."""

from __future__ import annotations

import json

import pytest

from repro.core.query import Query
from repro.runtime.events import (
    CheckpointWritten,
    CrashAfterSteps,
    CrawlEvent,
    CrawlStopped,
    EventBus,
    EventSink,
    JsonlEventSink,
    MetricsAggregator,
    PageFetched,
    QueryAborted,
    QueryFailed,
    QueryIssued,
    QueryRejected,
    RecordsHarvested,
    RetryAttempted,
    RingBufferSink,
    RoundsHistogram,
    SimulatedCrash,
)

Q = Query("honda", attribute="make")


class TestEventPayloads:
    def test_kinds_are_distinct_and_stable(self):
        kinds = {
            QueryIssued.kind,
            PageFetched.kind,
            QueryRejected.kind,
            QueryAborted.kind,
            QueryFailed.kind,
            RetryAttempted.kind,
            RecordsHarvested.kind,
            CheckpointWritten.kind,
            CrawlStopped.kind,
        }
        assert len(kinds) == 9

    def test_payload_carries_kind_and_stamps(self):
        event = RecordsHarvested(
            query=Q, step=3, new_records=7, pages_fetched=2,
            records_total=40, rounds=11, policy="gl", source="ebay",
        )
        payload = event.payload()
        assert payload["event"] == "records-harvested"
        assert payload["policy"] == "gl"
        assert payload["source"] == "ebay"
        assert payload["step"] == 3 and payload["new"] == 7

    def test_unstamped_payload_omits_policy(self):
        assert "policy" not in QueryIssued(query=Q).payload()


class TestEventBus:
    def test_no_sinks_is_a_noop(self):
        bus = EventBus()
        assert not bus.has_sinks
        bus.emit(QueryIssued(query=Q))  # must not raise

    def test_emit_stamps_policy_without_overwriting(self):
        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        bus.emit(QueryIssued(query=Q), policy="gl")
        bus.emit(QueryIssued(query=Q, policy="explicit"), policy="gl")
        assert [e.policy for e in ring.events] == ["gl", "explicit"]

    def test_detach(self):
        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        bus.detach(ring)
        assert not bus.has_sinks

    def test_sink_exceptions_propagate(self):
        class Boom(EventSink):
            def handle(self, event: CrawlEvent) -> None:
                raise RuntimeError("boom")

        bus = EventBus()
        bus.attach(Boom())
        with pytest.raises(RuntimeError):
            bus.emit(QueryIssued(query=Q))


class TestRingBufferSink:
    def test_capacity_evicts_oldest(self):
        ring = RingBufferSink(capacity=3)
        for step in range(5):
            ring.handle(RecordsHarvested(query=Q, step=step))
        assert len(ring) == 3
        assert [e.step for e in ring.events] == [2, 3, 4]

    def test_of_kind_filters(self):
        ring = RingBufferSink()
        ring.handle(QueryIssued(query=Q))
        ring.handle(RecordsHarvested(query=Q, step=1))
        assert len(ring.of_kind("query-issued")) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_dropped_counts_evictions(self):
        ring = RingBufferSink(capacity=3)
        for step in range(3):
            ring.handle(RecordsHarvested(query=Q, step=step))
        assert ring.dropped == 0
        for step in range(3, 8):
            ring.handle(RecordsHarvested(query=Q, step=step))
        assert ring.dropped == 5
        assert len(ring) == 3  # still full, history truncated


class TestJsonlEventSink:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.handle(QueryIssued(query=Q, policy="gl"))
        sink.handle(CrawlStopped(stopped_by="budget", rounds=9))
        sink.close()
        lines = path.read_text().splitlines()
        assert sink.events_written == 2
        payloads = [json.loads(line) for line in lines]
        assert payloads[0]["event"] == "query-issued"
        assert payloads[1]["stopped_by"] == "budget"


class TestRoundsHistogram:
    def test_bucket_assignment(self):
        histogram = RoundsHistogram()
        for value in (1, 2, 3, 4, 5, 6, 100):
            histogram.observe(value)
        buckets = histogram.as_dict()
        assert buckets["1"] == 1
        assert buckets["2"] == 1
        assert buckets["3"] == 1
        assert buckets["4-5"] == 2
        assert buckets["6-8"] == 1
        assert buckets[">55"] == 1

    def test_mean(self):
        histogram = RoundsHistogram()
        assert histogram.mean == 0.0
        histogram.observe(2)
        histogram.observe(4)
        assert histogram.mean == 3.0

    def test_total_matches_bucket_sum(self):
        histogram = RoundsHistogram()
        for value in range(1, 80):
            histogram.observe(value)
        assert sum(histogram.counts) == histogram.total == 79


class TestMetricsAggregator:
    def feed(self, metrics):
        bus = EventBus()
        bus.attach(metrics)
        bus.emit(QueryIssued(query=Q), policy="gl")
        bus.emit(RecordsHarvested(query=Q, step=1, new_records=8, pages_fetched=2), policy="gl")
        bus.emit(RecordsHarvested(query=Q, step=2, new_records=2, pages_fetched=2), policy="gl")
        bus.emit(RetryAttempted(query=Q, attempt=1), policy="gl")
        bus.emit(QueryAborted(query=Q, pages_fetched=3), policy="gl")
        bus.emit(RecordsHarvested(query=Q, step=1, new_records=5, pages_fetched=1), policy="dm")

    def test_counters_and_rates(self):
        metrics = MetricsAggregator()
        self.feed(metrics)
        assert metrics.count("records-harvested") == 3
        assert metrics.count("records-harvested", "gl") == 2
        assert metrics.harvest_rate("gl") == pytest.approx(10 / 4)
        assert metrics.policies() == ["dm", "gl"]

    def test_summary_is_json_safe(self):
        metrics = MetricsAggregator()
        self.feed(metrics)
        summary = json.loads(json.dumps(metrics.summary()))
        gl = summary["policies"]["gl"]
        assert gl["queries"] == 2
        assert gl["pages"] == 4
        assert gl["new_records"] == 10
        assert gl["retries"] == 1
        assert gl["aborted"] == 1
        assert summary["events_total"] == 6


class TestCrashAfterSteps:
    def test_raises_on_nth_harvest(self):
        crash = CrashAfterSteps(2)
        crash.handle(RecordsHarvested(query=Q, step=1))
        crash.handle(QueryIssued(query=Q))  # non-harvest events don't count
        with pytest.raises(SimulatedCrash):
            crash.handle(RecordsHarvested(query=Q, step=2))

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError):
            CrashAfterSteps(0)
