"""Exponential backoff and the retrying transport.

The satellite under test: ``submit_with_retries`` actually *uses* its
RNG — jittered delays are drawn from it, charged to the communication
log in rounds, and announced as ``RetryAttempted`` events.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.query import Query
from repro.server.flaky import (
    ExponentialBackoff,
    FlakyServer,
    PermanentServerFailure,
    TransientServerError,
    submit_with_retries,
)
from repro.server.network import CommunicationLog
from repro.server.webdb import SimulatedWebDatabase

Q = Query("orbit", attribute="publisher")


class TestExponentialBackoff:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base_delay=0)
        with pytest.raises(ValueError):
            ExponentialBackoff(multiplier=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(base_delay=10, max_delay=5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.0)

    def test_delays_grow_then_cap(self):
        backoff = ExponentialBackoff(
            base_delay=1.0, multiplier=2.0, max_delay=8.0, jitter=0.0
        )
        assert [backoff.delay(n) for n in range(1, 6)] == [1, 2, 4, 8, 8]

    def test_jitter_stays_in_band_and_consumes_rng(self):
        backoff = ExponentialBackoff(base_delay=10.0, jitter=0.5)
        rng = random.Random(0)
        before = rng.getstate()
        delays = [backoff.delay(1, rng) for _ in range(50)]
        assert rng.getstate() != before  # the rng was actually used
        assert all(5.0 <= delay <= 15.0 for delay in delays)
        assert len(set(delays)) > 1  # jitter, not a constant

    def test_no_rng_means_no_jitter(self):
        backoff = ExponentialBackoff(base_delay=3.0, jitter=0.5)
        assert backoff.delay(1) == 3.0

    def test_cost_defaults_to_free(self):
        assert ExponentialBackoff().cost(123.0) == 0

    def test_charging_rounds_up(self):
        backoff = ExponentialBackoff.charging(seconds_per_round=10.0)
        assert backoff.cost(0.5) == 1
        assert backoff.cost(25.0) == 3


class AlwaysFailing:
    """A server whose every submit times out (still charges the round)."""

    def __init__(self) -> None:
        self.log = CommunicationLog(keep_requests=False)
        self.attempts = 0

    def submit(self, query, page_number=1):
        self.attempts += 1
        self.log.record(query, page_number, 0)
        raise TransientServerError("timeout")


class TestSubmitWithRetries:
    def books_server(self, books, failure_rate=0.5, seed=0):
        return FlakyServer(
            SimulatedWebDatabase(books, page_size=2),
            failure_rate=failure_rate,
            seed=seed,
        )

    def test_absorbs_transient_failures(self, books):
        server = self.books_server(books, failure_rate=0.5, seed=3)
        page = submit_with_retries(server, Q, max_retries=20)
        assert page.records

    def test_permanent_failure_after_budget(self):
        server = AlwaysFailing()
        with pytest.raises(PermanentServerFailure):
            submit_with_retries(server, Q, max_retries=4)
        assert server.attempts == 5  # initial try + 4 retries

    def test_backoff_charges_rounds_to_the_log(self):
        server = AlwaysFailing()
        backoff = ExponentialBackoff(
            base_delay=10.0, multiplier=2.0, max_delay=100.0, jitter=0.0,
            backoff_cost=lambda delay: math.ceil(delay / 10.0),
        )
        with pytest.raises(PermanentServerFailure):
            submit_with_retries(server, Q, max_retries=3, backoff=backoff)
        # 4 failed requests cost 4 rounds; waits of 10, 20, 40 seconds
        # cost 1 + 2 + 4 rounds (no wait after the final attempt).
        assert server.log.rounds == 4 + 7

    def test_rng_jitters_the_charged_delays(self):
        def run(seed):
            server = AlwaysFailing()
            backoff = ExponentialBackoff.charging(
                seconds_per_round=1.0, base_delay=10.0, jitter=0.5
            )
            events = []
            with pytest.raises(PermanentServerFailure):
                submit_with_retries(
                    server, Q, max_retries=3,
                    rng=random.Random(seed), backoff=backoff,
                    emit=events.append,
                )
            return server.log.rounds, [e.backoff_delay for e in events]

        rounds_1, delays_1 = run(1)
        rounds_2, delays_2 = run(2)
        assert delays_1 != delays_2  # different jitter draws
        assert rounds_1 > 4 and rounds_2 > 4  # waits charged beyond requests

    def test_retry_events_are_emitted(self):
        server = AlwaysFailing()
        backoff = ExponentialBackoff(jitter=0.0)
        events = []
        with pytest.raises(PermanentServerFailure):
            submit_with_retries(
                server, Q, max_retries=3, backoff=backoff, emit=events.append
            )
        assert [event.attempt for event in events] == [1, 2, 3]
        assert all(event.kind == "retry-attempted" for event in events)
        assert [event.backoff_delay for event in events] == [1.0, 2.0, 4.0]

    def test_charge_fires_round_callbacks(self):
        log = CommunicationLog(keep_requests=False)
        seen = []
        log.on_round(seen.append)
        log.charge(3)
        assert log.rounds == 3
        assert seen == [1, 2, 3]


class TestFlakyRuntimeState:
    def test_failure_stream_round_trips(self, books):
        server = FlakyServer(
            SimulatedWebDatabase(books, page_size=2), failure_rate=0.4, seed=5
        )
        # Burn some of the failure stream.
        for _ in range(6):
            try:
                server.submit(Q)
            except TransientServerError:
                pass
        state = server.runtime_state()
        twin = FlakyServer(
            SimulatedWebDatabase(books, page_size=2), failure_rate=0.4, seed=0
        )
        twin.load_runtime_state(state)
        assert twin.rounds == server.rounds
        assert twin.failures_injected == server.failures_injected

        def outcomes(target):
            results = []
            for _ in range(10):
                try:
                    target.submit(Q)
                    results.append("ok")
                except TransientServerError:
                    results.append("fail")
            return results

        assert outcomes(twin) == outcomes(server)
