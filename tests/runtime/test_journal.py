"""Outcome codec and write-ahead journal tests, including crash torn-line cases."""

from __future__ import annotations

import random

import pytest

from repro.core.query import ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.crawler.prober import QueryOutcome
from repro.runtime.journal import (
    JournalEntry,
    OutcomeJournal,
    decode_outcome,
    encode_outcome,
    read_journal,
)
from repro.runtime.serialize import (
    SerializationError,
    decode_query,
    decode_record,
    encode_query,
    encode_record,
    encode_rng,
    restore_rng,
)


def make_outcome(step: int = 1) -> QueryOutcome:
    return QueryOutcome(
        query=Query("honda", attribute="make"),
        pages_fetched=2,
        records_returned=12,
        new_records=[
            Record(10 * step, {"make": ("honda",), "model": ("civic", "crx")}),
            Record(10 * step + 1, {"make": ("honda",)}),
        ],
        candidate_values=[
            AttributeValue("model", "civic"),
            AttributeValue("model", "crx"),
        ],
        total_matches=37,
        accessible_matches=20,
    )


class TestOutcomeCodec:
    def test_round_trip_preserves_everything(self):
        outcome = make_outcome()
        again = decode_outcome(encode_outcome(outcome))
        assert again.query == outcome.query
        assert again.pages_fetched == outcome.pages_fetched
        assert again.records_returned == outcome.records_returned
        assert again.new_records == outcome.new_records
        assert again.candidate_values == outcome.candidate_values
        assert again.total_matches == outcome.total_matches
        assert again.accessible_matches == outcome.accessible_matches
        assert (again.aborted, again.rejected, again.failed) == (False, False, False)

    def test_round_trip_is_stable(self):
        payload = encode_outcome(make_outcome())
        assert encode_outcome(decode_outcome(payload)) == payload

    def test_conjunctive_query_round_trip(self):
        query = ConjunctiveQuery(
            predicates=(
                AttributeValue("make", "honda"),
                AttributeValue("model", "civic"),
            )
        )
        assert decode_query(encode_query(query)) == query

    def test_record_round_trip_restores_tuples(self):
        record = Record(7, {"author": ("knuth", "liskov")})
        again = decode_record(encode_record(record))
        assert again == record
        assert again.fields["author"] == ("knuth", "liskov")

    def test_rng_round_trip_resumes_stream(self):
        rng = random.Random(42)
        rng.random()
        state = encode_rng(rng)
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        restore_rng(fresh, state)
        assert [fresh.random() for _ in range(5)] == expected

    def test_bad_payload_raises(self):
        with pytest.raises(SerializationError):
            decode_outcome({"query": {"a": "make", "v": "honda"}})


class TestJournal:
    def write_entries(self, path, count=3):
        journal = OutcomeJournal(path)
        for step in range(1, count + 1):
            journal.record(
                step=step,
                rounds=step * 3,
                outcome=make_outcome(step),
                server_state={"rounds": step * 3},
            )
        journal.close()
        return journal

    def test_write_then_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = self.write_entries(path)
        assert journal.entries_written == 3
        entries = read_journal(path)
        assert [e.step for e in entries] == [1, 2, 3]
        assert entries[0].rounds == 3
        assert entries[2].outcome.new_records[0].record_id == 30

    def test_record_buffers_until_flush(self, tmp_path):
        """Group commit: entries reach the OS at flush, not per record."""
        path = tmp_path / "journal.jsonl"
        journal = OutcomeJournal(path)
        journal.record(
            step=1, rounds=3, outcome=make_outcome(1), server_state={"rounds": 3}
        )
        assert path.read_text(encoding="utf-8") == ""
        journal.flush()
        assert [e.step for e in read_journal(path)] == [1]
        journal.close()

    def test_plain_server_state_is_elided(self, tmp_path):
        """A bare round counter duplicates the entry's own ``rounds``."""
        path = tmp_path / "journal.jsonl"
        journal = OutcomeJournal(path)
        journal.record(
            step=1, rounds=3, outcome=make_outcome(1), server_state={"rounds": 3}
        )
        journal.record(
            step=2, rounds=6, outcome=make_outcome(2),
            server_state={"rounds": 6, "rng": [3, [1, 2], None]},
        )
        journal.close()
        import json as _json

        raw = [
            _json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert "server" not in raw[0]
        assert "server" in raw[1]
        entries = read_journal(path)
        assert entries[0].server == {"rounds": 3}  # reconstructed
        assert entries[1].server["rng"] == [3, [1, 2], None]

    def test_after_step_filters(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_entries(path)
        assert [e.step for e in read_journal(path, after_step=2)] == [3]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == []

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_entries(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"step": 4, "rounds"')  # crash mid-write
        assert [e.step for e in read_journal(path)] == [1, 2, 3]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_entries(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"garbage": true}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SerializationError):
            read_journal(path)

    def test_append_mode_continues(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_entries(path, count=2)
        journal = OutcomeJournal(path, append=True)
        journal.record(
            step=3, rounds=9, outcome=make_outcome(3), server_state={"rounds": 9}
        )
        journal.close()
        assert [e.step for e in read_journal(path)] == [1, 2, 3]

    def test_backoff_rng_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        rng = random.Random(5)
        rng.random()
        with OutcomeJournal(path) as journal:
            journal.record(
                step=1,
                rounds=1,
                outcome=make_outcome(),
                server_state={"rounds": 1},
                backoff_rng=rng,
            )
        entry = read_journal(path)[0]
        fresh = random.Random()
        restore_rng(fresh, entry.backoff_rng)
        assert fresh.random() == rng.random()

    def test_entry_json_round_trip(self):
        entry = JournalEntry(
            step=4, rounds=12, outcome=make_outcome(4), server={"rounds": 12}
        )
        again = JournalEntry.from_json(entry.to_json())
        assert again.step == 4 and again.rounds == 12
        assert again.outcome.query == entry.outcome.query
        assert again.backoff_rng is None
