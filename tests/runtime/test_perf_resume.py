"""Crash/resume under the performance knobs.

The incremental frontier and the vectorized kernels are pure
accelerations — so a crawl configured with them must not only match an
unaccelerated crawl, it must *crash and resume* into the same
bit-identical result.  The resumed process may even disagree with the
crashed one about the knobs (scalar reference vs vectorized resume):
the checkpoint encodes scores and values, never kernel choices, so any
configuration must resume any other's checkpoint losslessly.
"""

from __future__ import annotations

import pytest

from repro.policies import GreedyLinkSelector, MinMaxMutualInformationSelector
from repro.policies import vectorized
from repro.runtime.crawler import RuntimeCrawler
from repro.runtime.events import CrashAfterSteps, EventBus, SimulatedCrash

from tests.runtime.conftest import (
    CHECKPOINT_EVERY,
    MAX_QUERIES,
    make_backoff,
    make_engine,
    make_flaky_server,
    seed_values,
)

CRASH_AFTER = 13

#: (reference selector, crashing selector, resuming selector) — each row
#: pins one acceleration knob across a crash boundary.
CONFIGS = {
    "gl-full-rescore": (
        lambda: GreedyLinkSelector(),
        lambda: GreedyLinkSelector(full_rescore_every=1),
        lambda: GreedyLinkSelector(full_rescore_every=1),
    ),
    "gl-scalar-to-vectorized": (
        lambda: GreedyLinkSelector(),
        lambda: GreedyLinkSelector(use_vectorized=False),
        lambda: GreedyLinkSelector(use_vectorized=True),
    ),
    "mmmi-vectorized": (
        lambda: MinMaxMutualInformationSelector(batch_size=5, use_vectorized=False),
        lambda: MinMaxMutualInformationSelector(batch_size=5, use_vectorized=True),
        lambda: MinMaxMutualInformationSelector(batch_size=5, use_vectorized=True),
    ),
}

VECTOR_KEYS = {"gl-scalar-to-vectorized", "mmmi-vectorized"}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_crash_resume_matches_unaccelerated_reference(
    tmp_path, config, flaky_table
):
    if config in VECTOR_KEYS and not vectorized.available():
        pytest.skip("numpy kernels unavailable")
    make_reference, make_crashing, make_resuming = CONFIGS[config]

    reference = make_engine(flaky_table, make_reference()).crawl(
        seed_values(flaky_table), max_queries=MAX_QUERIES
    )

    bus = EventBus()
    bus.attach(CrashAfterSteps(CRASH_AFTER))
    runtime = RuntimeCrawler(
        make_engine(flaky_table, make_crashing(), bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    with pytest.raises(SimulatedCrash):
        runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()

    resumed = RuntimeCrawler.resume(
        tmp_path,
        make_flaky_server(flaky_table),
        make_resuming(),
        backoff=make_backoff(),
    )
    result = resumed.run()
    resumed.close()
    assert result == reference
