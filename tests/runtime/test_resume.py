"""Crash/resume determinism — the acceptance tests for ``repro.runtime``.

Every test compares against an uninterrupted reference crawl on the
flaky scaffold (transient failures, retries, charged jittered backoff).
A resumed crawl must produce a bit-identical
:class:`~repro.crawler.engine.CrawlResult`: same records, same rounds,
same history curve, same stopping reason.
"""

from __future__ import annotations

import pytest

from repro.runtime.crawler import (
    CHECKPOINT_FILE,
    PROGRESS_FILE,
    RuntimeCrawler,
    rebuild_engine_state,
)
from repro.runtime.checkpoint import CheckpointError, CrawlCheckpoint
from repro.runtime.events import (
    CrashAfterSteps,
    EventBus,
    MetricsAggregator,
    RingBufferSink,
    SimulatedCrash,
)

from tests.runtime.conftest import (
    CHECKPOINT_EVERY,
    FLAKY_POLICIES,
    MAX_QUERIES,
    make_backoff,
    make_engine,
    make_flaky_server,
    seed_values,
)

POLICY_KEYS = sorted(FLAKY_POLICIES)
CRASH_STEPS = (3, 13, 27)
SUSPEND_STEPS = 17


def build_engine(policy, table, domain_table, bus=None):
    selector = FLAKY_POLICIES[policy]({"domain_table": domain_table})
    return make_engine(table, selector, bus=bus)


@pytest.fixture(scope="module")
def reference_results(flaky_table, ebay_domain_table):
    """Uninterrupted plain crawls — the ground truth per policy."""
    results = {}
    for policy in POLICY_KEYS:
        engine = build_engine(policy, flaky_table, ebay_domain_table)
        results[policy] = engine.crawl(
            seed_values(flaky_table), max_queries=MAX_QUERIES
        )
    return results


def resume_and_finish(tmp_path, policy, flaky_table, ebay_domain_table):
    """Fresh server + selector, resume from disk, run to the stored limits."""
    selector = FLAKY_POLICIES[policy]({"domain_table": ebay_domain_table})
    runtime = RuntimeCrawler.resume(
        tmp_path,
        make_flaky_server(flaky_table),
        selector,
        backoff=make_backoff(),
    )
    result = runtime.run()
    runtime.close()
    return result


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_durable_crawl_matches_plain(
    tmp_path, policy, flaky_table, ebay_domain_table, reference_results
):
    engine = build_engine(policy, flaky_table, ebay_domain_table)
    runtime = RuntimeCrawler(
        engine, checkpoint_dir=tmp_path, checkpoint_every=CHECKPOINT_EVERY
    )
    result = runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()
    assert result == reference_results[policy]
    assert runtime.checkpoints_written >= 1


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_suspend_then_resume_matches(
    tmp_path, policy, flaky_table, ebay_domain_table, reference_results
):
    runtime = RuntimeCrawler(
        build_engine(policy, flaky_table, ebay_domain_table),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    partial = runtime.crawl(
        seed_values(flaky_table),
        max_queries=MAX_QUERIES,
        stop_after_steps=SUSPEND_STEPS,
    )
    runtime.close()
    assert partial.stopped_by == "suspended"
    assert partial.queries_issued <= reference_results[policy].queries_issued

    result = resume_and_finish(tmp_path, policy, flaky_table, ebay_domain_table)
    assert result == reference_results[policy]


def test_random_policy_resume_is_deterministic(tmp_path, flaky_table):
    """Suspend/resume under RandomSelector is bit-identical.

    The random frontier draws indices from the engine's checkpointed
    policy RNG (RandomFrontier refuses an implicit unseeded stream), so
    a resumed random crawl must replay exactly where it left off.
    """
    from repro.policies import RandomSelector

    reference = make_engine(flaky_table, RandomSelector()).crawl(
        seed_values(flaky_table), max_queries=MAX_QUERIES
    )

    runtime = RuntimeCrawler(
        make_engine(flaky_table, RandomSelector()),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    partial = runtime.crawl(
        seed_values(flaky_table),
        max_queries=MAX_QUERIES,
        stop_after_steps=SUSPEND_STEPS,
    )
    runtime.close()
    assert partial.stopped_by == "suspended"

    resumed = RuntimeCrawler.resume(
        tmp_path,
        make_flaky_server(flaky_table),
        RandomSelector(),
        backoff=make_backoff(),
    )
    result = resumed.run()
    resumed.close()
    assert result == reference


@pytest.mark.parametrize("policy", POLICY_KEYS)
@pytest.mark.parametrize("crash_after", CRASH_STEPS)
def test_crash_then_resume_matches(
    tmp_path, policy, crash_after, flaky_table, ebay_domain_table,
    reference_results,
):
    """Kill the crawl mid-step at step N; recovery must be lossless."""
    bus = EventBus()
    bus.attach(CrashAfterSteps(crash_after))
    runtime = RuntimeCrawler(
        build_engine(policy, flaky_table, ebay_domain_table, bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    with pytest.raises(SimulatedCrash):
        runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()

    result = resume_and_finish(tmp_path, policy, flaky_table, ebay_domain_table)
    assert result == reference_results[policy]


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_journal_replay_reproduces_crash_position(
    tmp_path, policy, flaky_table, ebay_domain_table
):
    """checkpoint.json + journal.jsonl alone pin down the crawl position.

    The crash fires inside step 27 — after the engine applied it but
    before the journal recorded it — so the recoverable position is
    step 26.  A twin crawl stepped exactly 26 times provides the ground
    truth for the record count, round counter, and frontier size.

    ``snapshot_every`` makes the periodic checkpoints full-state
    snapshots, so the snapshot at step 20 bounds the replay to the six
    journal entries after it.
    """
    crash_after = 27
    bus = EventBus()
    bus.attach(CrashAfterSteps(crash_after))
    runtime = RuntimeCrawler(
        build_engine(policy, flaky_table, ebay_domain_table, bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
        snapshot_every=CHECKPOINT_EVERY,
    )
    with pytest.raises(SimulatedCrash):
        runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()

    twin = build_engine(policy, flaky_table, ebay_domain_table)
    twin.prepare(seed_values(flaky_table))
    for _ in range(crash_after - 1):
        assert twin.step() is not None

    state = rebuild_engine_state(tmp_path)
    assert state["checkpoint_step"] == 20
    assert state["step"] == crash_after - 1
    assert state["journal_entries"] == crash_after - 1 - 20
    assert state["records"] == len(twin.local_db)
    assert state["rounds"] == twin.server.rounds

    selector = FLAKY_POLICIES[policy]({"domain_table": ebay_domain_table})
    resumed = RuntimeCrawler.resume(
        tmp_path, make_flaky_server(flaky_table), selector,
        backoff=make_backoff(),
    )
    engine = resumed.engine
    assert engine.steps == crash_after - 1
    assert len(engine.local_db) == len(twin.local_db)
    assert engine.selector.pending_count() == twin.selector.pending_count()
    assert engine.server.rounds == twin.server.rounds
    resumed.close()


def test_light_checkpoint_markers_recover_from_baseline(
    tmp_path, flaky_table, ebay_domain_table
):
    """Default checkpointing is light: no periodic state snapshots.

    ``checkpoint.json`` stays at the step-0 baseline; the periodic
    markers flush the journal and stamp ``progress.json`` with the
    durable horizon.  Recovery replays the whole journal through the
    selector and still lands exactly on the pre-crash step.
    """
    import json

    crash_after = 27
    bus = EventBus()
    bus.attach(CrashAfterSteps(crash_after))
    runtime = RuntimeCrawler(
        build_engine("greedy-link", flaky_table, ebay_domain_table, bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    with pytest.raises(SimulatedCrash):
        runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()

    progress = json.loads((tmp_path / PROGRESS_FILE).read_text())
    assert progress["step"] == 20  # last marker before the crash
    assert progress["journal_entries"] == 20

    state = rebuild_engine_state(tmp_path)
    assert state["checkpoint_step"] == 0  # baseline only — by design
    assert state["committed_step"] == 20
    assert state["step"] == crash_after - 1

    resumed = RuntimeCrawler.resume(
        tmp_path,
        make_flaky_server(flaky_table),
        FLAKY_POLICIES["greedy-link"]({"domain_table": ebay_domain_table}),
        backoff=make_backoff(),
    )
    assert resumed.engine.steps == crash_after - 1
    resumed.close()


def test_runtime_without_checkpoint_dir_matches_plain(
    flaky_table, ebay_domain_table, reference_results
):
    """No checkpoint dir: the runtime degrades to a plain crawl loop."""
    runtime = RuntimeCrawler(
        build_engine("greedy-link", flaky_table, ebay_domain_table)
    )
    result = runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    assert result == reference_results["greedy-link"]


def test_durable_crawl_emits_lifecycle_events(
    tmp_path, flaky_table, ebay_domain_table
):
    bus = EventBus()
    ring = bus.attach(RingBufferSink(capacity=10_000))
    metrics = bus.attach(MetricsAggregator())
    runtime = RuntimeCrawler(
        build_engine("greedy-link", flaky_table, ebay_domain_table, bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    result = runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()
    assert metrics.count("records-harvested") == result.queries_issued
    assert metrics.count("checkpoint-written") == runtime.checkpoints_written
    stopped = ring.of_kind("crawl-stopped")
    assert len(stopped) == 1
    assert stopped[0].stopped_by == result.stopped_by
    assert stopped[0].records == result.records_harvested
    # The flaky scaffold guarantees some retries actually happened.
    assert metrics.count("retry-attempted") > 0
    steps = [event.step for event in ring.of_kind("records-harvested")]
    assert steps == sorted(steps)


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_resumed_journal_is_bit_identical(
    tmp_path, policy, flaky_table, ebay_domain_table, reference_results
):
    """Mid-run checkpoint + resume must rewrite history *exactly*.

    An uninterrupted durable crawl and a suspended-then-resumed crawl
    must leave byte-for-byte identical ``journal.jsonl`` files: the
    resumed engine replays the journal, restores the interner/RNG/
    frontier state, and continues producing entries indistinguishable
    from the run that never stopped.  This pins the dense-interner
    checkpoint state — a drifted id assignment after resume would show
    up as diverging outcomes in the journal tail.
    """
    straight_dir = tmp_path / "straight"
    resumed_dir = tmp_path / "resumed"

    runtime = RuntimeCrawler(
        build_engine(policy, flaky_table, ebay_domain_table),
        checkpoint_dir=straight_dir,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    straight = runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()

    runtime = RuntimeCrawler(
        build_engine(policy, flaky_table, ebay_domain_table),
        checkpoint_dir=resumed_dir,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    partial = runtime.crawl(
        seed_values(flaky_table),
        max_queries=MAX_QUERIES,
        stop_after_steps=SUSPEND_STEPS,
    )
    runtime.close()
    assert partial.stopped_by == "suspended"
    resumed = resume_and_finish(
        resumed_dir, policy, flaky_table, ebay_domain_table
    )

    assert straight == reference_results[policy]
    assert resumed == reference_results[policy]
    straight_journal = (straight_dir / "journal.jsonl").read_bytes()
    resumed_journal = (resumed_dir / "journal.jsonl").read_bytes()
    assert straight_journal == resumed_journal


def test_resume_requires_a_checkpoint(tmp_path, flaky_table, ebay_domain_table):
    selector = FLAKY_POLICIES["greedy-link"]({})
    with pytest.raises(CheckpointError):
        RuntimeCrawler.resume(
            tmp_path / "empty", make_flaky_server(flaky_table), selector
        )


def test_resume_limits_survive_the_checkpoint(
    tmp_path, flaky_table, ebay_domain_table
):
    """The stored limits (max_queries) drive the resumed run unchanged."""
    runtime = RuntimeCrawler(
        build_engine("greedy-link", flaky_table, ebay_domain_table),
        checkpoint_dir=tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    runtime.crawl(
        seed_values(flaky_table), max_queries=MAX_QUERIES, stop_after_steps=5
    )
    runtime.close()
    checkpoint = CrawlCheckpoint.load(tmp_path / CHECKPOINT_FILE)
    assert checkpoint.limits["max_queries"] == MAX_QUERIES
    result = resume_and_finish(
        tmp_path, "greedy-link", flaky_table, ebay_domain_table
    )
    assert result.stopped_by == "max-queries"
    assert result.queries_issued == MAX_QUERIES
