"""Warehouse scheduler checkpointing: shared-budget state survives restore.

The invariant: ``run(300)`` → snapshot → rebuild from fresh engines →
``run(600)`` must land exactly where one uninterrupted ``run(600)``
does, for both allocation strategies.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.crawler.engine import CrawlerEngine
from repro.datasets.ebay import generate_ebay
from repro.experiments.harness import sample_seed_values
from repro.policies import GreedyLinkSelector
from repro.server.webdb import SimulatedWebDatabase
from repro.warehouse.scheduler import GreedyScheduler, RoundRobinScheduler

N_SOURCES = 3
FIRST_BUDGET = 300
FULL_BUDGET = 600


@pytest.fixture(scope="module")
def tables():
    return {
        f"store-{index}": generate_ebay(n_records=200, seed=index)
        for index in range(N_SOURCES)
    }


def fresh_engines(tables):
    return {
        name: CrawlerEngine(
            SimulatedWebDatabase(table), GreedyLinkSelector(), seed=4
        )
        for name, table in tables.items()
    }


def seeds_for(tables):
    rng = random.Random(2)
    return {
        name: sample_seed_values(table, 1, rng, min_frequency=2)
        for name, table in tables.items()
    }


SCHEDULERS = {"greedy": GreedyScheduler, "round-robin": RoundRobinScheduler}


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_checkpointed_allocation_matches_straight_run(kind, tables):
    scheduler_cls = SCHEDULERS[kind]

    straight = scheduler_cls(fresh_engines(tables), seeds_for(tables))
    want = straight.run(FULL_BUDGET)

    first = scheduler_cls(fresh_engines(tables), seeds_for(tables))
    first.run(FIRST_BUDGET)
    # Force the snapshot through JSON — it must be pure data.
    state = json.loads(json.dumps(first.state_dict()))

    restored = scheduler_cls.from_checkpoint(fresh_engines(tables), state)
    assert restored.rounds_spent == first.rounds_spent
    got = restored.run(FULL_BUDGET)

    assert got.rounds_used == want.rounds_used
    assert got.total_records == want.total_records
    assert got.results == want.results
    assert got.allocation() == want.allocation()


def test_growing_budget_is_continuous(tables):
    """run(300) then run(600) on one scheduler == a single run(600)."""
    split = GreedyScheduler(fresh_engines(tables), seeds_for(tables))
    split.run(FIRST_BUDGET)
    got = split.run(FULL_BUDGET)
    want = GreedyScheduler(fresh_engines(tables), seeds_for(tables)).run(
        FULL_BUDGET
    )
    assert got.results == want.results
    assert got.rounds_used == want.rounds_used


def test_spent_counter_tracks_server_rounds(tables):
    scheduler = GreedyScheduler(fresh_engines(tables), seeds_for(tables))
    result = scheduler.run(FIRST_BUDGET)
    total = sum(r.communication_rounds for r in result.results.values())
    assert scheduler.rounds_spent == total
    assert result.rounds_used == total


def test_load_state_rejects_source_mismatch(tables):
    scheduler = GreedyScheduler(fresh_engines(tables), seeds_for(tables))
    scheduler.run(FIRST_BUDGET)
    state = scheduler.state_dict()
    wrong = {
        "other": CrawlerEngine(
            SimulatedWebDatabase(generate_ebay(n_records=100, seed=8)),
            GreedyLinkSelector(),
            seed=4,
        )
    }
    from repro.core.errors import CrawlError

    with pytest.raises(CrawlError):
        GreedyScheduler.from_checkpoint(wrong, state)


def capped_engines(tables, max_pages=4):
    from repro.crawler.abortion import PageCapAbort

    return {
        name: CrawlerEngine(
            SimulatedWebDatabase(table),
            GreedyLinkSelector(),
            seed=4,
            abortion=PageCapAbort(max_pages=max_pages),
            max_retries=0,
        )
        for name, table in tables.items()
    }


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_resume_preserves_new_config_knobs(kind, tables):
    """max_step_rounds / fairness_every survive a checkpoint boundary.

    The config knobs are constructor arguments, not snapshot state;
    ``from_checkpoint`` must accept them again and the resumed run must
    match an uninterrupted run built with the same knobs.
    """
    scheduler_cls = SCHEDULERS[kind]
    knobs = {"max_step_rounds": 4, "fairness_every": 50, "window_size": 5}

    straight = scheduler_cls(capped_engines(tables), seeds_for(tables), **knobs)
    want = straight.run(FULL_BUDGET)

    first = scheduler_cls(capped_engines(tables), seeds_for(tables), **knobs)
    first.run(FIRST_BUDGET)
    state = json.loads(json.dumps(first.state_dict()))

    restored = scheduler_cls.from_checkpoint(
        capped_engines(tables), state, **knobs
    )
    got = restored.run(FULL_BUDGET)

    assert got.results == want.results
    assert got.rounds_used == want.rounds_used
    assert got.allocation() == want.allocation()
    # The hard per-step bound means the budget is never exceeded.
    assert got.rounds_used <= FULL_BUDGET
    assert got.overshoot == 0


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_mid_allocation_snapshot_restores_worst_charge(kind, tables):
    """Adaptive budget bookkeeping rides along in the snapshot."""
    scheduler_cls = SCHEDULERS[kind]
    first = scheduler_cls(fresh_engines(tables), seeds_for(tables))
    first.run(FIRST_BUDGET)
    state = json.loads(json.dumps(first.state_dict()))

    restored = scheduler_cls.from_checkpoint(fresh_engines(tables), state)
    by_name = {s.name: s for s in restored._sources}
    for name, entry in state["sources"].items():
        source = by_name[name]
        assert source.worst_charge == entry["worst_charge"]
        assert source.last_step_spent == entry["last_step_spent"]


def test_old_checkpoints_without_new_fields_still_load(tables):
    """Snapshots from before the budget fixes lack the new keys."""
    scheduler = GreedyScheduler(fresh_engines(tables), seeds_for(tables))
    scheduler.run(FIRST_BUDGET)
    state = json.loads(json.dumps(scheduler.state_dict()))
    state.pop("overshoot", None)
    for entry in state["sources"].values():
        entry.pop("worst_charge", None)
        entry.pop("last_step_spent", None)

    restored = GreedyScheduler.from_checkpoint(fresh_engines(tables), state)
    # Degrades gracefully: bookkeeping restarts from zero, run proceeds.
    result = restored.run(FULL_BUDGET)
    assert result.rounds_used >= 0
