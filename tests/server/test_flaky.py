"""Failure-injection tests: flaky sources and crawl resilience."""

import pytest

from repro.core import Query, UnsupportedQueryError
from repro.crawler import CrawlerEngine
from repro.policies import BreadthFirstSelector
from repro.server import (
    FlakyServer,
    PermanentServerFailure,
    SimulatedWebDatabase,
    TransientServerError,
    submit_with_retries,
)


def flaky_books(books, failure_rate, seed=0, charge=True):
    return FlakyServer(
        SimulatedWebDatabase(books, page_size=2),
        failure_rate=failure_rate,
        seed=seed,
        charge_failed_rounds=charge,
    )


class TestFlakyServer:
    def test_zero_rate_never_fails(self, books):
        server = flaky_books(books, 0.0)
        for _ in range(20):
            page = server.submit(Query.equality("publisher", "orbit"))
            assert page.total_matches == 4
        assert server.failures_injected == 0

    def test_failures_injected_at_high_rate(self, books):
        server = flaky_books(books, 0.9, seed=1)
        failures = 0
        for _ in range(30):
            try:
                server.submit(Query.equality("publisher", "orbit"))
            except TransientServerError:
                failures += 1
        assert failures > 15
        assert server.failures_injected == failures

    def test_failed_requests_charge_rounds(self, books):
        server = flaky_books(books, 0.9, seed=1)
        before = server.rounds
        with pytest.raises(TransientServerError):
            for _ in range(50):
                server.submit(Query.equality("publisher", "orbit"))
        assert server.rounds > before

    def test_uncharged_mode(self, books):
        server = flaky_books(books, 0.99, seed=1, charge=False)
        with pytest.raises(TransientServerError):
            server.submit(Query.equality("publisher", "orbit"))
        assert server.rounds == 0

    def test_interface_rejection_is_not_a_failure(self, books):
        server = flaky_books(books, 0.99, seed=1)
        with pytest.raises(UnsupportedQueryError):
            server.submit(Query.keyword("orbit"))
        assert server.failures_injected == 0

    def test_deterministic_failure_stream(self, books):
        def observe(seed):
            server = flaky_books(books, 0.5, seed=seed)
            stream = []
            for _ in range(20):
                try:
                    server.submit(Query.equality("publisher", "orbit"))
                    stream.append(True)
                except TransientServerError:
                    stream.append(False)
            return stream

        assert observe(7) == observe(7)
        assert observe(7) != observe(8)

    def test_bad_rate_rejected(self, books):
        with pytest.raises(ValueError):
            flaky_books(books, 1.0)


class TestRetries:
    def test_retries_succeed_eventually(self, books):
        server = flaky_books(books, 0.5, seed=3)
        page = submit_with_retries(
            server, Query.equality("publisher", "orbit"), max_retries=20
        )
        assert page.total_matches == 4

    def test_exhausted_retries_raise_permanent(self, books):
        server = flaky_books(books, 0.97, seed=2)
        with pytest.raises(PermanentServerFailure):
            submit_with_retries(
                server, Query.equality("publisher", "orbit"), max_retries=2
            )

    def test_reliable_server_needs_no_retries(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        page = submit_with_retries(server, Query.equality("publisher", "orbit"))
        assert page.total_matches == 4


class TestCrawlResilience:
    def test_crawl_completes_through_failures(self, books):
        server = flaky_books(books, 0.3, seed=5)
        engine = CrawlerEngine(
            server, BreadthFirstSelector(), seed=0, max_retries=10
        )
        result = engine.crawl([("publisher", "orbit")])
        # Same reachable set as the reliable crawl, just more rounds.
        assert result.records_harvested == 8
        assert result.failed_queries == 0

    def test_failures_cost_extra_rounds(self, books):
        reliable = SimulatedWebDatabase(books, page_size=2)
        baseline = CrawlerEngine(reliable, BreadthFirstSelector(), seed=0).crawl(
            [("publisher", "orbit")]
        )
        flaky = flaky_books(books, 0.4, seed=5)
        noisy = CrawlerEngine(
            flaky, BreadthFirstSelector(), seed=0, max_retries=20
        ).crawl([("publisher", "orbit")])
        assert noisy.records_harvested == baseline.records_harvested
        assert noisy.communication_rounds > baseline.communication_rounds

    def test_unretried_crawl_records_failed_queries(self, books):
        # With retries enabled but a near-certain failure rate, queries
        # exhaust their budgets and are recorded as failed, yet the
        # crawl itself terminates cleanly.
        server = flaky_books(books, 0.95, seed=4)
        engine = CrawlerEngine(
            server, BreadthFirstSelector(), seed=0, max_retries=1
        )
        result = engine.crawl([("publisher", "orbit")], max_rounds=500)
        assert result.failed_queries > 0
