"""Tests for HTML result rendering and wrapper extraction."""

import pytest

from repro.core import ConjunctiveQuery, Query, Record, Schema
from repro.server import (
    HtmlExtractionError,
    SimulatedWebDatabase,
    attribute_label,
    label_attribute,
    paginate,
    parse_html_page,
    render_html_page,
)

schema = Schema.of("title", "release_location", author={"multivalued": True})


def sample_page(report_total=True):
    matches = [
        Record.build(3, schema, title="alpha", author=["x", "y"],
                     release_location="new york"),
        Record.build(7, schema, title="beta & co", author=["z"]),
    ]
    return paginate(
        Query.equality("author", "x"), matches, 1, 10, report_total=report_total
    )


class TestLabels:
    def test_prettify(self):
        assert attribute_label("release_location") == "Release Location"

    def test_roundtrip(self):
        for attribute in ("title", "release_location", "subject_keywords"):
            assert label_attribute(attribute_label(attribute)) == attribute


class TestAnnotatedTemplate:
    def test_structure(self):
        document = render_html_page(sample_page(), annotated=True)
        assert '<ol class="results">' in document
        assert document.count('class="record"') == 2
        assert 'data-attr="author"' in document
        assert 'href="/item/3"' in document

    def test_roundtrip(self):
        page = sample_page()
        assert parse_html_page(render_html_page(page, annotated=True)) == page

    def test_roundtrip_without_total(self):
        page = sample_page(report_total=False)
        parsed = parse_html_page(render_html_page(page, annotated=True))
        assert parsed.total_matches is None
        assert parsed == page

    def test_html_escaping(self):
        page = sample_page()
        document = render_html_page(page, annotated=True)
        assert "beta &amp; co" in document
        parsed = parse_html_page(document)
        assert parsed.records[1].values_of("title") == ("beta & co",)


class TestPlainTemplate:
    def test_structure(self):
        document = render_html_page(sample_page(), annotated=False)
        assert '<table class="results">' in document
        assert "<th>Release Location</th>" in document
        assert "x | y" in document  # multi-value cell

    def test_roundtrip_via_header_induction(self):
        page = sample_page()
        assert parse_html_page(render_html_page(page, annotated=False)) == page

    def test_conjunctive_query_summary(self):
        matches = [Record.build(1, schema, title="alpha")]
        query = ConjunctiveQuery.equalities(title="alpha", release_location="x")
        page = paginate(query, matches, 1, 10)
        parsed = parse_html_page(render_html_page(page, annotated=False))
        assert parsed.query == query


class TestErrors:
    def test_non_template_rejected(self):
        with pytest.raises(HtmlExtractionError):
            parse_html_page("<html><body><p>hello</p></body></html>")


class TestServerIntegration:
    def test_submit_html_charges_round(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        document = server.submit_html(Query.equality("publisher", "orbit"))
        assert server.rounds == 1
        page = parse_html_page(document)
        assert page.total_matches == 4

    def test_extractor_sniffs_html(self, books):
        from repro.crawler import ResultExtractor

        server = SimulatedWebDatabase(books, page_size=2)
        extractor = ResultExtractor(server.interface)
        for annotated in (True, False):
            document = server.submit_html(
                Query.equality("publisher", "orbit"), annotated=annotated
            )
            extraction = extractor.extract(document)
            assert len(extraction.records) == 2
            assert extraction.candidate_values

    def test_html_and_xml_paths_agree(self, books):
        from repro.crawler import ResultExtractor

        server = SimulatedWebDatabase(books, page_size=2)
        extractor = ResultExtractor(server.interface)
        query = Query.equality("publisher", "orbit")
        from_xml = extractor.extract(server.submit_xml(query, 1))
        for annotated in (True, False):
            server2 = SimulatedWebDatabase(books, page_size=2)
            from_html = extractor.extract(
                server2.submit_html(query, 1, annotated=annotated)
            )
            assert [r.record_id for r in from_html.records] == [
                r.record_id for r in from_xml.records
            ]
            assert set(from_html.candidate_values) == set(from_xml.candidate_values)


class TestFullHtmlCrawl:
    def test_crawl_through_plain_html(self, books):
        """End-to-end: harvest everything through the wrapper only."""
        from repro.crawler import LocalDatabase, ResultExtractor
        from repro.policies import BreadthFirstSelector

        server = SimulatedWebDatabase(books, page_size=2)
        extractor = ResultExtractor(server.interface)
        local = LocalDatabase()
        # Drive the loop manually through HTML documents.
        frontier = [("publisher", "orbit")]
        seen_queries = set()
        while frontier:
            attribute, value = frontier.pop(0)
            query = Query.equality(attribute, value)
            if query in seen_queries:
                continue
            seen_queries.add(query)
            page_number = 1
            while True:
                document = server.submit_html(query, page_number, annotated=False)
                page = parse_html_page(document)
                extraction = extractor.extract(document)
                local.add_all(extraction.records)
                for candidate in extraction.candidate_values:
                    frontier.append((candidate.attribute, candidate.value))
                if not page.has_next:
                    break
                page_number += 1
        assert len(local) == 8  # the orbit component
