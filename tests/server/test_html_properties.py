"""Property-based robustness tests for the HTML wrapper round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Query, Record
from repro.server import paginate, parse_html_page, render_html_page

# Values with whitespace collapsed away survive normalization unchanged;
# include HTML-dangerous characters to exercise escaping.
value_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"),
        whitelist_characters="&<>\"' .,-|;=",
    ),
    min_size=1,
    max_size=20,
).map(lambda s: " ".join(s.split())).filter(
    lambda s: s and "|" not in s  # '|' is the multi-value cell separator
)

record_strategy = st.builds(
    lambda record_id, title, authors: Record(
        record_id,
        {
            "title": (title,),
            "author": tuple(dict.fromkeys(authors)),
        },
    ),
    record_id=st.integers(min_value=0, max_value=10_000),
    title=value_text,
    authors=st.lists(value_text, min_size=1, max_size=3),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(record_strategy, min_size=0, max_size=6, unique_by=lambda r: r.record_id))
def test_annotated_roundtrip(records):
    page = paginate(Query.keyword("probe"), records, 1, 10)
    assert parse_html_page(render_html_page(page, annotated=True)) == page


@settings(max_examples=60, deadline=None)
@given(st.lists(record_strategy, min_size=0, max_size=6, unique_by=lambda r: r.record_id))
def test_plain_roundtrip(records):
    page = paginate(Query.keyword("probe"), records, 1, 10)
    assert parse_html_page(render_html_page(page, annotated=False)) == page


@settings(max_examples=40, deadline=None)
@given(
    st.lists(record_strategy, min_size=1, max_size=5, unique_by=lambda r: r.record_id),
    st.integers(min_value=1, max_value=3),
)
def test_xml_and_html_agree(records, page_size):
    from repro.server import parse_page, render_page

    import math

    num_pages = math.ceil(len(records) / page_size)
    for page_number in range(1, num_pages + 1):
        page = paginate(Query.keyword("probe"), records, page_number, page_size)
        via_xml = parse_page(render_page(page))
        via_html = parse_html_page(render_html_page(page, annotated=True))
        assert via_xml == via_html == page
