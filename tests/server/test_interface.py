"""Unit tests for query interfaces."""

import pytest

from repro.core import Query, Schema, UnsupportedQueryError
from repro.server import QueryInterface


class TestConstruction:
    def test_from_schema_takes_queriable(self):
        schema = Schema.of("a", "b", c={"queriable": False})
        interface = QueryInterface.from_schema(schema)
        assert interface.queriable_attributes == frozenset({"a", "b"})
        assert not interface.supports_keyword

    def test_keyword_only(self):
        interface = QueryInterface.keyword_only()
        assert interface.supports_keyword
        assert interface.queriable_attributes == frozenset()

    def test_nothing_queriable_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            QueryInterface(frozenset(), supports_keyword=False)

    def test_attribute_names_normalized(self):
        interface = QueryInterface(frozenset({" Title "}))
        assert interface.queriable_attributes == frozenset({"title"})


class TestAccepts:
    interface = QueryInterface(frozenset({"title", "author"}), supports_keyword=False)

    def test_accepts_queriable_attribute(self):
        assert self.interface.accepts(Query.equality("title", "x"))

    def test_rejects_other_attribute(self):
        assert not self.interface.accepts(Query.equality("price", "x"))

    def test_rejects_keyword_without_box(self):
        assert not self.interface.accepts(Query.keyword("x"))

    def test_keyword_box_accepts_keyword(self):
        keyword_interface = QueryInterface.keyword_only()
        assert keyword_interface.accepts(Query.keyword("x"))
        assert not keyword_interface.accepts(Query.equality("title", "x"))

    def test_validate_raises_with_message(self):
        with pytest.raises(UnsupportedQueryError, match="price"):
            self.interface.validate(Query.equality("price", "x"))

    def test_validate_passes_silently(self):
        self.interface.validate(Query.equality("author", "x"))


class TestCoerce:
    def test_structured_passes_through(self):
        interface = QueryInterface(frozenset({"title"}), supports_keyword=True)
        query = Query.equality("title", "x")
        assert interface.coerce(query) is query

    def test_falls_back_to_keyword(self):
        interface = QueryInterface(frozenset({"title"}), supports_keyword=True)
        coerced = interface.coerce(Query.equality("price", "9.99"))
        assert coerced.is_keyword
        assert coerced.value == "9.99"

    def test_raises_when_neither_possible(self):
        interface = QueryInterface(frozenset({"title"}), supports_keyword=False)
        with pytest.raises(UnsupportedQueryError):
            interface.coerce(Query.equality("price", "x"))


class TestSingleAttributeQueriable:
    def test_structured_counts(self):
        assert QueryInterface(frozenset({"a"})).single_attribute_queriable

    def test_keyword_counts(self):
        assert QueryInterface.keyword_only().single_attribute_queriable
