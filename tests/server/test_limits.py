"""Unit tests for result-size limit policies."""

import pytest

from repro.core import Query, QueryError
from repro.server import ResultLimitPolicy


class TestValidation:
    def test_bad_limit(self):
        with pytest.raises(QueryError):
            ResultLimitPolicy(limit=0)

    def test_bad_ordering(self):
        with pytest.raises(QueryError):
            ResultLimitPolicy(ordering="chaos")

    def test_defaults_unlimited(self):
        policy = ResultLimitPolicy()
        assert policy.limit is None
        assert policy.accessible(10_000) == 10_000


class TestAccessible:
    def test_caps(self):
        assert ResultLimitPolicy(limit=50).accessible(200) == 50

    def test_no_cap_below_limit(self):
        assert ResultLimitPolicy(limit=50).accessible(20) == 20


class TestOrdering:
    query = Query.equality("a", "x")

    def test_id_ordering_sorts(self):
        policy = ResultLimitPolicy(ordering="id")
        assert policy.order(self.query, [5, 1, 3]) == [1, 3, 5]

    def test_ranked_is_permutation(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        ids = list(range(30))
        ranked = policy.order(self.query, ids)
        assert sorted(ranked) == ids
        assert ranked != ids  # astronomically unlikely to be identity

    def test_ranked_deterministic(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        first = policy.order(self.query, list(range(20)))
        second = policy.order(self.query, list(range(20)))
        assert first == second

    def test_ranked_differs_per_query(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        a = policy.order(Query.equality("a", "x"), list(range(20)))
        b = policy.order(Query.equality("a", "y"), list(range(20)))
        assert a != b

    def test_ranked_differs_per_seed(self):
        ids = list(range(20))
        a = ResultLimitPolicy(ordering="ranked", seed=1).order(self.query, ids)
        b = ResultLimitPolicy(ordering="ranked", seed=2).order(self.query, ids)
        assert a != b
