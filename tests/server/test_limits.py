"""Unit tests for result-size limit policies."""

import pytest

from repro.core import Query, QueryError
from repro.server import ResultLimitPolicy


class TestValidation:
    def test_bad_limit(self):
        with pytest.raises(QueryError):
            ResultLimitPolicy(limit=0)

    def test_bad_ordering(self):
        with pytest.raises(QueryError):
            ResultLimitPolicy(ordering="chaos")

    def test_defaults_unlimited(self):
        policy = ResultLimitPolicy()
        assert policy.limit is None
        assert policy.accessible(10_000) == 10_000


class TestAccessible:
    def test_caps(self):
        assert ResultLimitPolicy(limit=50).accessible(200) == 50

    def test_no_cap_below_limit(self):
        assert ResultLimitPolicy(limit=50).accessible(20) == 20


class TestOrdering:
    query = Query.equality("a", "x")

    def test_id_ordering_sorts(self):
        policy = ResultLimitPolicy(ordering="id")
        assert policy.order(self.query, [5, 1, 3]) == [1, 3, 5]

    def test_ranked_is_permutation(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        ids = list(range(30))
        ranked = policy.order(self.query, ids)
        assert sorted(ranked) == ids
        assert ranked != ids  # astronomically unlikely to be identity

    def test_ranked_deterministic(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        first = policy.order(self.query, list(range(20)))
        second = policy.order(self.query, list(range(20)))
        assert first == second

    def test_ranked_differs_per_query(self):
        policy = ResultLimitPolicy(ordering="ranked", seed=7)
        a = policy.order(Query.equality("a", "x"), list(range(20)))
        b = policy.order(Query.equality("a", "y"), list(range(20)))
        assert a != b

    def test_ranked_differs_per_seed(self):
        ids = list(range(20))
        a = ResultLimitPolicy(ordering="ranked", seed=1).order(self.query, ids)
        b = ResultLimitPolicy(ordering="ranked", seed=2).order(self.query, ids)
        assert a != b


# ----------------------------------------------------------------------
# RateLimiter: the sliding-window client quota behind the HTTP service.
# ----------------------------------------------------------------------
from repro.server import RateLimiter  # noqa: E402


def stepped_limiter(**kwargs):
    """A limiter on a hand-cranked clock; returns (limiter, state)."""
    state = {"now": 0.0}
    limiter = RateLimiter(clock=lambda: state["now"], **kwargs)
    return limiter, state


class TestRateLimiterValidation:
    def test_bad_max_requests(self):
        with pytest.raises(QueryError):
            RateLimiter(max_requests=0, window_seconds=1.0)

    def test_bad_window(self):
        with pytest.raises(QueryError):
            RateLimiter(max_requests=1, window_seconds=0.0)

    def test_ban_needs_duration(self):
        with pytest.raises(QueryError):
            RateLimiter(max_requests=1, window_seconds=1.0, ban_after=3)


class TestSlidingWindow:
    def test_admits_up_to_quota(self):
        limiter, _state = stepped_limiter(max_requests=3, window_seconds=10.0)
        assert all(limiter.check("c").allowed for _ in range(3))
        assert not limiter.check("c").allowed

    def test_window_boundary_is_exclusive(self):
        """A request exactly window_seconds after the oldest is admitted."""
        limiter, state = stepped_limiter(max_requests=1, window_seconds=10.0)
        assert limiter.check("c").allowed
        state["now"] = 9.999
        assert not limiter.check("c").allowed
        state["now"] = 10.0
        assert limiter.check("c").allowed

    def test_retry_after_is_the_actual_reset_time(self):
        limiter, state = stepped_limiter(max_requests=2, window_seconds=10.0)
        limiter.check("c")          # t=0, oldest in window
        state["now"] = 3.0
        limiter.check("c")          # t=3
        state["now"] = 4.0
        decision = limiter.check("c")
        assert not decision.allowed
        # Oldest (t=0) leaves the window at t=10 → 6s from now (t=4).
        assert decision.retry_after == pytest.approx(6.0)
        # Waiting exactly that long is guaranteed to be admitted.
        state["now"] += decision.retry_after
        assert limiter.check("c").allowed

    def test_denied_requests_do_not_extend_the_window(self):
        limiter, state = stepped_limiter(max_requests=1, window_seconds=10.0)
        limiter.check("c")  # t=0
        for t in (2.0, 4.0, 6.0, 8.0):
            state["now"] = t
            assert not limiter.check("c").allowed
        state["now"] = 10.0  # only the t=0 admission counted
        assert limiter.check("c").allowed

    def test_clients_do_not_share_windows(self):
        limiter, _state = stepped_limiter(max_requests=1, window_seconds=10.0)
        assert limiter.check("a").allowed
        assert limiter.check("b").allowed
        assert not limiter.check("a").allowed
        assert limiter.check("c").allowed

    def test_denials_counted(self):
        limiter, _state = stepped_limiter(max_requests=1, window_seconds=10.0)
        limiter.check("c")
        limiter.check("c")
        limiter.check("c")
        assert limiter.denials == 2


class TestBans:
    def make(self):
        return stepped_limiter(
            max_requests=1, window_seconds=10.0, ban_after=3, ban_seconds=60.0
        )

    def test_consecutive_violations_escalate_to_ban(self):
        limiter, _state = self.make()
        limiter.check("c")  # admitted
        first = limiter.check("c")
        second = limiter.check("c")
        third = limiter.check("c")
        assert not first.banned and not second.banned
        assert third.banned
        assert third.retry_after == pytest.approx(60.0)
        assert limiter.bans_issued == 1

    def test_banned_client_sees_remaining_ban_time(self):
        limiter, state = self.make()
        limiter.check("c")
        for _ in range(3):
            limiter.check("c")  # third denial issues the ban at t=0
        state["now"] = 45.0
        decision = limiter.check("c")
        assert decision.banned
        assert decision.retry_after == pytest.approx(15.0)

    def test_ban_expiry_restores_a_clean_slate(self):
        limiter, state = self.make()
        limiter.check("c")
        for _ in range(3):
            limiter.check("c")
        state["now"] = 60.0  # ban (issued at t=0) has just expired
        decision = limiter.check("c")
        assert decision.allowed

    def test_admission_resets_the_violation_streak(self):
        limiter, state = self.make()
        limiter.check("c")           # t=0 admitted
        limiter.check("c")           # violation 1
        limiter.check("c")           # violation 2
        state["now"] = 10.0
        assert limiter.check("c").allowed  # streak broken
        limiter.check("c")           # violation 1 again — no ban
        decision = limiter.check("c")
        assert not decision.banned
        assert limiter.bans_issued == 0

    def test_other_clients_unaffected_by_a_ban(self):
        limiter, _state = self.make()
        limiter.check("c")
        for _ in range(3):
            limiter.check("c")
        assert limiter.check("d").allowed


class TestRateLimiterConcurrency:
    def test_quota_holds_under_concurrent_clients(self):
        """Hammer one limiter from many threads; the window never
        admits more than max_requests per client."""
        import threading

        limiter = RateLimiter(max_requests=50, window_seconds=60.0)
        admitted = {"a": 0, "b": 0}
        lock = threading.Lock()

        def hammer(client):
            for _ in range(100):
                if limiter.check(client).allowed:
                    with lock:
                        admitted[client] += 1

        threads = [
            threading.Thread(target=hammer, args=(client,))
            for client in ("a", "b")
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert admitted["a"] == 50
        assert admitted["b"] == 50
        assert limiter.denials == 2 * (400 - 50)

    def test_reset_forgets_state(self):
        limiter, _state = stepped_limiter(max_requests=1, window_seconds=10.0)
        limiter.check("c")
        assert not limiter.check("c").allowed
        limiter.reset("c")
        assert limiter.check("c").allowed
        limiter.reset()
        assert limiter.check("c").allowed


class TestPeek:
    """peek() answers "would check() admit?" without spending quota."""

    def test_peek_does_not_consume_quota(self):
        limiter, _state = stepped_limiter(max_requests=2, window_seconds=10.0)
        for _ in range(50):
            assert limiter.peek("c").allowed
        # Fifty peeks later the full quota is still available.
        assert limiter.check("c").allowed
        assert limiter.check("c").allowed
        assert not limiter.check("c").allowed

    def test_peek_agrees_with_check(self):
        limiter, state = stepped_limiter(max_requests=2, window_seconds=10.0)
        limiter.check("c")          # t=0
        state["now"] = 3.0
        limiter.check("c")          # t=3
        state["now"] = 4.0
        seen = limiter.peek("c")
        assert not seen.allowed
        assert seen.retry_after == pytest.approx(6.0)
        # Waiting out the peeked retry_after must make check() admit.
        state["now"] += seen.retry_after
        assert limiter.peek("c").allowed
        assert limiter.check("c").allowed

    def test_peek_does_not_count_as_denial(self):
        limiter, _state = stepped_limiter(max_requests=1, window_seconds=10.0)
        limiter.check("c")
        limiter.peek("c")
        limiter.peek("c")
        assert limiter.denials == 0

    def test_peek_sees_bans(self):
        limiter, state = stepped_limiter(
            max_requests=1, window_seconds=10.0, ban_after=2, ban_seconds=60.0
        )
        limiter.check("c")
        limiter.check("c")
        limiter.check("c")  # second violation -> banned
        state["now"] = 30.0
        seen = limiter.peek("c")
        assert not seen.allowed
        assert seen.retry_after == pytest.approx(30.0)


class TestRuntimeState:
    """runtime_state()/load_runtime_state(): quota survives a restart."""

    def test_round_trips_through_json(self):
        import json as _json

        limiter, state = stepped_limiter(max_requests=2, window_seconds=10.0)
        limiter.check("a")
        limiter.check("a")
        limiter.check("a")  # denied
        limiter.check("b")
        snapshot = _json.loads(_json.dumps(limiter.runtime_state()))

        fresh_state = {"now": state["now"]}
        fresh = RateLimiter(
            max_requests=2, window_seconds=10.0,
            clock=lambda: fresh_state["now"],
        )
        fresh.load_runtime_state(snapshot)
        assert fresh.denials == limiter.denials
        assert not fresh.peek("a").allowed
        assert fresh.peek("b").allowed

    def test_restored_windows_still_expire(self):
        limiter, _state = stepped_limiter(max_requests=1, window_seconds=10.0)
        limiter.check("c")  # t=0
        snapshot = limiter.runtime_state()

        fresh_state = {"now": 10.0}
        fresh = RateLimiter(
            max_requests=1, window_seconds=10.0,
            clock=lambda: fresh_state["now"],
        )
        fresh.load_runtime_state(snapshot)
        assert fresh.check("c").allowed
