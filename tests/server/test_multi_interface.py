"""Unit tests for multi-attribute interface gating and serving."""

import pytest

from repro.core import (
    AttributeValue,
    ConjunctiveQuery,
    Query,
    UnsupportedQueryError,
)
from repro.datasets import car_interface, generate_cars
from repro.server import QueryInterface, SimulatedWebDatabase, parse_page, render_page


class TestMinPredicates:
    interface = QueryInterface(
        frozenset({"make", "model", "year"}), min_predicates=2, name="cars"
    )

    def test_single_query_rejected(self):
        assert not self.interface.accepts(Query.equality("make", "toyota"))
        with pytest.raises(UnsupportedQueryError, match="at least 2"):
            self.interface.validate(Query.equality("make", "toyota"))

    def test_pair_accepted(self):
        query = ConjunctiveQuery.equalities(make="toyota", model="corolla")
        assert self.interface.accepts(query)

    def test_undersized_conjunction_rejected(self):
        assert not self.interface.accepts(ConjunctiveQuery.equalities(make="toyota"))

    def test_unknown_attribute_rejected(self):
        query = ConjunctiveQuery.equalities(make="toyota", price="low")
        assert not self.interface.accepts(query)

    def test_not_single_attribute_queriable(self):
        assert not self.interface.single_attribute_queriable

    def test_keyword_bypasses_gate(self):
        keyword_interface = QueryInterface(
            frozenset({"make", "model"}), supports_keyword=True, min_predicates=2
        )
        assert keyword_interface.accepts(Query.keyword("toyota"))
        assert keyword_interface.single_attribute_queriable

    def test_max_predicates_cap(self):
        capped = QueryInterface(frozenset({"a", "b", "c"}), max_predicates=2)
        assert capped.accepts(ConjunctiveQuery.equalities(a="1", b="2"))
        assert not capped.accepts(ConjunctiveQuery.equalities(a="1", b="2", c="3"))

    def test_invalid_bounds(self):
        with pytest.raises(UnsupportedQueryError):
            QueryInterface(frozenset({"a"}), min_predicates=0)
        with pytest.raises(UnsupportedQueryError):
            QueryInterface(frozenset({"a"}), min_predicates=2)
        with pytest.raises(UnsupportedQueryError):
            QueryInterface(frozenset({"a", "b"}), min_predicates=2, max_predicates=1)

    def test_default_interface_accepts_conjunctions(self):
        plain = QueryInterface(frozenset({"a", "b"}))
        assert plain.accepts(ConjunctiveQuery.equalities(a="1", b="2"))


class TestServing:
    def test_server_answers_conjunctions(self):
        table = generate_cars(200, seed=1)
        server = SimulatedWebDatabase(
            table, page_size=10, interface=car_interface()
        )
        record = table.get(table.record_ids()[0])
        query = ConjunctiveQuery.of(
            AttributeValue("make", record.values_of("make")[0]),
            AttributeValue("model", record.values_of("model")[0]),
        )
        page = server.submit(query)
        assert page.total_matches >= 1
        assert all(
            r.values_of("make") == record.values_of("make") for r in page.records
        )

    def test_server_rejects_single_predicates(self):
        table = generate_cars(100, seed=1)
        server = SimulatedWebDatabase(table, interface=car_interface())
        with pytest.raises(UnsupportedQueryError):
            server.submit(Query.equality("make", "toyota"))
        assert server.rounds == 0


class TestXmlRoundtrip:
    def test_conjunctive_page_roundtrips(self):
        from repro.core import Record, Schema
        from repro.server import paginate

        schema = Schema.of("make", "model")
        matches = [Record.build(1, schema, make="toyota", model="corolla")]
        query = ConjunctiveQuery.equalities(make="toyota", model="corolla")
        page = paginate(query, matches, 1, 10)
        parsed = parse_page(render_page(page))
        assert parsed == page
        assert isinstance(parsed.query, ConjunctiveQuery)
