"""Unit tests for communication accounting."""

from repro.core import Query
from repro.server import CommunicationLog


def test_rounds_increment():
    log = CommunicationLog()
    query = Query.keyword("x")
    log.record(query, 1, 10)
    log.record(query, 2, 4)
    assert log.rounds == 2
    assert log.pages_for(query) == 2
    assert log.distinct_queries == 1


def test_requests_capture_detail():
    log = CommunicationLog()
    entry = log.record(Query.keyword("x"), 3, 7)
    assert entry.round_number == 1
    assert entry.page_number == 3
    assert entry.records_returned == 7
    assert log.requests == [entry]


def test_keep_requests_off_saves_memory():
    log = CommunicationLog(keep_requests=False)
    log.record(Query.keyword("x"), 1, 1)
    assert log.rounds == 1
    assert log.requests == []


def test_callbacks_fire_per_round():
    log = CommunicationLog()
    seen = []
    log.on_round(seen.append)
    log.record(Query.keyword("x"), 1, 0)
    log.record(Query.keyword("y"), 1, 0)
    assert seen == [1, 2]


def test_reset_clears_counters_keeps_callbacks():
    log = CommunicationLog()
    seen = []
    log.on_round(seen.append)
    log.record(Query.keyword("x"), 1, 0)
    log.reset()
    assert log.rounds == 0
    assert log.distinct_queries == 0
    log.record(Query.keyword("x"), 1, 0)
    assert seen == [1, 1]


# ----------------------------------------------------------------------
# Optional per-round wall-time recording (off by default: the canonical
# deterministic state must never absorb wall-clock noise).
# ----------------------------------------------------------------------
def test_wall_times_off_by_default():
    log = CommunicationLog()
    entry = log.record(Query.keyword("x"), 1, 2, wall_time=0.25)
    assert log.wall_times == []
    assert entry.wall_time is None
    assert log.total_wall_time == 0.0


def test_wall_times_recorded_when_enabled():
    log = CommunicationLog(record_wall_times=True)
    log.record(Query.keyword("x"), 1, 2, wall_time=0.25)
    log.record(Query.keyword("x"), 2, 2, wall_time=0.5)
    log.record(Query.keyword("y"), 1, 0)  # no timing supplied
    assert log.wall_times == [0.25, 0.5]
    assert log.total_wall_time == 0.75


def test_wall_time_attribution_per_query():
    log = CommunicationLog(record_wall_times=True)
    log.record(Query.keyword("x"), 1, 2, wall_time=0.25)
    log.record(Query.keyword("y"), 1, 2, wall_time=1.0)
    log.record(Query.keyword("x"), 2, 2, wall_time=0.5)
    assert log.wall_time_for(Query.keyword("x")) == 0.75
    assert log.wall_time_for(Query.keyword("y")) == 1.0
    assert log.wall_time_for(Query.keyword("z")) == 0.0


def test_wall_times_cleared_on_reset():
    log = CommunicationLog(record_wall_times=True)
    log.record(Query.keyword("x"), 1, 2, wall_time=0.25)
    log.reset()
    assert log.wall_times == []
    assert log.total_wall_time == 0.0


def test_wall_times_never_reach_canonical_runtime_state(books_server):
    """webdb runtime snapshots carry rounds only — wall times are
    telemetry, not canonical crawl state."""
    books_server.log.record_wall_times = True
    books_server.submit(Query.equality("publisher", "orbit"))
    state = books_server.runtime_state()
    assert "wall_times" not in str(state)
    restored_rounds = state["rounds"]
    assert restored_rounds == 1
