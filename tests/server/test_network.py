"""Unit tests for communication accounting."""

from repro.core import Query
from repro.server import CommunicationLog


def test_rounds_increment():
    log = CommunicationLog()
    query = Query.keyword("x")
    log.record(query, 1, 10)
    log.record(query, 2, 4)
    assert log.rounds == 2
    assert log.pages_for(query) == 2
    assert log.distinct_queries == 1


def test_requests_capture_detail():
    log = CommunicationLog()
    entry = log.record(Query.keyword("x"), 3, 7)
    assert entry.round_number == 1
    assert entry.page_number == 3
    assert entry.records_returned == 7
    assert log.requests == [entry]


def test_keep_requests_off_saves_memory():
    log = CommunicationLog(keep_requests=False)
    log.record(Query.keyword("x"), 1, 1)
    assert log.rounds == 1
    assert log.requests == []


def test_callbacks_fire_per_round():
    log = CommunicationLog()
    seen = []
    log.on_round(seen.append)
    log.record(Query.keyword("x"), 1, 0)
    log.record(Query.keyword("y"), 1, 0)
    assert seen == [1, 2]


def test_reset_clears_counters_keeps_callbacks():
    log = CommunicationLog()
    seen = []
    log.on_round(seen.append)
    log.record(Query.keyword("x"), 1, 0)
    log.reset()
    assert log.rounds == 0
    assert log.distinct_queries == 0
    log.record(Query.keyword("x"), 1, 0)
    assert seen == [1, 1]
