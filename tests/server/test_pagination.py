"""Unit and property tests for result pagination (the cost model's unit)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PaginationError, Query, Record, Schema
from repro.server import ResultPage, page_count, paginate

schema = Schema.of("title")
QUERY = Query.equality("title", "x")


def records(n):
    return [Record.build(i, schema, title=f"t{i}") for i in range(n)]


class TestPageCount:
    def test_definition_2_3(self):
        # The paper's example: 95 matches, 10 per page -> 10 rounds.
        assert page_count(95, 10) == 10

    def test_exact_multiple(self):
        assert page_count(100, 10) == 10

    def test_zero_matches_zero_pages(self):
        assert page_count(0, 10) == 0

    def test_limit_truncates(self):
        assert page_count(95, 10, result_limit=32) == 4

    def test_limit_above_matches_is_noop(self):
        assert page_count(15, 10, result_limit=100) == 2


class TestPaginate:
    def test_first_page(self):
        page = paginate(QUERY, records(25), 1, 10)
        assert [r.record_id for r in page.records] == list(range(10))
        assert page.total_matches == 25
        assert page.num_pages == 3
        assert page.has_next

    def test_last_page_partial(self):
        page = paginate(QUERY, records(25), 3, 10)
        assert len(page.records) == 5
        assert not page.has_next

    def test_out_of_range_raises(self):
        with pytest.raises(PaginationError):
            paginate(QUERY, records(25), 4, 10)

    def test_zero_based_rejected(self):
        with pytest.raises(PaginationError):
            paginate(QUERY, records(5), 0, 10)

    def test_empty_result_first_page_ok(self):
        page = paginate(QUERY, [], 1, 10)
        assert page.is_empty
        assert page.num_pages == 0
        assert not page.has_next

    def test_total_hidden_when_not_reported(self):
        page = paginate(QUERY, records(5), 1, 10, report_total=False)
        assert page.total_matches is None
        assert page.accessible_matches == 5

    def test_result_limit_truncates_accessible(self):
        page = paginate(QUERY, records(25), 1, 10, result_limit=12)
        assert page.total_matches == 25
        assert page.accessible_matches == 12
        assert page.num_pages == 2
        last = paginate(QUERY, records(25), 2, 10, result_limit=12)
        assert len(last.records) == 2

    def test_bad_page_size(self):
        with pytest.raises(PaginationError):
            paginate(QUERY, records(3), 1, 0)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=60),
    k=st.integers(min_value=1, max_value=12),
    limit=st.one_of(st.none(), st.integers(min_value=1, max_value=80)),
)
def test_property_pages_partition_accessible_prefix(n, k, limit):
    """Union of all pages == the accessible prefix; sizes sum correctly."""
    matches = records(n)
    accessible = n if limit is None else min(n, limit)
    num_pages = math.ceil(accessible / k)
    seen = []
    for page_number in range(1, num_pages + 1):
        page = paginate(QUERY, matches, page_number, k, result_limit=limit)
        assert len(page.records) <= k
        assert page.num_pages == num_pages
        seen.extend(r.record_id for r in page.records)
    assert seen == [r.record_id for r in matches[:accessible]]
    # Definition 2.3: cost (pages) equals ceil(accessible / k).
    assert num_pages == page_count(n, k, limit)
