"""Unit tests for the XML web-service wire format."""

import pytest

from repro.core import Query, Record, Schema
from repro.server import ResultPage, paginate, parse_page, render_page

schema = Schema.of("title", author={"multivalued": True})


def sample_page(report_total=True):
    matches = [
        Record.build(3, schema, title="alpha", author=["x", "y"]),
        Record.build(7, schema, title="beta"),
    ]
    return paginate(
        Query.equality("author", "x"), matches, 1, 10, report_total=report_total
    )


class TestRender:
    def test_contains_items_and_metadata(self):
        document = render_page(sample_page())
        assert "<QueryResponse" in document
        assert 'totalResults="2"' in document
        assert document.count("<Item") == 2
        assert "<author>x</author>" in document
        assert "<author>y</author>" in document

    def test_request_echoed(self):
        document = render_page(sample_page())
        assert 'attribute="author"' in document
        assert 'value="x"' in document

    def test_keyword_query_omits_attribute(self):
        page = paginate(Query.keyword("x"), [], 1, 10)
        document = render_page(page)
        assert "attribute=" not in document

    def test_total_omitted_when_unreported(self):
        document = render_page(sample_page(report_total=False))
        assert "totalResults" not in document


class TestParse:
    def test_roundtrip(self):
        page = sample_page()
        parsed = parse_page(render_page(page))
        assert parsed == page

    def test_roundtrip_without_total(self):
        page = sample_page(report_total=False)
        parsed = parse_page(render_page(page))
        assert parsed.total_matches is None
        assert parsed == page

    def test_roundtrip_keyword(self):
        matches = [Record.build(1, schema, title="orbit")]
        page = paginate(Query.keyword("orbit"), matches, 1, 5)
        assert parse_page(render_page(page)) == page

    def test_multivalued_fields_preserved(self):
        parsed = parse_page(render_page(sample_page()))
        [first, _second] = parsed.records
        assert first.values_of("author") == ("x", "y")

    def test_malformed_document_rejected(self):
        with pytest.raises(ValueError):
            parse_page("<QueryResponse></QueryResponse>")

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            parse_page("this is not xml")


# ----------------------------------------------------------------------
# Round-trip safety: any value the normalizer admits must survive the
# XML envelope, including characters XML cannot carry verbatim and
# attribute names that are not valid XML tag names.
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RelationalTable
from repro.server import SimulatedWebDatabase


# XML 1.0 cannot carry most C0 control characters at all; the envelope
# substitutes U+FFFD for them (tested separately below).  The lossless
# property therefore ranges over everything else.
adversarial_text = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs", "Cc")
    ),
    min_size=1,
    max_size=24,
).filter(lambda s: s.strip())

# Attribute names survive Record's strip/lower but may hold spaces,
# punctuation, or digits in front — all invalid as XML tag names.
adversarial_attr = st.text(
    alphabet="abz0 9.<&-'\"",
    min_size=1,
    max_size=8,
).filter(lambda s: s.strip() and s.strip().lower())


class TestRoundTripProperties:
    @given(
        attrs=st.lists(
            adversarial_attr,
            min_size=1,
            max_size=3,
            unique_by=lambda a: a.strip().lower(),
        ),
        rows=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_normalized_record_survives_the_envelope(
        self, attrs, rows, data
    ):
        record_schema = Schema.of(
            **{attr: {"multivalued": True} for attr in attrs}
        )
        records = []
        for record_id in range(rows):
            fields = {
                attr: data.draw(
                    st.lists(adversarial_text, min_size=1, max_size=2)
                )
                for attr in attrs
            }
            records.append(Record.build(record_id, record_schema, **fields))
        query = Query.equality(next(iter(records[0].fields)), "x")
        page = paginate(query, records, 1, 10)
        parsed = parse_page(render_page(page))
        assert parsed.records == page.records

    def test_xml_invalid_control_chars_become_replacement_char(self):
        """C0 controls (normalize() keeps them) can't travel in XML 1.0;
        the envelope substitutes U+FFFD rather than emit unparseable
        bytes."""
        record = Record(1, {"title": ("alpha\x1bbeta",)})
        page = paginate(Query.equality("title", "x"), [record], 1, 10)
        parsed = parse_page(render_page(page))
        assert parsed.records[0].values_of("title") == ("alpha\ufffdbeta",)

    def test_invalid_tag_name_attributes_round_trip(self):
        """Attribute names like "model year" are not valid XML tag
        names; they travel as <Field name="..."> and parse back."""
        record = Record(1, {"model year": ("1999",), "9to5": ("yes",)})
        page = paginate(Query.equality("model year", "1999"), [record], 1, 10)
        document = render_page(page)
        assert "<Field" in document
        parsed = parse_page(document)
        assert parsed.records == page.records

    @given(value=adversarial_text)
    @settings(max_examples=60, deadline=None)
    def test_query_values_echo_back(self, value):
        page = paginate(Query.equality("title", value), [], 1, 10)
        parsed = parse_page(render_page(page))
        assert parsed.query.value == Query.equality("title", value).value


class TestRoundTripOverPaperDatasets:
    """The satellite check: the paper's movie/name-shaped data round-trips.

    Every page a full scan of the DVD store and scholarly sources can
    produce must parse back byte-identical — these tables carry the
    movie titles, person names, and punctuation-heavy values the paper's
    Amazon experiment crawled.
    """

    def scan_all_pages(self, table, sample=40):
        source = SimulatedWebDatabase(table, page_size=7)
        queriable = set(table.schema.queriable)
        values = [
            v for v in table.distinct_values() if v.attribute in queriable
        ]
        import random

        random.Random(5).shuffle(values)
        for value in values[:sample]:
            page_number = 1
            while True:
                page = source.submit(
                    Query.equality(value.attribute, value.value),
                    page_number,
                )
                parsed = parse_page(render_page(page))
                assert parsed == page
                if not page.has_next:
                    break
                page_number += 1

    def test_movie_dataset_round_trips(self, dvd_store):
        self.scan_all_pages(dvd_store)

    def test_name_heavy_dataset_round_trips(self, small_ebay):
        self.scan_all_pages(small_ebay)
