"""Unit tests for the XML web-service wire format."""

import pytest

from repro.core import Query, Record, Schema
from repro.server import ResultPage, paginate, parse_page, render_page

schema = Schema.of("title", author={"multivalued": True})


def sample_page(report_total=True):
    matches = [
        Record.build(3, schema, title="alpha", author=["x", "y"]),
        Record.build(7, schema, title="beta"),
    ]
    return paginate(
        Query.equality("author", "x"), matches, 1, 10, report_total=report_total
    )


class TestRender:
    def test_contains_items_and_metadata(self):
        document = render_page(sample_page())
        assert "<QueryResponse" in document
        assert 'totalResults="2"' in document
        assert document.count("<Item") == 2
        assert "<author>x</author>" in document
        assert "<author>y</author>" in document

    def test_request_echoed(self):
        document = render_page(sample_page())
        assert 'attribute="author"' in document
        assert 'value="x"' in document

    def test_keyword_query_omits_attribute(self):
        page = paginate(Query.keyword("x"), [], 1, 10)
        document = render_page(page)
        assert "attribute=" not in document

    def test_total_omitted_when_unreported(self):
        document = render_page(sample_page(report_total=False))
        assert "totalResults" not in document


class TestParse:
    def test_roundtrip(self):
        page = sample_page()
        parsed = parse_page(render_page(page))
        assert parsed == page

    def test_roundtrip_without_total(self):
        page = sample_page(report_total=False)
        parsed = parse_page(render_page(page))
        assert parsed.total_matches is None
        assert parsed == page

    def test_roundtrip_keyword(self):
        matches = [Record.build(1, schema, title="orbit")]
        page = paginate(Query.keyword("orbit"), matches, 1, 5)
        assert parse_page(render_page(page)) == page

    def test_multivalued_fields_preserved(self):
        parsed = parse_page(render_page(sample_page()))
        [first, _second] = parsed.records
        assert first.values_of("author") == ("x", "y")

    def test_malformed_document_rejected(self):
        with pytest.raises(ValueError):
            parse_page("<QueryResponse></QueryResponse>")

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            parse_page("this is not xml")
