"""Unit tests for the simulated web database (server behaviour)."""

import pytest

from repro.core import PaginationError, Query, UnsupportedQueryError
from repro.server import (
    QueryInterface,
    ResultLimitPolicy,
    SimulatedWebDatabase,
    parse_page,
)


class TestSubmit:
    def test_returns_projected_page(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        page = server.submit(Query.equality("publisher", "orbit"))
        assert page.total_matches == 4
        assert page.num_pages == 2
        assert len(page.records) == 2

    def test_each_page_request_costs_one_round(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        server.submit(query, 1)
        server.submit(query, 2)
        assert server.rounds == 2
        assert server.log.distinct_queries == 1
        assert server.log.pages_for(query) == 2

    def test_zero_match_query_costs_one_round(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        page = server.submit(Query.equality("publisher", "ghost"))
        assert page.is_empty
        assert server.rounds == 1

    def test_rejected_query_costs_nothing(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        with pytest.raises(UnsupportedQueryError):
            server.submit(Query.equality("price", "10"))  # not queriable
        assert server.rounds == 0

    def test_out_of_range_page_charged(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        with pytest.raises(PaginationError):
            server.submit(Query.equality("publisher", "orbit"), 5)
        assert server.rounds == 1

    def test_keyword_needs_keyword_interface(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        with pytest.raises(UnsupportedQueryError):
            server.submit(Query.keyword("orbit"))

    def test_keyword_interface_matches_any_attribute(self, books):
        server = SimulatedWebDatabase(
            books, page_size=10, interface=QueryInterface.keyword_only("books")
        )
        page = server.submit(Query.keyword("knuth"))
        assert page.total_matches == 3

    def test_report_total_toggle(self, books):
        server = SimulatedWebDatabase(books, page_size=2, report_total=False)
        page = server.submit(Query.equality("publisher", "orbit"))
        assert page.total_matches is None
        assert page.accessible_matches == 4

    def test_hidden_attribute_not_in_results(self):
        from repro.core import RelationalTable, Schema

        schema = Schema.of("title", secret={"displayed": False})
        table = RelationalTable(schema)
        table.insert_rows([{"title": "a", "secret": "s"}])
        server = SimulatedWebDatabase(table)
        page = server.submit(Query.equality("secret", "s"))
        assert page.total_matches == 1
        assert page.records[0].values_of("secret") == ()


class TestLimits:
    def test_limit_caps_pages(self, books):
        server = SimulatedWebDatabase(
            books, page_size=2, limit_policy=ResultLimitPolicy(limit=3)
        )
        page = server.submit(Query.equality("publisher", "orbit"))
        assert page.total_matches == 4
        assert page.accessible_matches == 3
        assert page.num_pages == 2
        last = server.submit(Query.equality("publisher", "orbit"), 2)
        assert len(last.records) == 1

    def test_ranked_ordering_stable_across_requests(self, books):
        server = SimulatedWebDatabase(
            books,
            page_size=2,
            limit_policy=ResultLimitPolicy(limit=3, ordering="ranked", seed=5),
        )
        query = Query.equality("publisher", "orbit")
        first = server.submit(query, 1)
        again = server.submit(query, 1)
        assert [r.record_id for r in first.records] == [
            r.record_id for r in again.records
        ]


class TestXml:
    def test_submit_xml_roundtrips(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        document = server.submit_xml(Query.equality("publisher", "orbit"))
        page = parse_page(document)
        assert page.total_matches == 4
        assert len(page.records) == 2

    def test_xml_costs_rounds_too(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        server.submit_xml(Query.equality("publisher", "orbit"))
        assert server.rounds == 1


class TestOrderCache:
    """The per-query result-ordering LRU: bounded, counted, harmless."""

    def test_repeat_query_hits_cache(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        server.submit(query, 1)
        server.submit(query, 2)
        assert server.log.cache_misses == 1
        assert server.log.cache_hits == 1

    def test_cache_never_exceeds_bound(self, books):
        server = SimulatedWebDatabase(books, page_size=2, order_cache_size=2)
        for title in ("alpha", "beta", "gamma", "delta"):
            server.submit(Query.equality("title", title))
        assert len(server._order_cache) == 2
        assert server.log.cache_misses == 4

    def test_lru_keeps_recently_used(self, books):
        server = SimulatedWebDatabase(books, page_size=2, order_cache_size=2)
        orbit = Query.equality("publisher", "orbit")
        mitp = Query.equality("publisher", "mitp")
        server.submit(orbit)
        server.submit(mitp)
        server.submit(orbit)  # refresh orbit: mitp is now oldest
        server.submit(Query.equality("publisher", "southbank"))  # evicts mitp
        server.submit(orbit)
        assert server.log.cache_hits == 2
        server.submit(mitp)  # evicted — recomputed
        assert server.log.cache_misses == 4

    def test_eviction_never_changes_results(self, books):
        # Ranked truncation orders by a pure (seed, query, id) hash, so
        # a recomputed entry must equal the evicted one exactly.
        def build(cache_size):
            return SimulatedWebDatabase(
                books,
                page_size=2,
                order_cache_size=cache_size,
                limit_policy=ResultLimitPolicy(limit=3, ordering="ranked", seed=5),
            )

        queries = [
            Query.equality("publisher", name)
            for name in ("orbit", "mitp", "southbank", "orbit", "mitp")
        ]
        thrashing, roomy = build(1), build(16)
        for query in queries:
            a = thrashing.submit(query)
            b = roomy.submit(query)
            assert [r.record_id for r in a.records] == [
                r.record_id for r in b.records
            ]
        assert thrashing.log.cache_hits == 0
        assert roomy.log.cache_hits == 2

    def test_reset_clears_counters(self, books):
        server = SimulatedWebDatabase(books, page_size=2)
        query = Query.equality("publisher", "orbit")
        server.submit(query, 1)
        server.submit(query, 2)
        server.log.reset()
        assert server.log.cache_hits == 0
        assert server.log.cache_misses == 0

    def test_invalid_cache_size_rejected(self, books):
        with pytest.raises(ValueError):
            SimulatedWebDatabase(books, order_cache_size=0)


class TestTruth:
    def test_truth_size(self, books):
        assert SimulatedWebDatabase(books).truth_size() == 9

    def test_truth_count(self, books):
        server = SimulatedWebDatabase(books)
        assert server.truth_count(Query.equality("author", "knuth")) == 3

    def test_truth_coverage(self, books):
        server = SimulatedWebDatabase(books)
        assert server.truth_coverage([0, 1, 2]) == pytest.approx(3 / 9)
        assert server.truth_coverage([0, 999]) == pytest.approx(1 / 9)
