"""Property tests for the server's pagination-under-limit semantics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Query, RelationalTable, Schema
from repro.server import ResultLimitPolicy, SimulatedWebDatabase

schema = Schema.of("a", "b")


def build_server(rows, page_size, limit, ordering, seed):
    table = RelationalTable(schema)
    table.insert_rows(rows)
    return SimulatedWebDatabase(
        table,
        page_size=page_size,
        limit_policy=ResultLimitPolicy(limit=limit, ordering=ordering, seed=seed),
    )


rows_strategy = st.lists(
    st.fixed_dictionaries(
        {"a": st.sampled_from(["x", "y"]), "b": st.sampled_from("pqrs")}
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(
    rows=rows_strategy,
    page_size=st.integers(1, 7),
    limit=st.one_of(st.none(), st.integers(1, 25)),
    ordering=st.sampled_from(["id", "ranked"]),
    seed=st.integers(0, 5),
)
def test_pages_enumerate_the_accessible_prefix_once(
    rows, page_size, limit, ordering, seed
):
    """Fetching every page yields each accessible record exactly once,
    the same prefix on repeated full fetches, and the Def. 2.3 count."""
    server = build_server(rows, page_size, limit, ordering, seed)
    query = Query.equality("a", "x")
    true_matches = server.truth_count(query)
    accessible = true_matches if limit is None else min(true_matches, limit)

    def fetch_all():
        ids = []
        page_number = 1
        while True:
            page = server.submit(query, page_number)
            ids.extend(record.record_id for record in page.records)
            assert page.accessible_matches == accessible
            assert page.total_matches == true_matches
            if not page.has_next:
                break
            page_number += 1
        return ids

    first = fetch_all()
    assert len(first) == accessible
    assert len(set(first)) == accessible
    # The served prefix is stable across repeated full fetches.
    assert fetch_all() == first
    # Definition 2.3: pages needed = ceil(accessible / k) (min 1 round).
    expected_pages = max(math.ceil(accessible / page_size), 1)
    assert server.rounds == 2 * expected_pages


@settings(max_examples=30, deadline=None)
@given(
    rows=rows_strategy,
    limit=st.integers(1, 10),
    seed=st.integers(0, 5),
)
def test_ranked_prefix_is_a_subset_of_matches(rows, limit, seed):
    server = build_server(rows, 5, limit, "ranked", seed)
    query = Query.equality("a", "x")
    page = server.submit(query, 1)
    full = set(server.table.match(query))
    assert {record.record_id for record in page.records} <= full
