"""The bench-regression gate must survive benchmark-schema drift.

``scripts/check_bench_regression.py`` compares a fresh
``BENCH_hotpath.json`` against the committed baseline.  Benchmarks grow
new per-policy keys over time (steps/sec, frontier counters, shm
accounting), and old baselines may predate keys the fresh run emits —
the gate must compare only the gated metrics both sides share, never
crash on a one-sided key, and still fail hard on a genuine speedup
regression or a policy that disappeared.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", _SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(tmp_path: Path, name: str, policies: dict, scale: float = 0.25):
    path = tmp_path / name
    path.write_text(json.dumps({"scale": scale, "policies": policies}))
    return str(path)


def test_passes_on_matching_schemas(checker, tmp_path):
    fresh = _write(tmp_path, "fresh.json", {"gl": {"speedup": 2.0}})
    base = _write(tmp_path, "base.json", {"gl": {"speedup": 2.0}})
    assert checker.main([fresh, base]) == 0


def test_tolerates_added_and_removed_per_policy_keys(checker, tmp_path):
    """Mixed schemas: each side carries keys the other has never seen."""
    fresh = _write(
        tmp_path,
        "fresh.json",
        {
            "gl": {
                "speedup": 2.1,
                "steps_per_sec_interned": 3000.0,
                "frontier_rescored": 512,
            }
        },
    )
    base = _write(
        tmp_path,
        "base.json",
        {"gl": {"speedup": 2.0, "legacy_only_seconds": 1.5}},
    )
    assert checker.main([fresh, base]) == 0


def test_skips_policy_without_shared_gated_metrics(checker, tmp_path, capsys):
    """A side missing the gated metric entirely is skipped, not a crash."""
    fresh = _write(tmp_path, "fresh.json", {"gl": {"steps_per_sec": 9.0}})
    base = _write(tmp_path, "base.json", {"gl": {"speedup": 2.0}})
    assert checker.main([fresh, base]) == 0
    assert "skipped" in capsys.readouterr().out


def test_fails_on_regression_despite_extra_keys(checker, tmp_path):
    fresh = _write(
        tmp_path, "fresh.json", {"gl": {"speedup": 1.0, "new_key": 1}}
    )
    base = _write(tmp_path, "base.json", {"gl": {"speedup": 2.0}})
    assert checker.main([fresh, base, "--tolerance", "0.25"]) == 1


def test_fails_on_missing_policy(checker, tmp_path):
    fresh = _write(tmp_path, "fresh.json", {"gl": {"speedup": 2.0}})
    base = _write(
        tmp_path,
        "base.json",
        {"gl": {"speedup": 2.0}, "mmmi": {"speedup": 2.0}},
    )
    assert checker.main([fresh, base]) == 1


def test_fails_on_scale_mismatch(checker, tmp_path):
    fresh = _write(tmp_path, "fresh.json", {"gl": {"speedup": 2.0}}, scale=1.0)
    base = _write(tmp_path, "base.json", {"gl": {"speedup": 2.0}}, scale=0.25)
    assert checker.main([fresh, base]) == 1
