"""Tests for the command-line interface."""

import io as stdio

import pytest

from repro.cli import main


def run_cli(*argv):
    out = stdio.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDatasets:
    def test_lists_all(self):
        code, text = run_cli("datasets")
        assert code == 0
        for name in ("ebay", "imdb", "dblp", "acm"):
            assert name in text


class TestGenerate:
    def test_writes_file(self, tmp_path):
        out_path = tmp_path / "ebay.json"
        code, text = run_cli(
            "generate", "ebay", "--records", "120", "--out", str(out_path)
        )
        assert code == 0
        assert out_path.exists()
        assert "120" in text

    def test_gzip_output(self, tmp_path):
        out_path = tmp_path / "acm.json.gz"
        code, _text = run_cli(
            "generate", "acm", "--records", "80", "--out", str(out_path)
        )
        assert code == 0
        from repro import io

        assert len(io.load_table(out_path)) == 80


class TestCrawl:
    def test_crawl_builtin_dataset(self):
        code, text = run_cli(
            "crawl",
            "--dataset", "ebay",
            "--records", "400",
            "--policy", "greedy-link",
            "--target", "0.7",
            "--seed", "3",
        )
        assert code == 0
        assert "greedy-link" in text
        assert "rounds" in text

    def test_crawl_saved_table_with_history(self, tmp_path):
        table_path = tmp_path / "t.json"
        history_path = tmp_path / "h.csv"
        run_cli("generate", "dblp", "--records", "300", "--out", str(table_path))
        code, text = run_cli(
            "crawl",
            "--table", str(table_path),
            "--policy", "bfs",
            "--max-rounds", "150",
            "--history", str(history_path),
        )
        assert code == 0
        assert history_path.exists()
        assert history_path.read_text().startswith("rounds,records")

    def test_practical_policy(self):
        code, text = run_cli(
            "crawl",
            "--dataset", "ebay",
            "--records", "300",
            "--policy", "practical",
            "--target", "0.6",
        )
        assert code == 0
        assert "stopped by" in text

    def test_result_limit_flag(self):
        code, text = run_cli(
            "crawl",
            "--dataset", "ebay",
            "--records", "300",
            "--result-limit", "20",
            "--max-rounds", "100",
        )
        assert code == 0

    def test_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["crawl", "--policy", "bfs"])


class TestExperiment:
    def test_table1(self):
        code, text = run_cli("experiment", "table1")
        assert code == 0
        assert "Table 1" in text

    def test_figure2_small(self):
        code, text = run_cli("experiment", "figure2", "--records", "600")
        assert code == 0
        assert "Figure 2" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])

    def test_workers_flag_prints_speedup_table(self):
        code, text = run_cli(
            "experiment", "figure3",
            "--records", "400",
            "--workers", "2",
            "--seed", "1",
        )
        assert code == 0
        assert "Parallel experiment timing" in text
        assert "(2 workers)" in text

    def test_sequential_workers_matches_parallel_output(self):
        _code, sequential = run_cli(
            "experiment", "figure4", "--records", "500", "--workers", "1"
        )
        _code, parallel = run_cli(
            "experiment", "figure4", "--records", "500", "--workers", "2"
        )
        # Everything except the timing footer is bit-identical.
        strip = lambda text: text.split("Parallel experiment timing")[0]
        assert strip(parallel) == strip(sequential)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            main(["experiment", "table1", "--workers", "0"])


class TestProfile:
    def test_profile_builtin_dataset(self):
        code, text = run_cli(
            "profile", "--dataset", "ebay", "--records", "300", "--probes", "10"
        )
        assert code == 0
        assert "hit rate" in text
        assert "Source profile" in text

    def test_profile_saved_table(self, tmp_path):
        table_path = tmp_path / "t.json"
        run_cli("generate", "acm", "--records", "200", "--out", str(table_path))
        code, text = run_cli("profile", "--table", str(table_path), "--probes", "8")
        assert code == 0
        assert "probes issued" in text

    def test_adaptive_policy_available(self):
        code, text = run_cli(
            "crawl", "--dataset", "dblp", "--records", "300",
            "--policy", "adaptive", "--max-rounds", "80",
        )
        assert code == 0
        assert "adaptive-attribute" in text


class TestNetworkLane:
    """The serve/loadtest verbs and crawl --remote."""

    @pytest.fixture()
    def live_service(self):
        from repro.datasets import load_dataset
        from repro.net import ServerThread, SourceService
        from repro.server import SimulatedWebDatabase

        table = load_dataset("imdb", 800, seed=1)
        service = SourceService(
            {"imdb": SimulatedWebDatabase(table, page_size=10)}
        )
        with ServerThread(service) as url:
            yield url

    def test_serve_requires_a_source(self):
        code, text = run_cli("serve")
        assert code == 2
        assert "nothing to serve" in text

    def test_remote_crawl_matches_local_crawl(self, live_service):
        local_code, local_text = run_cli(
            "crawl", "--dataset", "imdb", "--records", "800",
            "--target", "0.6", "--seed", "1",
        )
        remote_code, remote_text = run_cli(
            "crawl", "--remote", live_service,
            "--target", "0.6", "--seed", "1",
        )
        assert local_code == 0 and remote_code == 0
        # Same seed line, same result line (rounds, queries, records).
        local_lines = local_text.splitlines()
        remote_lines = remote_text.splitlines()
        assert remote_lines[0] == local_lines[0]  # seed value: ...
        result = [l for l in local_lines if l.startswith("greedy-link")]
        assert [l for l in remote_lines if l.startswith("greedy-link")] == result
        assert any(l.startswith("wire time:") for l in remote_lines)

    def test_remote_crawl_rejects_checkpointing(self, live_service, tmp_path):
        code, text = run_cli(
            "crawl", "--remote", live_service,
            "--checkpoint-dir", str(tmp_path / "ck"),
        )
        assert code == 2
        assert "local source" in text

    def test_loadtest_reports_and_writes_bench(self, live_service, tmp_path):
        bench = tmp_path / "BENCH_net.json"
        code, text = run_cli(
            "loadtest", live_service,
            "--sessions", "20", "--queries", "1",
            "--value-pool", "16", "--bench-out", str(bench),
        )
        assert code == 0
        assert "p95=" in text and "p99=" in text
        assert "throughput=" in text
        import json

        payload = json.loads(bench.read_text())
        assert "speedup" in payload["policies"]["loadtest"]


class TestCrawlProfiling:
    def _profiled(self, tmp_path, *extra):
        profile_path = tmp_path / "crawl.prof"
        code, text = run_cli(
            "crawl",
            "--dataset", "ebay",
            "--records", "300",
            "--policy", "greedy-link",
            "--max-rounds", "80",
            "--profile", str(profile_path),
            *extra,
        )
        assert code == 0
        assert profile_path.exists()
        return text

    @staticmethod
    def _summary_rows(text):
        """Rows of the printed cProfile table (between header and footer)."""
        lines = text.splitlines()
        start = next(
            i for i, line in enumerate(lines) if line.lstrip().startswith("ncalls")
        )
        rows = []
        for line in lines[start + 1:]:
            if not line.strip():
                break
            rows.append(line)
        return rows

    def test_profile_top_limits_the_summary(self, tmp_path):
        text = self._profiled(tmp_path, "--profile-top", "5")
        assert "cumulative" in text
        assert len(self._summary_rows(text)) == 5
        assert "profile stats written to" in text

    def test_profile_top_defaults_to_25(self, tmp_path):
        text = self._profiled(tmp_path)
        assert len(self._summary_rows(text)) == 25

    def test_profile_dump_is_loadable(self, tmp_path):
        import pstats

        self._profiled(tmp_path, "--profile-top", "1")
        stats = pstats.Stats(str(tmp_path / "crawl.prof"))
        assert stats.total_calls > 0
