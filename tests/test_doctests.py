"""Run the doctest examples embedded in module docstrings.

Modules with runnable ``>>>`` examples are listed explicitly so a new
doctest cannot silently go unexecuted.
"""

import doctest

import pytest

import repro.core.query
import repro.core.records
import repro.core.values
import repro.experiments.report

MODULES = (
    repro.core.values,
    repro.core.records,
    repro.core.query,
    repro.experiments.report,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lists no doctests"
    assert result.failed == 0
