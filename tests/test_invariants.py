"""Cross-module invariants, property-tested on randomized small worlds.

These tie the theory to the implementation: whatever the policy, a
crawl must respect the AVG reachability ceiling, the Definition 2.3
cost identity, and determinism under fixed seeds.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RelationalTable, Schema
from repro.crawler import CrawlerEngine
from repro.graph import build_avg_from_table, convergence_coverage, reachable_records
from repro.policies import (
    BreadthFirstSelector,
    DepthFirstSelector,
    GreedyLinkSelector,
    RandomSelector,
)
from repro.server import SimulatedWebDatabase

schema = Schema.of("a", "b", "c")

world_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a1", "a2", "a3", "a4"]),
        st.sampled_from(["b1", "b2", "b3", "b4", "b5"]),
        st.sampled_from(["c1", "c2", "c3"]),
    ),
    min_size=2,
    max_size=25,
)

ALL_POLICIES = (
    BreadthFirstSelector,
    DepthFirstSelector,
    RandomSelector,
    GreedyLinkSelector,
)


def build_world(triples):
    table = RelationalTable(schema, name="world")
    table.insert_rows([{"a": a, "b": b, "c": c} for a, b, c in triples])
    return table


def seed_of(table):
    return table.get(table.record_ids()[0]).attribute_values()[0]


@settings(max_examples=25, deadline=None)
@given(world_strategy)
def test_full_crawl_harvests_exactly_the_reachable_component(triples):
    """Every policy's exhaustive crawl == the seed's AVG component."""
    table = build_world(triples)
    graph = build_avg_from_table(table, queriable_only=True)
    seed = seed_of(table)
    expected = {record.record_id for record in reachable_records(list(table), graph, [seed])}
    for factory in ALL_POLICIES:
        server = SimulatedWebDatabase(table, page_size=3)
        engine = CrawlerEngine(server, factory(), seed=1)
        engine.crawl([seed])
        assert set(engine.local_db.record_ids()) == expected, factory.__name__


@settings(max_examples=25, deadline=None)
@given(world_strategy)
def test_coverage_never_exceeds_convergence_ceiling(triples):
    table = build_world(triples)
    graph = build_avg_from_table(table, queriable_only=True)
    seed = seed_of(table)
    ceiling = convergence_coverage(list(table), graph, [seed])
    server = SimulatedWebDatabase(table, page_size=3)
    result = CrawlerEngine(server, GreedyLinkSelector(), seed=0).crawl([seed])
    assert result.coverage <= ceiling + 1e-9


@settings(max_examples=20, deadline=None)
@given(world_strategy, st.integers(min_value=1, max_value=6))
def test_definition_2_3_cost_identity(triples, page_size):
    """Total rounds == Σ over issued queries of max(ceil(num/k), 1)."""
    table = build_world(triples)
    server = SimulatedWebDatabase(table, page_size=page_size)
    engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0, keep_outcomes=True)
    result = engine.crawl([seed_of(table)])
    expected_rounds = sum(
        max(math.ceil(server.truth_count(outcome.query) / page_size), 1)
        for outcome in result.outcomes
    )
    assert result.communication_rounds == expected_rounds


@settings(max_examples=15, deadline=None)
@given(world_strategy, st.integers(0, 100))
def test_crawls_deterministic_under_seed(triples, seed):
    table = build_world(triples)

    def run():
        server = SimulatedWebDatabase(table, page_size=3)
        engine = CrawlerEngine(server, RandomSelector(), seed=seed)
        result = engine.crawl([seed_of(table)])
        return (
            result.communication_rounds,
            result.queries_issued,
            tuple(engine.local_db.record_ids()),
        )

    assert run() == run()


@settings(max_examples=15, deadline=None)
@given(world_strategy)
def test_history_matches_result_totals(triples):
    table = build_world(triples)
    server = SimulatedWebDatabase(table, page_size=3)
    result = CrawlerEngine(server, DepthFirstSelector(), seed=0).crawl(
        [seed_of(table)]
    )
    assert result.history.final_rounds == result.communication_rounds
    assert result.history.final_records == result.records_harvested
    rounds = [point.rounds for point in result.history.points]
    records = [point.records for point in result.history.points]
    assert rounds == sorted(rounds)
    assert records == sorted(records)


@settings(max_examples=10, deadline=None)
@given(world_strategy)
def test_local_statistics_match_ground_truth_after_full_crawl(triples):
    """After harvesting everything reachable, DB_local's statistics must
    agree with the true table restricted to the harvested records."""
    table = build_world(triples)
    server = SimulatedWebDatabase(table, page_size=3)
    engine = CrawlerEngine(server, BreadthFirstSelector(), seed=0)
    engine.crawl([seed_of(table)])
    harvested = set(engine.local_db.record_ids())
    for value in engine.local_db.distinct_values():
        true_ids = set(table.match_equality(value.attribute, value.value))
        assert engine.local_db.matching_ids(value) == true_ids & harvested
