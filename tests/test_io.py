"""Unit tests for persistence (JSON tables, domain tables, histories)."""

import json

import pytest

from repro import io
from repro.crawler import CrawlHistory
from repro.datasets import generate_ebay
from repro.domain import build_domain_table


class TestTableRoundtrip:
    def test_roundtrip_preserves_everything(self, books, tmp_path):
        path = tmp_path / "books.json"
        io.save_table(books, path)
        loaded = io.load_table(path)
        assert loaded.name == books.name
        assert len(loaded) == len(books)
        assert loaded.schema.names == books.schema.names
        assert loaded.schema.queriable == books.schema.queriable
        for record in books:
            twin = loaded.get(record.record_id)
            assert twin.fields == record.fields

    def test_gzip_roundtrip(self, books, tmp_path):
        path = tmp_path / "books.json.gz"
        io.save_table(books, path)
        assert io.load_table(path).record_ids() == books.record_ids()

    def test_indexes_rebuilt(self, books, tmp_path):
        path = tmp_path / "books.json"
        io.save_table(books, path)
        loaded = io.load_table(path)
        assert loaded.match_equality("publisher", "orbit") == books.match_equality(
            "publisher", "orbit"
        )
        assert loaded.match_keyword("knuth") == books.match_keyword("knuth")

    def test_generated_dataset_roundtrip(self, tmp_path):
        table = generate_ebay(150, seed=9)
        path = tmp_path / "ebay.json"
        io.save_table(table, path)
        loaded = io.load_table(path)
        assert loaded.num_distinct_values() == table.num_distinct_values()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(io.PersistenceError, match="expected format"):
            io.load_table(path)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(io.PersistenceError):
            io.load_table(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(io.PersistenceError):
            io.load_table(tmp_path / "nope.json")


class TestDomainTableRoundtrip:
    def test_roundtrip(self, books, tmp_path):
        table = build_domain_table(books, attributes=["publisher", "author"])
        path = tmp_path / "dt.json"
        io.save_domain_table(table, path)
        loaded = io.load_domain_table(path)
        assert loaded.size == table.size
        assert len(loaded) == len(table)
        for value in table.values():
            assert loaded.count(value) == table.count(value)
            assert loaded.postings(value) == table.postings(value)

    def test_format_check(self, books, tmp_path):
        table = build_domain_table(books)
        path = tmp_path / "dt.json"
        io.save_table(books, path)  # wrong artifact kind
        with pytest.raises(io.PersistenceError):
            io.load_domain_table(path)
        io.save_domain_table(table, path)
        with pytest.raises(io.PersistenceError):
            io.load_table(path)


class TestHistoryCsv:
    def test_roundtrip(self, tmp_path):
        history = CrawlHistory()
        history.append(0, 0)
        history.append(5, 12)
        history.append(9, 30)
        path = tmp_path / "history.csv"
        io.history_to_csv(history, path)
        loaded = io.history_from_csv(path)
        assert loaded.points == history.points

    def test_header_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(io.PersistenceError):
            io.history_from_csv(path)
