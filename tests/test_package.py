"""Package-level sanity: version consistency, export hygiene."""

import pathlib
import re

import repro


def test_version_matches_pyproject():
    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    match = re.search(r'^version = "([^"]+)"', pyproject.read_text(), re.M)
    assert match is not None
    assert repro.__version__ == match.group(1)


def test_py_typed_marker_ships():
    marker = pathlib.Path(repro.__file__).parent / "py.typed"
    assert marker.exists()


def test_all_subpackage_exports_resolve():
    """Every name in each subpackage's __all__ must be importable."""
    import importlib

    for name in (
        "repro.core",
        "repro.graph",
        "repro.server",
        "repro.crawler",
        "repro.policies",
        "repro.domain",
        "repro.datasets",
        "repro.estimation",
        "repro.experiments",
        "repro.warehouse",
        "repro.analysis",
    ):
        module = importlib.import_module(name)
        for export in module.__all__:
            assert hasattr(module, export), f"{name}.{export} missing"
        assert module.__all__ == sorted(module.__all__), f"{name}.__all__ unsorted"
