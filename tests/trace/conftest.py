"""Shared scaffold for the trace tests.

Reuses the hostile flaky configuration from the runtime tests (10%
transient failures, retries, charged jittered backoff) so the trace
determinism assertions cover retry/backoff spans too.  Canonical mode
(``include_timings=False``) is used everywhere bytes are compared.
"""

from __future__ import annotations

import pytest

from repro.datasets.ebay import generate_ebay
from repro.policies import (
    BreadthFirstSelector,
    GreedyLinkSelector,
    MinMaxMutualInformationSelector,
)
from repro.runtime.crawler import RuntimeCrawler
from repro.runtime.events import EventBus
from repro.trace import TraceSink

from tests.runtime.conftest import (  # noqa: F401  (re-exported helpers)
    MAX_QUERIES,
    make_backoff,
    make_engine,
    make_flaky_server,
    seed_values,
)

#: The acceptance-criteria policies: naive, GL, and MMMI.
TRACE_POLICIES = {
    "naive": BreadthFirstSelector,
    "greedy-link": GreedyLinkSelector,
    "mmmi": lambda: MinMaxMutualInformationSelector(batch_size=5),
}


@pytest.fixture(scope="session")
def flaky_table():
    return generate_ebay(n_records=400, seed=1)


def traced_crawl(policy, table, trace_path, checkpoint_dir=None, bus=None):
    """One durable crawl with a canonical TraceSink attached."""
    bus = bus or EventBus()
    tracer = bus.attach(TraceSink(trace_path, include_timings=False))
    engine = make_engine(table, TRACE_POLICIES[policy](), bus=bus)
    runtime = RuntimeCrawler(
        engine,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=10,
        trace=tracer,
    )
    result = runtime.crawl(seed_values(table), max_queries=MAX_QUERIES)
    runtime.close()
    tracer.close()
    return result


@pytest.fixture(scope="session")
def reference_traces(flaky_table, tmp_path_factory):
    """Uninterrupted traced crawls — ground truth (bytes + result)."""
    root = tmp_path_factory.mktemp("reference-traces")
    reference = {}
    for policy in TRACE_POLICIES:
        path = root / f"{policy}.trace.jsonl"
        result = traced_crawl(policy, flaky_table, path)
        reference[policy] = (path.read_bytes(), result)
    return reference
