"""Trace analysis: summaries agree with the crawl's own accounting."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    critical_paths,
    diff_summaries,
    folded_stacks,
    load_trace,
    render_diff,
    render_summary,
    summarize,
)

from tests.trace.conftest import traced_crawl


@pytest.fixture(scope="module")
def traced(tmp_path_factory, flaky_table):
    path = tmp_path_factory.mktemp("analyze") / "trace.jsonl"
    result = traced_crawl("greedy-link", flaky_table, path)
    return load_trace(path), result


class TestSummarize:
    def test_totals_match_crawl_result(self, traced):
        trace, result = traced
        summary = summarize(trace)
        assert summary["steps"] == result.queries_issued
        assert summary["totals"]["rounds"] == result.communication_rounds
        assert summary["totals"]["new"] == result.records_harvested
        assert summary["policies"] == {"greedy-link": result.queries_issued}

    def test_canonical_trace_is_untimed(self, traced):
        trace, _ = traced
        summary = summarize(trace)
        assert summary["timed"] is False
        assert summary["phases"]["step"]["wall_s"] == 0.0

    def test_top_queries_sorted_by_rounds(self, traced):
        trace, _ = traced
        top = summarize(trace, top=5)["top_queries"]
        assert len(top) == 5
        rounds = [q["rounds"] for q in top]
        assert rounds == sorted(rounds, reverse=True)

    def test_summary_is_json_safe(self, traced):
        trace, _ = traced
        json.dumps(summarize(trace))

    def test_render_mentions_phases(self, traced):
        trace, _ = traced
        text = render_summary(summarize(trace))
        for phase in ("select", "submit", "fetch", "extract", "decompose"):
            assert phase in text


class TestCriticalPaths:
    def test_paths_start_at_step(self, traced):
        trace, _ = traced
        paths = critical_paths(trace)
        assert paths
        for entry in paths:
            assert entry["path"].startswith("step")
            assert entry["count"] > 0

    def test_counts_cover_every_step_tree(self, traced):
        trace, result = traced
        paths = critical_paths(trace, top=100)
        assert sum(p["count"] for p in paths) >= result.queries_issued


class TestFoldedStacks:
    def test_line_format(self, traced):
        trace, _ = traced
        lines = folded_stacks(trace)
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("crawl;step")
            assert int(value) > 0

    def test_round_costs_fold_to_total(self, traced):
        """Untimed traces fold self round cost; fetch+retry = rounds."""
        trace, result = traced
        total = sum(int(line.rsplit(" ", 1)[1]) for line in folded_stacks(trace))
        assert total == result.communication_rounds


class TestDiff:
    def test_self_diff_is_zero(self, traced):
        trace, _ = traced
        summary = summarize(trace)
        diff = diff_summaries(summary, summary)
        assert diff["steps"][0] == diff["steps"][1]
        text = render_diff(diff, "a", "b")
        assert "+0" in text

    def test_diff_against_shorter_crawl(self, traced, tmp_path, flaky_table):
        trace, _ = traced
        other_path = tmp_path / "naive.jsonl"
        traced_crawl("naive", flaky_table, other_path)
        other = summarize(load_trace(other_path))
        diff = diff_summaries(summarize(trace), other)
        assert diff["totals"]["rounds"][1] == other["totals"]["rounds"]
        render_diff(diff, "gl", "naive")
