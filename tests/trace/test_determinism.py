"""Trace determinism — the acceptance tests for ``repro.trace``.

A canonical trace (no wall timings) must be byte-identical:

- across repeated runs of the same crawl,
- across a crash/resume split at an arbitrary step, and
- across any worker count of the parallel experiment grid.
"""

from __future__ import annotations

import pytest

from repro.parallel import CrawlGrid, CrawlTask, run_crawl_grid
from repro.runtime.crawler import RuntimeCrawler
from repro.runtime.events import CrashAfterSteps, EventBus, SimulatedCrash
from repro.server.webdb import SimulatedWebDatabase
from repro.trace import TraceSink, load_trace

from tests.trace.conftest import (
    MAX_QUERIES,
    TRACE_POLICIES,
    make_backoff,
    make_engine,
    make_flaky_server,
    seed_values,
    traced_crawl,
)

POLICY_KEYS = sorted(TRACE_POLICIES)
CRASH_STEPS = (3, 13, 27)


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_rerun_is_byte_identical(
    tmp_path, policy, flaky_table, reference_traces
):
    reference_bytes, reference_result = reference_traces[policy]
    path = tmp_path / "again.jsonl"
    result = traced_crawl(policy, flaky_table, path)
    assert result == reference_result
    assert path.read_bytes() == reference_bytes


@pytest.mark.parametrize("policy", POLICY_KEYS)
def test_tracing_never_steers_the_crawl(policy, flaky_table, reference_traces):
    """Same crawl without a sink attached — identical CrawlResult."""
    _, reference_result = reference_traces[policy]
    engine = make_engine(flaky_table, TRACE_POLICIES[policy]())
    result = engine.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    assert result == reference_result


@pytest.mark.parametrize("policy", POLICY_KEYS)
@pytest.mark.parametrize("crash_after", CRASH_STEPS)
def test_crash_resume_trace_is_byte_identical(
    tmp_path, policy, crash_after, flaky_table, reference_traces
):
    """Kill the crawl mid-step; the resumed trace file must converge."""
    reference_bytes, reference_result = reference_traces[policy]
    trace_path = tmp_path / "crashed.jsonl"

    bus = EventBus()
    bus.attach(CrashAfterSteps(crash_after))
    tracer = bus.attach(TraceSink(trace_path, include_timings=False))
    runtime = RuntimeCrawler(
        make_engine(flaky_table, TRACE_POLICIES[policy](), bus=bus),
        checkpoint_dir=tmp_path,
        checkpoint_every=10,
        trace=tracer,
    )
    with pytest.raises(SimulatedCrash):
        runtime.crawl(seed_values(flaky_table), max_queries=MAX_QUERIES)
    runtime.close()
    tracer.close()

    resumed_tracer = TraceSink(trace_path, include_timings=False, fresh=False)
    resumed = RuntimeCrawler.resume(
        tmp_path,
        make_flaky_server(flaky_table),
        TRACE_POLICIES[policy](),
        backoff=make_backoff(),
        trace=resumed_tracer,
    )
    result = resumed.run()
    resumed.close()
    resumed_tracer.close()

    assert result == reference_result
    assert trace_path.read_bytes() == reference_bytes


def _policy_grid(table):
    tasks = tuple(
        CrawlTask(label=label, seed_index=index, seeds=tuple(seed_values(table)))
        for label in POLICY_KEYS
        for index in range(2)
    )
    return CrawlGrid(
        make_server=lambda task: SimulatedWebDatabase(table, page_size=10),
        make_selector=lambda task: TRACE_POLICIES[task.label](),
        tasks=tasks,
        rng_seed=0,
        crawl_kwargs={"max_queries": 30},
    )


def test_grid_trace_identical_at_any_worker_count(tmp_path, flaky_table):
    sequential = tmp_path / "w1.jsonl"
    parallel = tmp_path / "w4.jsonl"
    outcome_1 = run_crawl_grid(
        _policy_grid(flaky_table),
        workers=1,
        trace=sequential,
        trace_timings=False,
    )
    outcome_4 = run_crawl_grid(
        _policy_grid(flaky_table),
        workers=4,
        trace=parallel,
        trace_timings=False,
    )
    assert outcome_1.results == outcome_4.results
    assert outcome_1.trace_spans == outcome_4.trace_spans > 0
    assert sequential.read_bytes() == parallel.read_bytes()
    trace = load_trace(parallel)
    assert len(trace.tasks) == 6
    assert [task.label for task in trace.tasks] == sorted(
        POLICY_KEYS * 2, key=POLICY_KEYS.index
    )
