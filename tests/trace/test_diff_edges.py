"""``repro trace diff`` edge cases: empty, divergent, canonical-vs-timed."""

from __future__ import annotations

from repro.trace import (
    diff_summaries,
    load_trace,
    render_diff,
    summarize,
)

HEADER = '{"schema":"repro-trace/1"}'


def step_line(step, seq, rounds=2, new=3, timed=False, query="genre=a"):
    timing = ',"t":{"ws":2500e-9,"cs":2000e-9}' if timed else ""
    return (
        f'{{"id":"s{step}","parent":null,"name":"step","step":{step},'
        f'"seq":{seq},"attrs":{{"query":"{query}","rounds":{rounds},'
        f'"pages":{rounds},"records":{new},"new":{new},"dup":0,'
        f'"harvest_rate":1.0}}{timing}}}'
    )


def write_trace(tmp_path, name, lines):
    path = tmp_path / name
    path.write_text("\n".join([HEADER, *lines]) + "\n", encoding="utf-8")
    return path


class TestDiffEdgeCases:
    def test_empty_vs_non_empty(self, tmp_path):
        empty = write_trace(tmp_path, "empty.jsonl", [])
        full = write_trace(
            tmp_path, "full.jsonl", [step_line(1, 0), step_line(2, 1)]
        )
        summary_empty = summarize(load_trace(empty))
        summary_full = summarize(load_trace(full))
        assert summary_empty["steps"] == 0
        diff = diff_summaries(summary_empty, summary_full)
        assert diff["steps"] == (0, 2)
        assert diff["totals"]["rounds"] == (0, 4)
        assert diff["phases"]["step"]["count"] == (0, 2)
        # Both orders render without crashing on the empty side.
        assert "steps" in render_diff(diff)
        assert "step" in render_diff(
            diff_summaries(summary_full, summary_empty)
        )

    def test_identical_ids_divergent_payloads(self, tmp_path):
        a = write_trace(
            tmp_path, "a.jsonl", [step_line(1, 0, rounds=5, new=8)]
        )
        b = write_trace(
            tmp_path, "b.jsonl", [step_line(1, 0, rounds=2, new=3)]
        )
        diff = diff_summaries(
            summarize(load_trace(a)), summarize(load_trace(b))
        )
        # Same span ids and counts — only the payloads diverge.
        assert diff["steps"] == (1, 1)
        assert diff["phases"]["step"]["count"] == (1, 1)
        assert diff["totals"]["rounds"] == (5, 2)
        assert diff["totals"]["new"] == (8, 3)
        assert "-3" in render_diff(diff)

    def test_canonical_vs_timed(self, tmp_path):
        canonical = write_trace(
            tmp_path, "canonical.jsonl", [step_line(1, 0, timed=False)]
        )
        timed = write_trace(
            tmp_path, "timed.jsonl", [step_line(1, 0, timed=True)]
        )
        summary_canonical = summarize(load_trace(canonical))
        summary_timed = summarize(load_trace(timed))
        assert summary_canonical["timed"] is False
        assert summary_timed["timed"] is True
        diff = diff_summaries(summary_canonical, summary_timed)
        # Structure matches; only the timing lane differs.
        assert diff["steps"] == (1, 1)
        walls = diff["phases"]["step"]["wall_s"]
        assert walls[0] == 0.0
        assert walls[1] > 0.0
        assert render_diff(diff, label_a="canonical", label_b="timed")
