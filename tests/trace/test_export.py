"""Chrome/Perfetto export: structural validation of the event JSON."""

from __future__ import annotations

import json

import pytest

from repro.parallel import CrawlGrid, CrawlTask, run_crawl_grid
from repro.server.webdb import SimulatedWebDatabase
from repro.trace import load_trace, to_chrome, write_chrome

from tests.trace.conftest import TRACE_POLICIES, seed_values, traced_crawl


@pytest.fixture(scope="module")
def chrome(tmp_path_factory, flaky_table):
    path = tmp_path_factory.mktemp("export") / "trace.jsonl"
    traced_crawl("greedy-link", flaky_table, path)
    trace = load_trace(path)
    return trace, to_chrome(trace)


class TestTraceEventFormat:
    def test_top_level_shape(self, chrome):
        _, payload = chrome
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"]

    def test_one_complete_event_per_span(self, chrome):
        trace, payload = chrome
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(trace.spans)

    def test_complete_events_carry_required_fields(self, chrome):
        _, payload = chrome
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert event["cat"] == "crawl"
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1
            assert event["pid"] == 0 and event["tid"] == 0
            assert event["name"]

    def test_process_metadata_present(self, chrome):
        _, payload = chrome
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"

    def test_children_nest_within_parents(self, chrome):
        """Every child interval lies inside its parent's interval."""
        trace, payload = chrome
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_id = {
            span["id"]: event
            for span, event in zip(trace.spans, complete)
        }
        for span in trace.spans:
            if span["parent"] is None:
                continue
            child = by_id[span["id"]]
            parent = by_id[span["parent"]]
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_steps_are_laid_out_back_to_back(self, chrome):
        trace, payload = chrome
        roots = [
            event
            for span, event in zip(
                trace.spans,
                [e for e in payload["traceEvents"] if e["ph"] == "X"],
            )
            if span["parent"] is None
        ]
        cursor = 0
        for event in roots:
            assert event["ts"] == cursor
            cursor += event["dur"]

    def test_payload_is_json_serializable(self, chrome):
        _, payload = chrome
        json.dumps(payload)


class TestWriteChrome:
    def test_writes_loadable_json(self, chrome, tmp_path):
        trace, payload = chrome
        out = tmp_path / "chrome.json"
        events = write_chrome(trace, out)
        assert events == len(payload["traceEvents"])
        assert json.loads(out.read_text()) == payload

    def test_grid_trace_gets_one_process_per_task(self, tmp_path, flaky_table):
        trace_path = tmp_path / "grid.jsonl"
        tasks = tuple(
            CrawlTask(
                label=label, seed_index=0, seeds=tuple(seed_values(flaky_table))
            )
            for label in sorted(TRACE_POLICIES)
        )
        grid = CrawlGrid(
            make_server=lambda task: SimulatedWebDatabase(
                flaky_table, page_size=10
            ),
            make_selector=lambda task: TRACE_POLICIES[task.label](),
            tasks=tasks,
            rng_seed=0,
            crawl_kwargs={"max_queries": 10},
        )
        run_crawl_grid(grid, workers=1, trace=trace_path, trace_timings=False)
        payload = to_chrome(load_trace(trace_path))
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [e["pid"] for e in meta] == [0, 1, 2]
        names = [e["args"]["name"] for e in meta]
        assert names == [f"{label} (seed 0)" for label in sorted(TRACE_POLICIES)]
