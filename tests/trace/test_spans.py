"""Span JSONL schema: parsing, validation, and resume alignment."""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import CrawlCheckpoint
from repro.runtime.crawler import CHECKPOINT_FILE
from repro.trace import (
    TRACE_SCHEMA,
    TraceError,
    TraceSink,
    load_trace,
    validate_trace_jsonl,
)
from repro.trace.sink import write_trace
from repro.trace.spans import SPAN_NAMES

from tests.trace.conftest import traced_crawl


@pytest.fixture(scope="module")
def traced(tmp_path_factory, flaky_table):
    root = tmp_path_factory.mktemp("spans")
    path = root / "trace.jsonl"
    result = traced_crawl(
        "greedy-link", flaky_table, path, checkpoint_dir=root / "ck"
    )
    return path, result, root / "ck"


class TestSchema:
    def test_header_and_span_count(self, traced):
        path, result, _ = traced
        spans = validate_trace_jsonl(path)
        trace = load_trace(path)
        assert trace.header["schema"] == TRACE_SCHEMA
        assert spans == len(trace.spans) > 0

    def test_every_step_has_one_root(self, traced):
        path, result, _ = traced
        trace = load_trace(path)
        roots = [span for span in trace.spans if span["parent"] is None]
        harvested = [r for r in roots if not r["attrs"].get("exhausted")]
        assert len(harvested) == result.queries_issued
        assert [r["id"] for r in harvested] == [
            f"s{i}" for i in range(1, len(harvested) + 1)
        ]

    def test_known_names_only(self, traced):
        path, _, _ = traced
        for span in load_trace(path).spans:
            assert span["name"] in SPAN_NAMES

    def test_seq_is_the_line_order(self, traced):
        path, _, _ = traced
        seqs = [span["seq"] for span in load_trace(path).spans]
        assert seqs == list(range(len(seqs)))

    def test_root_carries_cost_model_attrs(self, traced):
        path, result, _ = traced
        trace = load_trace(path)
        roots = [
            s
            for s in trace.spans
            if s["parent"] is None and not s["attrs"].get("exhausted")
        ]
        for root in roots:
            attrs = root["attrs"]
            assert attrs["records"] == attrs["new"] + attrs["dup"]
            assert attrs["rounds"] >= attrs["pages"]
        assert sum(r["attrs"]["rounds"] for r in roots) == (
            result.communication_rounds
        )
        assert roots[-1]["attrs"]["records_total"] == result.records_harvested


class TestValidation:
    def write(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            "\n".join([json.dumps({"schema": TRACE_SCHEMA})] + lines) + "\n"
        )
        return path

    def span(self, **overrides):
        span = {
            "id": "s1",
            "parent": None,
            "name": "step",
            "step": 1,
            "seq": 0,
            "attrs": {},
        }
        span.update(overrides)
        return json.dumps(span)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "other/9"}) + "\n")
        with pytest.raises(TraceError, match="schema"):
            load_trace(path)

    def test_rejects_missing_key(self, tmp_path):
        path = self.write(tmp_path, ['{"id": "s1", "name": "step"}'])
        with pytest.raises(TraceError):
            validate_trace_jsonl(path)

    def test_rejects_unknown_name(self, tmp_path):
        path = self.write(tmp_path, [self.span(name="teleport")])
        with pytest.raises(TraceError, match="teleport"):
            validate_trace_jsonl(path)

    def test_rejects_nonmonotonic_seq(self, tmp_path):
        path = self.write(
            tmp_path,
            [self.span(), self.span(id="s2", step=2, seq=0)],
        )
        with pytest.raises(TraceError, match="seq"):
            validate_trace_jsonl(path)

    def test_rejects_dangling_parent(self, tmp_path):
        path = self.write(
            tmp_path,
            [self.span(), self.span(id="s1/q0", parent="s1/q9", seq=1, name="fetch")],
        )
        with pytest.raises(TraceError, match="parent"):
            validate_trace_jsonl(path)


class TestAlign:
    def test_align_refuses_merged_grid_trace(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        write_trace(path, [("gl", 0, [])])
        sink = TraceSink(path, fresh=False)
        with pytest.raises(TraceError, match="grid"):
            sink.align(step=1, rounds=1)

    def test_align_missing_file_seeds_from_checkpoint_state(self, tmp_path):
        sink = TraceSink(tmp_path / "fresh.jsonl", fresh=False)
        kept = sink.align(step=5, rounds=9, state={"next_seq": 42})
        assert kept == 0
        assert sink.state_dict() == {"next_seq": 42, "last_rounds": 9}

    def test_checkpoint_embeds_trace_state(self, tmp_path, flaky_table):
        """A suspension snapshot carries the sink's continuation state."""
        from repro.runtime.crawler import RuntimeCrawler
        from repro.runtime.events import EventBus

        from tests.trace.conftest import (
            TRACE_POLICIES,
            make_engine,
            seed_values,
        )

        bus = EventBus()
        tracer = bus.attach(
            TraceSink(tmp_path / "t.jsonl", include_timings=False)
        )
        runtime = RuntimeCrawler(
            make_engine(flaky_table, TRACE_POLICIES["greedy-link"](), bus=bus),
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
            trace=tracer,
        )
        runtime.crawl(
            seed_values(flaky_table), max_queries=50, stop_after_steps=7
        )
        runtime.close()
        checkpoint = CrawlCheckpoint.load(tmp_path / CHECKPOINT_FILE)
        assert checkpoint.trace is not None
        assert checkpoint.trace["next_seq"] > 0
        assert checkpoint.trace == tracer.state_dict()
        payload = checkpoint.to_payload()
        assert CrawlCheckpoint.from_payload(payload).trace == checkpoint.trace
