"""Unit tests for the warehouse merge layer."""

import pytest

from repro.core import Record
from repro.warehouse import Warehouse, WarehouseError


def record(record_id, **fields):
    return Record(
        record_id,
        {k: (v if isinstance(v, tuple) else (v,)) for k, v in fields.items()},
    )


class TestIngest:
    def test_entities_keyed_by_normalized_title(self):
        warehouse = Warehouse("title")
        warehouse.ingest("store-a", [record(1, title="The  Deep Web", price="10")])
        warehouse.ingest("store-b", [record(7, title="the deep web", price="12")])
        assert len(warehouse) == 1
        entry = warehouse.get("The Deep Web")
        assert entry.n_sources == 2

    def test_records_without_key_are_skipped_and_counted(self):
        warehouse = Warehouse("title")
        warehouse.ingest("a", [record(1, price="10")])
        assert len(warehouse) == 0
        assert warehouse.skipped == 1

    def test_ingest_returns_touched_count(self):
        warehouse = Warehouse("title")
        touched = warehouse.ingest(
            "a", [record(1, title="x"), record(2, title="y"), record(3, price="1")]
        )
        assert touched == 2

    def test_empty_source_name_rejected(self):
        with pytest.raises(WarehouseError):
            Warehouse("title").ingest("  ", [])

    def test_empty_key_attribute_rejected(self):
        with pytest.raises(WarehouseError):
            Warehouse("  ")

    def test_missing_entity_raises(self):
        with pytest.raises(WarehouseError):
            Warehouse("title").get("ghost")


class TestEntries:
    def build(self):
        warehouse = Warehouse("title")
        warehouse.ingest(
            "a",
            [record(1, title="x", price="10"), record(2, title="y", price="20")],
        )
        warehouse.ingest("b", [record(5, title="x", price="11")])
        return warehouse

    def test_multi_source_entries(self):
        warehouse = self.build()
        multi = warehouse.multi_source_entries()
        assert [entry.key for entry in multi] == ["x"]

    def test_coverage_by_source(self):
        warehouse = self.build()
        assert warehouse.coverage_by_source() == {"a": 2, "b": 1}

    def test_compare_prices(self):
        warehouse = self.build()
        assert warehouse.compare("price", "x") == {"a": "10", "b": "11"}

    def test_contains_normalizes(self):
        warehouse = self.build()
        assert " X " in warehouse
        assert "zz" not in warehouse

    def test_entries_sorted(self):
        warehouse = self.build()
        assert [entry.key for entry in warehouse.entries()] == ["x", "y"]


class TestConsolidation:
    def test_union_of_values(self):
        warehouse = Warehouse("title")
        warehouse.ingest("a", [record(1, title="x", actor=("p", "q"))])
        warehouse.ingest("b", [record(2, title="x", actor=("q", "r"), genre="drama")])
        merged = warehouse.get("x").consolidated()
        assert merged["actor"] == ("p", "q", "r")
        assert merged["genre"] == ("drama",)

    def test_same_source_duplicate_offers_kept_as_provenance(self):
        warehouse = Warehouse("title")
        warehouse.ingest("a", [record(1, title="x"), record(2, title="x")])
        entry = warehouse.get("x")
        assert len(entry.offers) == 2
        assert entry.n_sources == 1
