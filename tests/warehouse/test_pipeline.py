"""Integration tests for the multi-source crawl pipeline."""

import pytest

from repro.datasets import MovieUniverse, generate_amazon_dvd
from repro.server import SimulatedWebDatabase
from repro.warehouse import crawl_into_warehouse


@pytest.fixture(scope="module")
def stores():
    universe = MovieUniverse(600, seed=31, obscure_fraction=0.0)
    built = []
    for index, (fraction, name) in enumerate(
        ((0.7, "alpha-dvd"), (0.5, "beta-dvd"))
    ):
        store = generate_amazon_dvd(
            universe, catalogue_fraction=fraction, seed=60 + index
        )
        store.name = name
        built.append(store)
    return built


def seed_for(store):
    return [
        next(
            value
            for value in store.distinct_values("actor")
            if store.frequency(value) >= 2
        )
    ]


class TestPipeline:
    def test_crawls_and_merges(self, stores):
        servers = [SimulatedWebDatabase(store, page_size=10) for store in stores]
        result = crawl_into_warehouse(
            servers,
            [seed_for(store) for store in stores],
            key_attribute="title",
            max_rounds_per_source=400,
        )
        assert len(result.reports) == 2
        assert result.total_entities > 0
        assert result.total_rounds <= 2 * 400 + 200  # budget (+ overshoot slack)
        # Overlapping catalogues: some entities must come from both.
        assert result.warehouse.multi_source_entries()

    def test_report_lines_mention_sources(self, stores):
        servers = [SimulatedWebDatabase(store, page_size=10) for store in stores]
        result = crawl_into_warehouse(
            servers,
            [seed_for(store) for store in stores],
            max_rounds_per_source=150,
        )
        text = "\n".join(result.report_lines())
        assert "alpha-dvd" in text and "beta-dvd" in text
        assert "warehouse" in text

    def test_seed_count_mismatch_rejected(self, stores):
        servers = [SimulatedWebDatabase(store) for store in stores]
        with pytest.raises(ValueError):
            crawl_into_warehouse(servers, [[]])
