"""Tests for the multi-source budget scheduler."""

import pytest

from repro.core import CrawlError
from repro.crawler import CrawlerEngine
from repro.datasets import generate_dblp, generate_ebay
from repro.policies import GreedyLinkSelector
from repro.server import SimulatedWebDatabase
from repro.warehouse import GreedyScheduler, RoundRobinScheduler


def make_engines(tables, seed=0):
    engines = {}
    seeds = {}
    for table in tables:
        server = SimulatedWebDatabase(table, page_size=10)
        engines[table.name] = CrawlerEngine(server, GreedyLinkSelector(), seed=seed)
        seeds[table.name] = [
            next(
                value
                for value in table.distinct_values()
                if value.attribute in table.schema.queriable
                and table.frequency(value) >= 2
            )
        ]
    return engines, seeds


@pytest.fixture(scope="module")
def two_sources():
    ebay = generate_ebay(700, seed=3)
    dblp = generate_dblp(700, seed=3)
    return ebay, dblp


class TestValidation:
    def test_needs_sources(self):
        with pytest.raises(CrawlError):
            GreedyScheduler({}, {})

    def test_engines_and_seeds_must_match(self, two_sources):
        engines, seeds = make_engines(two_sources)
        del seeds["ebay"]
        with pytest.raises(CrawlError):
            GreedyScheduler(engines, seeds)

    def test_budget_must_be_positive(self, two_sources):
        engines, seeds = make_engines(two_sources)
        scheduler = GreedyScheduler(engines, seeds)
        with pytest.raises(CrawlError):
            scheduler.run(0)


class TestBudgeting:
    def test_budget_respected(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = GreedyScheduler(engines, seeds).run(total_rounds=120)
        # One query may overshoot by its own page count; allow slack.
        assert result.rounds_used <= 120 + 80
        assert result.total_records > 0
        assert set(result.results) == {"ebay", "dblp"}

    def test_allocation_sums_to_rounds(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = RoundRobinScheduler(engines, seeds).run(total_rounds=100)
        assert sum(result.allocation().values()) == result.rounds_used

    def test_exhaustion_before_budget(self):
        tiny = generate_ebay(40, seed=1)
        engines, seeds = make_engines([tiny])
        result = GreedyScheduler(engines, seeds).run(total_rounds=100_000)
        assert result.results["ebay"].stopped_by == "frontier-exhausted"

    def test_round_robin_spreads_budget(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = RoundRobinScheduler(engines, seeds).run(total_rounds=200)
        allocation = result.allocation()
        # Fair share: neither source is starved.
        assert all(rounds > 20 for rounds in allocation.values())


class TestGreedyAllocation:
    def test_greedy_at_least_matches_round_robin(self, two_sources):
        """Greedy marginal-gain allocation harvests >= fair share."""
        budget = 250
        engines_a, seeds_a = make_engines(two_sources, seed=1)
        greedy = GreedyScheduler(engines_a, seeds_a).run(budget)
        engines_b, seeds_b = make_engines(two_sources, seed=1)
        fair = RoundRobinScheduler(engines_b, seeds_b).run(budget)
        assert greedy.total_records >= fair.total_records * 0.95

    def test_greedy_shifts_budget_to_productive_source(self):
        # A nearly-drained tiny source vs a fresh large one: the greedy
        # scheduler should spend most of the budget on the large one.
        tiny = generate_ebay(50, seed=2)
        big = generate_dblp(900, seed=2)
        engines, seeds = make_engines([tiny, big])
        result = GreedyScheduler(engines, seeds).run(total_rounds=150)
        allocation = result.allocation()
        assert allocation["dblp"] > allocation["ebay"]
