"""Tests for the multi-source budget scheduler."""

import pytest

from repro.core import CrawlError
from repro.crawler import CrawlerEngine
from repro.datasets import generate_dblp, generate_ebay
from repro.policies import GreedyLinkSelector
from repro.server import SimulatedWebDatabase
from repro.warehouse import GreedyScheduler, RoundRobinScheduler


def make_engines(tables, seed=0):
    engines = {}
    seeds = {}
    for table in tables:
        server = SimulatedWebDatabase(table, page_size=10)
        engines[table.name] = CrawlerEngine(server, GreedyLinkSelector(), seed=seed)
        seeds[table.name] = [
            next(
                value
                for value in table.distinct_values()
                if value.attribute in table.schema.queriable
                and table.frequency(value) >= 2
            )
        ]
    return engines, seeds


@pytest.fixture(scope="module")
def two_sources():
    ebay = generate_ebay(700, seed=3)
    dblp = generate_dblp(700, seed=3)
    return ebay, dblp


class TestValidation:
    def test_needs_sources(self):
        with pytest.raises(CrawlError):
            GreedyScheduler({}, {})

    def test_engines_and_seeds_must_match(self, two_sources):
        engines, seeds = make_engines(two_sources)
        del seeds["ebay"]
        with pytest.raises(CrawlError):
            GreedyScheduler(engines, seeds)

    def test_budget_must_be_positive(self, two_sources):
        engines, seeds = make_engines(two_sources)
        scheduler = GreedyScheduler(engines, seeds)
        with pytest.raises(CrawlError):
            scheduler.run(0)


class TestBudgeting:
    def test_budget_respected(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = GreedyScheduler(engines, seeds).run(total_rounds=120)
        # One query may overshoot by its own page count; allow slack.
        assert result.rounds_used <= 120 + 80
        assert result.total_records > 0
        assert set(result.results) == {"ebay", "dblp"}

    def test_allocation_sums_to_rounds(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = RoundRobinScheduler(engines, seeds).run(total_rounds=100)
        assert sum(result.allocation().values()) == result.rounds_used

    def test_exhaustion_before_budget(self):
        tiny = generate_ebay(40, seed=1)
        engines, seeds = make_engines([tiny])
        result = GreedyScheduler(engines, seeds).run(total_rounds=100_000)
        assert result.results["ebay"].stopped_by == "frontier-exhausted"

    def test_round_robin_spreads_budget(self, two_sources):
        engines, seeds = make_engines(two_sources)
        result = RoundRobinScheduler(engines, seeds).run(total_rounds=200)
        allocation = result.allocation()
        # Fair share: neither source is starved.
        assert all(rounds > 20 for rounds in allocation.values())


class TestGreedyAllocation:
    def test_greedy_at_least_matches_round_robin(self, two_sources):
        """Greedy marginal-gain allocation harvests >= fair share."""
        budget = 250
        engines_a, seeds_a = make_engines(two_sources, seed=1)
        greedy = GreedyScheduler(engines_a, seeds_a).run(budget)
        engines_b, seeds_b = make_engines(two_sources, seed=1)
        fair = RoundRobinScheduler(engines_b, seeds_b).run(budget)
        assert greedy.total_records >= fair.total_records * 0.95

    def test_greedy_shifts_budget_to_productive_source(self):
        # A nearly-drained tiny source vs a fresh large one: the greedy
        # scheduler should spend most of the budget on the large one.
        tiny = generate_ebay(50, seed=2)
        big = generate_dblp(900, seed=2)
        engines, seeds = make_engines([tiny, big])
        result = GreedyScheduler(engines, seeds).run(total_rounds=150)
        allocation = result.allocation()
        assert allocation["dblp"] > allocation["ebay"]


def make_twin_engines(n_records=400, names=("alpha", "beta"), seed=0):
    """Identical sources under different names: priorities always tie."""
    engines, seeds = {}, {}
    for name in names:
        table = generate_ebay(n_records, seed=7)
        server = SimulatedWebDatabase(table, page_size=10)
        engines[name] = CrawlerEngine(server, GreedyLinkSelector(), seed=seed)
        seeds[name] = [
            next(
                value
                for value in table.distinct_values()
                if value.attribute in table.schema.queriable
                and table.frequency(value) >= 2
            )
        ]
    return engines, seeds


class TestGreedyTieBreak:
    """Bugfix pin: priority ties resolve toward the smallest name."""

    def test_tie_goes_to_smallest_name(self):
        engines, seeds = make_twin_engines(names=("zeta", "alpha", "mid"))
        scheduler = GreedyScheduler(engines, seeds)
        # All three sources are identical, so every priority ties; the
        # first step must go to "alpha", regardless of insertion order.
        scheduler.run(total_rounds=1)
        stepped = [s.name for s in scheduler._sources if s.steps > 0]
        assert stepped == ["alpha"]

    def test_pick_is_insertion_order_independent(self):
        # Same twin fleet declared in both insertion orders: the pick
        # must land on "a" either way.
        for names in (("b", "a"), ("a", "b")):
            engines, seeds = make_twin_engines(names=names)
            scheduler = GreedyScheduler(engines, seeds)
            assert scheduler._pick(list(scheduler._sources)).name == "a"


class TestBudgetGuarantee:
    """Bugfix pins: overspend is bounded, reported, or impossible."""

    def test_hard_budget_with_step_cap(self, two_sources):
        from repro.crawler import PageCapAbort

        engines, seeds = {}, {}
        for table in two_sources:
            server = SimulatedWebDatabase(table, page_size=10)
            engines[table.name] = CrawlerEngine(
                server,
                GreedyLinkSelector(),
                seed=0,
                abortion=PageCapAbort(max_pages=3),
            )
            seeds[table.name] = [
                next(
                    value
                    for value in table.distinct_values()
                    if value.attribute in table.schema.queriable
                    and table.frequency(value) >= 2
                )
            ]
        result = GreedyScheduler(
            engines, seeds, max_step_rounds=3
        ).run(total_rounds=50)
        assert result.rounds_used <= 50
        assert result.overshoot == 0
        assert result.budget == 50

    def test_overshoot_reported_not_hidden(self, two_sources):
        engines, seeds = make_engines(two_sources)
        scheduler = GreedyScheduler(engines, seeds)
        result = scheduler.run(total_rounds=120)
        assert result.overshoot == max(result.rounds_used - 120, 0)
        # Without a declared cap, only a step whose charge exceeds its
        # source's previous worst can overshoot — never by more than
        # the largest single-step charge actually observed.
        worst = max(s.worst_charge for s in scheduler._sources)
        assert result.rounds_used <= 120 + worst

    def test_declared_cap_violation_raises(self, two_sources):
        # Engines without a page cap can charge many rounds per step;
        # declaring max_step_rounds=1 anyway must fail loudly, not
        # silently overspend.
        engines, seeds = make_engines(two_sources)
        scheduler = GreedyScheduler(engines, seeds, max_step_rounds=1)
        with pytest.raises(CrawlError):
            scheduler.run(total_rounds=200)

    def test_reserve_check_skips_unaffordable_sources(self, two_sources):
        from repro.crawler import PageCapAbort

        table = two_sources[0]
        server = SimulatedWebDatabase(table, page_size=10)
        engines = {
            "only": CrawlerEngine(
                server,
                GreedyLinkSelector(),
                seed=0,
                abortion=PageCapAbort(max_pages=5),
            )
        }
        seeds = {
            "only": [
                next(
                    value
                    for value in table.distinct_values()
                    if value.attribute in table.schema.queriable
                    and table.frequency(value) >= 2
                )
            ]
        }
        scheduler = GreedyScheduler(engines, seeds, max_step_rounds=5)
        result = scheduler.run(total_rounds=3)  # below the step bound
        assert result.rounds_used == 0


class TestRoundRobinRing:
    """Bugfix pin: the cursor cycles stable names, not the live list."""

    def test_fair_interleaving_across_exhaustion(self):
        # One tiny source exhausts mid-run; the survivors must keep
        # strictly alternating (no skips, no double steps).
        tiny = generate_ebay(16, seed=4)
        engines, seeds = make_engines([tiny])
        big_engines, big_seeds = make_twin_engines(
            n_records=600, names=("left", "right")
        )
        engines.update(big_engines)
        seeds.update(big_seeds)

        picks = []

        class Recording(RoundRobinScheduler):
            def _pick(self, candidates):
                source = super()._pick(candidates)
                if source is not None:
                    picks.append(source.name)
                return source

        scheduler = Recording(engines, seeds)
        result = scheduler.run(total_rounds=1200)
        assert result.results["ebay"].stopped_by == "frontier-exhausted"
        # The tail after ebay's last pick must be pure left/right
        # alternation: the skew bug skipped or double-stepped the
        # source that followed an exhaustion in ring order.
        last_ebay = len(picks) - 1 - picks[::-1].index("ebay")
        tail = picks[last_ebay + 1 :]
        assert len(tail) >= 6
        for first, second in zip(tail, tail[1:]):
            assert first != second, f"double-step in {tail}"
        assert abs(tail.count("left") - tail.count("right")) <= 1

    def test_cursor_state_round_trips(self, two_sources):
        engines, seeds = make_engines(two_sources)
        scheduler = RoundRobinScheduler(engines, seeds)
        scheduler.run(total_rounds=50)
        state = scheduler.state_dict()
        assert state["cursor"] == scheduler._cursor


class TestFairnessGuarantee:
    def test_starved_source_is_stepped_within_bound(self):
        # A drained tiny source scores far below two fresh big ones;
        # with fairness_every it still gets stepped at least once per
        # K budget units while it remains live.
        engines, seeds = make_twin_engines(
            n_records=900, names=("big-a", "big-b")
        )
        tiny = generate_dblp(60, seed=9)
        tiny_engines, tiny_seeds = make_engines([tiny])
        engines["tiny-dblp"] = tiny_engines["dblp"]
        seeds["tiny-dblp"] = tiny_seeds["dblp"]
        K = 40
        scheduler = GreedyScheduler(engines, seeds, fairness_every=K)
        scheduler.run(total_rounds=300)
        gaps = []
        for source in scheduler._sources:
            if source.name == "tiny-dblp" and not source.exhausted:
                gaps.append(scheduler.rounds_spent - source.last_step_spent)
        for gap in gaps:
            # The guarantee is checked *before* each pick, so the gap
            # can exceed K by at most one step's charge at the end.
            assert gap <= K + 80
